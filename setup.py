"""Classic setup.py kept so `pip install -e .` works offline.

The environment has no `wheel` package and no network access, so PEP 660
editable installs (which require bdist_wheel) are unavailable; the legacy
setup.py develop path needs nothing beyond setuptools.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Software architecture definition for on-demand "
        "cloud provisioning' (Chapman et al., HPDC 2010 / Cluster Computing "
        "2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
