"""Table 3 reproduction: dedicated environment vs. cloud infrastructure.

Paper values (Cluster Computing 2012, Table 3):

======================================  =========  ==============
Row                                     Dedicated  Cloud
======================================  =========  ==============
Search turn around time (s)             8605       9220
Complete shutdown time (s)              N/A        9574
Average execution nodes (for run)       16         10.49
Average execution nodes (until stop)    N/A        10.42
Resource usage saving                   —          34.46%
Extra run time (jobs)                   —          +7.15%
======================================  =========  ==============

Acceptance bands check the *shape*: who wins, by roughly what factor.
"""

import pytest

from repro.experiments import run_dedicated, table3

from conftest import paper_row

PAPER = {
    "dedicated_turnaround_s": 8605.0,
    "cloud_turnaround_s": 9220.0,
    "cloud_shutdown_s": 9574.0,
    "dedicated_mean_nodes_run": 16.0,
    "cloud_mean_nodes_run": 10.49,
    "cloud_mean_nodes_until_shutdown": 10.42,
    "resource_usage_saving": 0.3446,
    "extra_run_time": 0.0715,
}


def test_table3_dedicated_baseline(benchmark, dedicated_run):
    result = benchmark.pedantic(run_dedicated, rounds=1, iterations=1)
    assert result.jobs_completed == 402
    # Dedicated turn-around within ±10% of the paper's 8605 s.
    assert result.turnaround_s == pytest.approx(
        PAPER["dedicated_turnaround_s"], rel=0.10)
    assert result.mean_nodes_run == 16


def test_table3_full_comparison(benchmark, dedicated_run, elastic_run):
    rows = benchmark.pedantic(table3, args=(dedicated_run, elastic_run),
                              rounds=1, iterations=1)

    print("\n  Table 3 — paper vs. measured")
    paper_row("search turn around, dedicated (s)",
              PAPER["dedicated_turnaround_s"],
              rows["dedicated_turnaround_s"])
    paper_row("search turn around, cloud (s)",
              PAPER["cloud_turnaround_s"], rows["cloud_turnaround_s"])
    paper_row("complete shutdown time (s)",
              PAPER["cloud_shutdown_s"], rows["cloud_shutdown_s"])
    paper_row("avg execution nodes, run",
              PAPER["cloud_mean_nodes_run"], rows["cloud_mean_nodes_run"])
    paper_row("avg execution nodes, until shutdown",
              PAPER["cloud_mean_nodes_until_shutdown"],
              rows["cloud_mean_nodes_until_shutdown"])
    paper_row("resource usage saving (%)",
              PAPER["resource_usage_saving"] * 100,
              rows["resource_usage_saving"] * 100)
    paper_row("extra run time (%)",
              PAPER["extra_run_time"] * 100, rows["extra_run_time"] * 100)

    # Shape acceptance: elastic is slower (single-digit %) but substantially
    # cheaper; shutdown trails turn-around; averages ordered as in Table 3.
    assert 0.02 <= rows["extra_run_time"] <= 0.15
    assert 0.25 <= rows["resource_usage_saving"] <= 0.45
    assert rows["cloud_shutdown_s"] > rows["cloud_turnaround_s"]
    assert rows["cloud_mean_nodes_until_shutdown"] <= \
        rows["cloud_mean_nodes_run"]
    assert rows["cloud_mean_nodes_run"] < rows["dedicated_mean_nodes_run"]

    # Tight bands around the calibrated reproduction (±10%).
    assert rows["cloud_turnaround_s"] == pytest.approx(
        PAPER["cloud_turnaround_s"], rel=0.10)
    assert rows["cloud_mean_nodes_run"] == pytest.approx(
        PAPER["cloud_mean_nodes_run"], rel=0.10)
    assert rows["resource_usage_saving"] == pytest.approx(
        PAPER["resource_usage_saving"], abs=0.05)


def test_table3_elastic_completes_every_job(benchmark, elastic_run):
    benchmark.pedantic(lambda: elastic_run.jobs_completed,
                       rounds=1, iterations=1)
    assert elastic_run.jobs_completed == 402
    assert elastic_run.peak_nodes <= 16
