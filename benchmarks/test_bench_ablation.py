"""Ablation benches for the design choices the paper calls out.

Each bench varies one knob of the §6 setup on a scaled-down workload (same
structure: 2 staggered seeds, refinement batches) and prints the sweep.
"""

import pytest

from repro.experiments import TestbedConfig, run_elastic
from repro.grid import PolymorphSearchConfig
from repro.monitoring import Measurement, encode_measurement, naive_json_size

SMALL = PolymorphSearchConfig(
    seed_durations_s=(600.0, 900.0),
    refinements_per_seed=48,
    refinement_mean_s=90.0,
    setup_s=20, gather_s=20, generate_s=5,
)


def test_monitoring_period_sweep(benchmark):
    """§4.2.1: the monitoring rate must be "balanced against expected
    response time". Slow publication delays spike detection and lengthens
    the run. (The relationship is not strictly monotone at the fast end:
    very fast monitoring also accelerates scale-*down* reactions to
    transient queue dips — exactly the duplicate-response hazard the paper
    warns the rate must be balanced against.)"""

    def sweep():
        out = {}
        for period in (5.0, 30.0, 300.0):
            cfg = TestbedConfig(monitoring_period_s=period)
            out[period] = run_elastic(SMALL, cfg).turnaround_s
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n  monitoring period (s) → turn-around (s):",
          {k: round(v) for k, v in results.items()})
    # Slow monitoring is unambiguously worse than either fast setting.
    assert results[300.0] > results[5.0]
    assert results[300.0] > results[30.0]


def test_scale_threshold_sweep(benchmark):
    """The §6.1.2 rule's jobs-per-instance threshold (4): lower thresholds
    scale earlier (more nodes, faster); higher thresholds save more."""

    def sweep():
        out = {}
        for threshold in (1.0, 4.0, 16.0):
            cfg = TestbedConfig(scale_threshold=threshold)
            r = run_elastic(SMALL, cfg)
            out[threshold] = (r.turnaround_s, r.mean_nodes_run)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n  threshold → (turnaround s, mean nodes):",
          {k: (round(t), round(n, 2)) for k, (t, n) in results.items()})
    # Aggressive scaling allocates at least as many nodes on average...
    assert results[1.0][1] >= results[16.0][1]
    # ...and conservative scaling must not be faster.
    assert results[16.0][0] >= results[1.0][0]


def test_image_prestaging(benchmark):
    """§6.1.4: "relying on pre-existing images to avoid replication" trades
    storage for provisioning latency."""

    def compare():
        base = run_elastic(SMALL, TestbedConfig(prestage_images=False))
        pre = run_elastic(SMALL, TestbedConfig(prestage_images=True))
        return base.turnaround_s, pre.turnaround_s

    base_t, pre_t = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\n  turnaround: copy-on-deploy={base_t:.0f}s "
          f"prestaged={pre_t:.0f}s (saves {base_t - pre_t:.0f}s)")
    assert pre_t < base_t
    # The saving is in the order of the per-VM image copy time.
    assert base_t - pre_t > 30


def test_app_vs_infra_kpi(benchmark):
    """§7: EC2-style CPU-utilisation triggers cannot see the scheduling
    process. A node running its single job is 100% busy whether the queue
    holds 1 job or 200, so utilisation over-provisions during the seed phase
    — application-level queue KPIs allocate strictly less."""

    def compare():
        app = run_elastic(SMALL, TestbedConfig(trigger_mode="app"))
        infra = run_elastic(SMALL, TestbedConfig(trigger_mode="infra"))
        return app, infra

    app, infra = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\n  app KPI:   turnaround={app.turnaround_s:.0f}s "
          f"mean nodes={app.mean_nodes_run:.2f}")
    print(f"  infra KPI: turnaround={infra.turnaround_s:.0f}s "
          f"mean nodes={infra.mean_nodes_run:.2f}")
    assert infra.mean_nodes_run > app.mean_nodes_run
    assert app.jobs_completed == infra.jobs_completed == SMALL.total_jobs


def test_placement_policies(benchmark):
    """VEEM placement policy (§2): packing vs. spreading the exec VMs.

    With the per-host cap of 4 all policies fit 16 VMs on 4+ hosts; the
    difference is how many *hosts* are touched at mid scale — BestFit packs,
    WorstFit spreads. (On real hardware that changes consolidation/power;
    here we verify the policies drive measurably different placements.)
    """
    from repro.cloud import (
        BestFit, ComponentCap, DeploymentDescriptor, Host, ImageRepository,
        Placer, VEEM, WorstFit,
    )
    from repro.sim import Environment

    def used_hosts(policy):
        env = Environment()
        repo = ImageRepository()
        repo.add("img", size_mb=10)
        veem = VEEM(env, repository=repo,
                    placer=Placer(policy=policy,
                                  constraints=[ComponentCap("exec", 4)]))
        for i in range(6):
            veem.add_host(Host(env, f"h{i}", cpu_cores=4, memory_mb=8192))
        for i in range(8):   # half the maximum cluster
            veem.submit(DeploymentDescriptor(
                name=f"exec-{i}", memory_mb=2048, cpu=1,
                disk_source=repo.get("img").href,
                service_id="svc", component_id="exec"))
        env.run()
        return sum(1 for h in veem.hosts if h.vms)

    def compare():
        return used_hosts(BestFit()), used_hosts(WorstFit())

    packed, spread = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\n  hosts used for 8 exec VMs: BestFit={packed} WorstFit={spread}")
    assert packed < spread
    assert packed == 2   # 4-per-host cap → 8 VMs pack onto exactly 2 hosts
    assert spread == 6   # spread across every host


def test_codec_size(benchmark):
    """§5.2.6: "the measurement encoding is made as small as possible by only
    sending the values" — XDR + information-model split vs. a
    self-describing JSON encoding."""

    m = Measurement(
        qualified_name="uk.ucl.condor.schedd.queuesize",
        service_id="polymorph-1", probe_id="probe-7",
        timestamp=1234.5, values=(42,), seqno=17,
    )
    names, units = ["queuesize"], ["jobs"]

    def sizes():
        return len(encode_measurement(m)), naive_json_size(m, names, units)

    xdr, json_ = benchmark.pedantic(sizes, rounds=1, iterations=1)
    ratio = json_ / xdr
    print(f"\n  wire bytes: XDR={xdr} JSON={json_} (JSON {ratio:.2f}× larger)")
    assert xdr < json_
    assert ratio > 1.5


def test_rule_cooldown_prevents_thrashing(benchmark):
    """Design choice: the per-rule cooldown (defaulting to the trigger's
    time constraint). Without it, one sustained queue spike would fire the
    deploy action on every evaluation tick."""
    from repro.core.manifest import ElasticityRule
    from repro.core.service_manager import RuleInterpreter
    from repro.monitoring import Measurement
    from repro.sim import Environment

    def count_firings(cooldown_s):
        env = Environment()
        calls = []
        rule = ElasticityRule.from_text(
            "up", "@q.size > 4", "deployVM(x)", defaults={"q.size": 0},
            time_constraint_ms=5000, cooldown_s=cooldown_s)
        interp = RuleInterpreter(
            env, "svc", executor=lambda a, r: calls.append(env.now) or True)
        interp.install(rule)
        interp.notify(Measurement("q.size", "svc", "p", 0.0, (100,)))
        interp.start()
        env.run(until=120)
        return len(calls)

    def compare():
        return count_firings(0.001), count_firings(None)  # None → default 5 s

    unthrottled, throttled = benchmark.pedantic(compare, rounds=1,
                                                iterations=1)
    print(f"\n  firings in 120 s of sustained condition: "
          f"no cooldown={unthrottled}, default cooldown={throttled}")
    assert throttled < unthrottled
    assert throttled == pytest.approx(120 / 5, abs=2)


def test_distribution_framework_utilisation(benchmark):
    """§5.2.5: the distribution framework is interchangeable; the trade-off
    is network utilisation. Multicast delivers every packet to every member;
    topic-routed pub/sub delivers only matches."""
    from repro.monitoring import (
        MeasurementStore, MulticastChannel, PubSubBroker, DataSource,
        Probe, ProbeAttribute, AttributeType,
    )
    from repro.sim import Environment

    def run(framework_cls):
        env = Environment()
        net = framework_cls(env)
        # Ten consumers, each interested in one of ten disjoint streams.
        for i in range(10):
            store = MeasurementStore()
            store.subscribe_to(net, qualified_name=f"uk.ucl.stream{i}.kpi")
        ds = DataSource(env, "ds", "svc", net)
        for i in range(10):
            ds.add_probe(Probe(
                name=f"p{i}", qualified_name=f"uk.ucl.stream{i}.kpi",
                attributes=[ProbeAttribute("v", AttributeType.INTEGER)],
                collector=lambda: (1,), data_rate_s=10))
        env.run(until=101)
        return net.bytes_published, net.bytes_delivered

    def compare():
        return run(MulticastChannel), run(PubSubBroker)

    (mc_pub, mc_del), (ps_pub, ps_del) = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    print(f"\n  multicast: published={mc_pub}B delivered={mc_del}B "
          f"(amplification ×{mc_del / mc_pub:.0f})")
    print(f"  pub/sub:   published={ps_pub}B delivered={ps_del}B "
          f"(amplification ×{ps_del / ps_pub:.0f})")
    assert mc_pub == ps_pub                 # same producer traffic
    assert mc_del == 10 * mc_pub            # every member gets every packet
    assert ps_del == ps_pub                 # exactly one interested consumer


def test_dht_vnode_balance(benchmark):
    """§5.2.7 information model: virtual nodes even out the key
    distribution across DHT nodes."""
    from repro.monitoring import DHTRing

    def imbalance(vnodes):
        ring = DHTRing(vnodes=vnodes)
        for i in range(6):
            ring.join(f"node-{i}")
        for i in range(3000):
            ring.put(f"/schema/probe-{i}/name", i)
        return ring.imbalance()

    def compare():
        return imbalance(1), imbalance(64)

    few, many = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\n  max/mean keys per node: 1 vnode → {few:.2f}, "
          f"64 vnodes → {many:.2f}")
    assert many < few
    assert many < 1.5


def test_bootstrap_instances_sweep(benchmark):
    """The documented rule-set completion: the bootstrap size controls how
    quickly the seed jobs start from a cold (zero-instance) cluster. One
    bootstrap instance serialises the two seeds; two runs them in parallel
    (the dedicated baseline's behaviour); more buys nothing at this stage."""

    # A seed-dominated workload (tiny refinement batches): with a large
    # batch phase the ratio rule would mask the serialisation.
    seed_bound = PolymorphSearchConfig(
        seed_durations_s=(600.0, 900.0), refinements_per_seed=4,
        refinement_mean_s=30.0, setup_s=20, gather_s=20, generate_s=5)

    def sweep():
        out = {}
        for n in (1, 2, 4):
            # Bootstrap paced at the monitoring period: without that, the
            # 30 s-stale instances KPI lets the rule overshoot the target
            # size at cold start, masking the knob entirely.
            cfg = TestbedConfig(bootstrap_instances=n,
                                bootstrap_cooldown_s=35.0)
            out[n] = run_elastic(seed_bound, cfg).turnaround_s
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n  bootstrap instances → turn-around (s):",
          {k: round(v) for k, v in results.items()})
    # One instance serialises the seeds: slower by roughly a seed length.
    assert results[1] > results[2] + 400
    # Over-bootstrapping beyond the seed parallelism doesn't speed it up
    # much further (seeds are the bottleneck, not batch capacity).
    assert abs(results[4] - results[2]) < results[2] * 0.1


def test_suspend_pool_vs_cold_deploy(benchmark):
    """VM suspend/resume (§1 "booting, suspending or shutting down systems
    as required") as a warm-standby alternative to cold deployment: resume
    skips image replication, boot and registration."""
    from repro.cloud import (
        DeploymentDescriptor, Host, HypervisorTimings, ImageRepository, VEEM,
    )
    from repro.sim import Environment

    def latencies():
        env = Environment()
        repo = ImageRepository(bandwidth_mb_per_s=22.0)
        repo.add("exec", size_mb=4096)
        timings = HypervisorTimings(define_s=3, boot_s=50, shutdown_s=10,
                                    suspend_s=8, resume_s=6)
        veem = VEEM(env, repository=repo)
        veem.add_host(Host(env, "h0", cpu_cores=8, memory_mb=16384,
                           timings=timings))
        d = DeploymentDescriptor(
            name="exec", memory_mb=2048, cpu=1,
            disk_source=repo.get("exec").href,
            service_id="svc", component_id="exec")
        # Cold: submit → running.
        vm = veem.submit(d)
        env.run(until=vm.on_running)
        cold = vm.provisioning_time
        # Warm: suspend, then measure resume latency.
        done = {}

        def cycle(env):
            yield veem.suspend(vm)
            t0 = env.now
            yield veem.resume(vm)
            done["resume"] = env.now - t0

        env.process(cycle(env))
        env.run()
        return cold, done["resume"]

    cold, resume = benchmark.pedantic(latencies, rounds=1, iterations=1)
    print(f"\n  cold deploy: {cold:.0f}s; resume from suspend: {resume:.0f}s "
          f"({cold / resume:.0f}× faster)")
    assert resume < cold / 10
