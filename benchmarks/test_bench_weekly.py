"""§6.1.4 weekly-usage estimate: 69.18% resource-consumption drop.

"no searches were run on two days of the week, and searches, though of
varying size, were run only over a portion of the day" — the simulated week
follows that description; the dedicated baseline holds 16 nodes continuously.
"""

import pytest

from repro.experiments import run_week

from conftest import paper_row

PAPER_SAVING = 0.6918


def test_weekly_resource_saving(benchmark):
    result = benchmark.pedantic(run_week, rounds=1, iterations=1)

    print(f"\n  Weekly usage — {result.search_count} searches over 5 active "
          f"days, busy fraction {result.busy_fraction:.2f}")
    paper_row("weekly resource consumption drop (%)",
              PAPER_SAVING * 100, result.saving * 100)

    # Band: the paper's 69.18%, ±5 points.
    assert result.saving == pytest.approx(PAPER_SAVING, abs=0.05)

    # Structural checks from the description.
    active_days = {s.day for s in result.searches}
    assert len(active_days) == 5                      # two idle days
    sizes = {s.jobs for s in result.searches}
    assert len(sizes) > 5                             # varying size
    assert 0.3 < result.busy_fraction < 0.6           # portion of the day
    # The weekly saving exceeds the single-run saving (34%) because of idle
    # time — the paper's "even more significant cost savings".
    assert result.saving > 0.5
