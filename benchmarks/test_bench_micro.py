"""Micro-benchmarks of the hot paths.

Unlike the experiment benches (one deterministic run each), these exercise
small operations repeatedly under pytest-benchmark's measurement loop:
kernel event throughput, the XDR codec, DHT routing, expression evaluation
and rule-engine passes — the operations whose cost bounds how large a
simulated cloud the harness can drive.
"""

import pytest

from repro.core.manifest import parse_expression
from repro.monitoring import (
    AttributeType,
    DHTRing,
    DataSource,
    Measurement,
    PacketEncoder,
    Probe,
    ProbeAttribute,
    PubSubBroker,
    decode_measurement,
    encode_measurement,
    peek_header,
)
from repro.sim import Environment


def test_kernel_event_throughput(benchmark):
    """Schedule-and-run 10k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(100):
                yield env.timeout(1)

        for _ in range(100):
            env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run) == 100.0


def test_kernel_process_spawn(benchmark):
    """Spawn 1k short-lived processes."""

    def run():
        env = Environment()

        def short(env):
            yield env.timeout(1)

        for _ in range(1000):
            env.process(short(env))
        env.run()

    benchmark(run)


_MEASUREMENT = Measurement(
    qualified_name="uk.ucl.condor.schedd.queuesize",
    service_id="polymorph-1", probe_id="probe-7",
    timestamp=1234.5, values=(42, 3.25, "busy", True), seqno=17,
)
_PACKET = encode_measurement(_MEASUREMENT)


def test_codec_encode(benchmark):
    assert benchmark(encode_measurement, _MEASUREMENT) == _PACKET


def test_codec_decode(benchmark):
    assert benchmark(decode_measurement, _PACKET) == _MEASUREMENT


def test_codec_header_peek(benchmark):
    """The routing-only decode the fabric performs per packet."""
    header = benchmark(peek_header, _PACKET)
    assert header.qualified_name == _MEASUREMENT.qualified_name
    assert header.service_id == _MEASUREMENT.service_id


def test_codec_encode_cached_prefix(benchmark):
    """Steady-state probe encode: cached header prefix + per-packet fields."""
    encoder = PacketEncoder(_MEASUREMENT.qualified_name,
                            _MEASUREMENT.service_id, _MEASUREMENT.probe_id)
    assert benchmark(encoder.encode, _MEASUREMENT) == _PACKET


# ---------------------------------------------------------------------------
# Distribution fabric: broker fan-out at 1k subscriptions, probe emission
# ---------------------------------------------------------------------------

def _fanout_broker(reference):
    """A broker with 1 000 exact subscriptions (50 services × 20 streams)
    plus a sprinkle of glob subscribers, and 100 steady-state packets —
    pre-encoded by the producers' cached-prefix PacketEncoder, each
    matching exactly one exact subscription and one glob."""
    env = Environment()
    net = PubSubBroker(env, reference=reference)

    def sink(m):
        pass

    for i in range(1000):
        net.subscribe(sink, service_id=f"svc-{i % 50}",
                      qualified_name=f"uk.ucl.kpi.stream{i}")
    for i in range(10):
        net.subscribe(sink, service_id=f"svc-{i}",
                      qualified_name="uk.ucl.kpi.*")
    traffic = []
    for i in range(100):
        stream = (i * 7) % 1000
        m = Measurement(f"uk.ucl.kpi.stream{stream}", f"svc-{stream % 50}",
                        "probe-1", 0.0, (i,), seqno=i)
        encoder = PacketEncoder(m.qualified_name, m.service_id, m.probe_id)
        traffic.append((m, encoder.encode(m)))
    return net, traffic


def _publish_all(net, traffic):
    publish = net.publish
    for m, packet in traffic:
        publish(m, packet=packet)


def test_broker_fanout_indexed_1k(benchmark):
    """Routed delivery of 100 packets through 1k+ subscriptions, indexed
    routing (exact-topic dict + compiled globs + route cache)."""
    net, traffic = _fanout_broker(reference=False)
    benchmark(_publish_all, net, traffic)
    assert net.bytes_delivered > 0


def test_broker_fanout_reference_1k(benchmark):
    """Same traffic through the seed's linear-scan reference mode — the
    baseline the ≥5× indexed speedup is measured against."""
    net, traffic = _fanout_broker(reference=True)
    benchmark(_publish_all, net, traffic)
    assert net.bytes_delivered > 0


def test_probe_emission_throughput(benchmark):
    """End-to-end producer hot path: collect → cached-prefix encode →
    publish → indexed route → lazy decode → consumer callback, ×100."""
    env = Environment()
    net = PubSubBroker(env)
    net.subscribe(lambda m: None, service_id="svc-1",
                  qualified_name="uk.ucl.emit.kpi")
    ds = DataSource(env, "ds", "svc-1", net)
    ds.add_probe(Probe(
        name="emitter", qualified_name="uk.ucl.emit.kpi",
        attributes=[ProbeAttribute("value", AttributeType.INTEGER, "jobs")],
        collector=lambda: (7,), data_rate_s=30.0,
    ), start=False)
    emit = ds.emit_now

    def run():
        for _ in range(100):
            emit("emitter")

    benchmark(run)
    assert net.packets_published >= 100


def test_obs_overhead(benchmark):
    """Cost of the observability layer itself: span open → ambient emit →
    close, plus registry counter/histogram updates, ×500. Gated so the
    tracing machinery stays cheap enough to leave on in every run."""
    from repro.sim import TraceLog

    def run():
        env = Environment()
        trace = TraceLog(env)
        counter = env.metrics.counter("bench.obs.events")
        hist = env.metrics.histogram("bench.obs.span_s")
        for i in range(500):
            with trace.span_scope("bench", "op", i=i) as span:
                trace.emit("bench", "tick")
                counter.inc()
            hist.observe(span.duration)
        return counter.value

    assert benchmark(run) == 500


def test_dht_put_get(benchmark):
    ring = DHTRing(vnodes=32)
    for i in range(8):
        ring.join(f"node-{i}")
    keys = [f"/schema/probe-{i}/name" for i in range(200)]

    def run():
        for i, key in enumerate(keys):
            ring.put(key, i)
        return sum(ring.get(key) for key in keys)

    assert benchmark(run) == sum(range(200))


def test_dht_churn(benchmark):
    """Join/leave cycles with 500 resident keys."""

    def run():
        ring = DHTRing(vnodes=16)
        for i in range(4):
            ring.join(f"base-{i}")
        for i in range(500):
            ring.put(f"/k/{i}", i)
        ring.join("extra")
        ring.leave("base-0")
        return len(ring)

    assert benchmark(run) == 500


_EXPR = parse_expression(
    "(@uk.ucl.condor.schedd.queuesize / "
    "(@uk.ucl.condor.exec.instances.size + 1) > 4) && "
    "(@uk.ucl.condor.exec.instances.size < 16)"
)
_BINDINGS = {
    "uk.ucl.condor.schedd.queuesize": 200.0,
    "uk.ucl.condor.exec.instances.size": 5.0,
}.get


def test_expression_evaluation(benchmark):
    assert benchmark(_EXPR.evaluate, _BINDINGS) == 1.0


def test_expression_parse(benchmark):
    text = _EXPR.unparse()
    result = benchmark(parse_expression, text)
    assert result.kpi_references() == _EXPR.kpi_references()


def test_rule_engine_evaluation_pass(benchmark):
    """One evaluateRules() pass over 20 installed rules with live records."""
    from repro.core.manifest import ElasticityRule
    from repro.core.service_manager import RuleInterpreter

    env = Environment()
    interp = RuleInterpreter(env, "svc", executor=lambda a, r: False)
    for i in range(20):
        interp.install(ElasticityRule.from_text(
            f"rule-{i}", f"(@kpi.stream{i} > {i * 10}) && (@kpi.other < 5)",
            "notify()", defaults={f"kpi.stream{i}": 0, "kpi.other": 0}))
    for i in range(20):
        interp.notify(Measurement(f"kpi.stream{i}", "svc", "p", 0.0, (i,)))

    benchmark(interp.evaluate_rules)


def test_rule_engine_sparse_churn(benchmark):
    """Pass cost must track the *dirty* rule count, not the installed count.

    100 installed rules, but each iteration dirties exactly one KPI: the
    incremental engine should evaluate ~1 rule per pass.
    """
    from repro.core.manifest import ElasticityRule
    from repro.core.service_manager import RuleInterpreter

    env = Environment()
    interp = RuleInterpreter(env, "svc", executor=lambda a, r: False)
    n = 100
    for i in range(n):
        interp.install(ElasticityRule.from_text(
            f"rule-{i}", f"(@kpi.stream{i} > {n}) && (@kpi.stream{i} < {2 * n})",
            "notify()", defaults={f"kpi.stream{i}": 0}))
    interp.evaluate_rules()  # settle: every fresh rule goes cold
    churn = Measurement("kpi.stream42", "svc", "p", 0.0, (3,))

    def one_dirty_pass():
        interp.notify(churn)
        interp.evaluate_rules()

    benchmark(one_dirty_pass)
    assert interp.last_pass["installed"] == n
    assert interp.last_pass["evaluated"] == 1


def test_rule_engine_full_pass_compiled(benchmark):
    """The non-incremental baseline with compiled conditions: isolates the
    expression-compilation win from the dirty-set win."""
    from repro.core.manifest import ElasticityRule
    from repro.core.service_manager import RuleInterpreter

    env = Environment()
    interp = RuleInterpreter(env, "svc", executor=lambda a, r: False,
                             incremental=False)
    for i in range(20):
        interp.install(ElasticityRule.from_text(
            f"rule-{i}", f"(@kpi.stream{i} > {i * 10}) && (@kpi.other < 5)",
            "notify()", defaults={f"kpi.stream{i}": 0, "kpi.other": 0}))
    for i in range(20):
        interp.notify(Measurement(f"kpi.stream{i}", "svc", "p", 0.0, (i,)))

    benchmark(interp.evaluate_rules)
    assert interp.last_pass["evaluated"] == 20


def test_manifest_xml_round_trip(benchmark):
    from repro.experiments import TestbedConfig, polymorph_manifest
    from repro.core.manifest import manifest_from_xml, manifest_to_xml

    manifest = polymorph_manifest(TestbedConfig())

    def round_trip():
        return manifest_from_xml(manifest_to_xml(manifest))

    assert benchmark(round_trip) == manifest


def test_control_plane_churn(benchmark):
    """Full control-plane churn round: burst-submit 8 services from 3
    tenants onto a 4-host site, drain the queue through releases."""
    from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
    from repro.control import ControlPlane, TenantQuota
    from repro.core.manifest import ManifestBuilder

    timings = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)
    manifests = [
        ManifestBuilder(f"svc{i}")
        .component("app", image_mb=64, cpu=4, memory_mb=8192)
        .build()
        for i in range(8)
    ]

    def churn():
        env = Environment()
        control = ControlPlane(env)
        veem = VEEM(env,
                    repository=ImageRepository(bandwidth_mb_per_s=1000))
        for i in range(4):
            veem.add_host(Host(env, f"h{i}", cpu_cores=4, memory_mb=8192,
                               timings=timings))
        control.add_site("site", veem)
        for t in range(3):
            control.register_tenant(f"t{t}",
                                    quota=TenantQuota(max_services=3))
        for i, manifest in enumerate(manifests):
            control.submit(f"t{i % 3}", manifest, service_id=f"svc-{i}")
        env.run(until=500)
        while control.active_requests() or control.queue_depth:
            for request in control.active_requests():
                control.release(request)
            env.run(until=env.now + 500)
        return control.counters["released"]

    assert benchmark(churn) == 8


def test_solver_fallback_admission(benchmark):
    """Greedy-fails → solver-rescues round trip: submit a service whose
    sequential placement strands an instance on a 2-host site, let the
    control plane re-plan it with the constraint solver and drive the
    pinned deployment to ACTIVE. Gates the full fallback path — encode,
    search, pin replay — that runs between a CapacityError and a reject."""
    from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
    from repro.control import ControlPlane, RequestState
    from repro.core.manifest import ManifestBuilder

    timings = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)
    builder = ManifestBuilder("ragged")
    for name, cpu in (("a", 5), ("b", 4), ("c", 6), ("d", 5)):
        builder.component(name, image_mb=64, cpu=cpu, memory_mb=1024)
    manifest = builder.build()

    def rescue():
        env = Environment()
        control = ControlPlane(env)
        veem = VEEM(env,
                    repository=ImageRepository(bandwidth_mb_per_s=1000))
        for i in range(2):
            veem.add_host(Host(env, f"h{i}", cpu_cores=10, memory_mb=16384,
                               timings=timings))
        control.add_site("site", veem)
        control.register_tenant("t")
        outcome = control.submit("t", manifest)
        env.run(until=500)
        assert outcome.request.state is RequestState.ACTIVE
        return int(control._m_solver_rescued.value)

    assert benchmark(rescue) == 1


def test_whatif_federation_probe(benchmark):
    """Exact what-if probe across a partially loaded 4-site federation:
    greedy verdict per site plus the solver's second opinion where FFD
    refuses. what_if is pure, so one federation serves every iteration."""
    from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
    from repro.control import ControlPlane
    from repro.core.manifest import ManifestBuilder

    timings = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)
    env = Environment()
    control = ControlPlane(env)
    for s in range(4):
        veem = VEEM(env, name=f"site-{s}",
                    repository=ImageRepository(bandwidth_mb_per_s=1000))
        for i in range(4):
            veem.add_host(Host(env, f"site-{s}-h{i}", cpu_cores=10,
                               memory_mb=16384, timings=timings))
        control.add_site(f"site-{s}", veem)
    control.register_tenant("t")
    filler = (ManifestBuilder("filler")
              .component("app", image_mb=64, cpu=6, memory_mb=8192)
              .build())
    for i in range(6):
        control.submit("t", filler, service_id=f"filler-{i}")
    env.run(until=500)
    probe = ManifestBuilder("probe")
    for name, cpu in (("a", 5), ("b", 4), ("c", 4), ("d", 3),
                      ("e", 2), ("f", 2)):
        probe.component(name, image_mb=64, cpu=cpu, memory_mb=512)
    probe = probe.build()

    report = benchmark(control.what_if, probe)
    assert report.fits or report.solver_only


def test_kernel_10m_events(benchmark):
    """Pure-timeout churn, 10M events, at the scale harness's signature
    shape: synchronized waves of same-instant timeouts (every monitoring
    agent in a federation ticks on the same 60 s grid).

    The headline metric is drain-side dispatch throughput — events/sec
    with the (timed-separately) creation loops subtracted — measured on
    the calendar-queue kernel and compared against the heap oracle running
    one identical wave. Same-instant waves are the heap's worst case
    (every sift compares tied ``(time, priority)`` prefixes) and the
    wheel's best (one bucket adoption, then pure deque pops), which is
    precisely the workload the kernel was rebuilt for.
    """
    import gc
    from time import perf_counter

    def churn(reference, waves, per_wave):
        env = Environment(reference=reference)
        state = {"wave": 0, "create_s": 0.0}
        timeout = env.timeout

        def next_wave(_event):
            w = state["wave"]
            if w >= waves:
                return
            state["wave"] = w + 1
            t0 = perf_counter()
            for _ in range(per_wave - 1):
                timeout(60.0)
            tail = timeout(60.0)
            tail.callbacks.append(next_wave)
            state["create_s"] += perf_counter() - t0

        first = env.timeout(0.0)
        first.callbacks.append(next_wave)
        # One wave of events is live at a time (memory-bounded); GC off so
        # collector pauses don't land on either kernel's account.
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = perf_counter()
            env.run()
            wall = perf_counter() - t0
        finally:
            if was_enabled:
                gc.enable()
        return env.events_processed, wall, state["create_s"]

    def wheel_churn():
        return churn(False, waves=10, per_wave=1_000_000)

    events, wall, create_s = benchmark.pedantic(
        wheel_churn, rounds=1, iterations=1)
    heap_events, heap_wall, heap_create_s = churn(
        True, waves=1, per_wave=1_000_000)

    drain_eps = events / (wall - create_s)
    heap_drain_eps = heap_events / (heap_wall - heap_create_s)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["drain_events_per_sec"] = round(drain_eps)
    benchmark.extra_info["heap_drain_events_per_sec"] = round(heap_drain_eps)
    benchmark.extra_info["end_to_end_events_per_sec"] = round(events / wall)
    benchmark.extra_info["heap_end_to_end_events_per_sec"] = round(
        heap_events / heap_wall)
    benchmark.extra_info["drain_speedup"] = round(
        drain_eps / heap_drain_eps, 2)
    assert events > 10_000_000
    assert drain_eps >= 5 * heap_drain_eps


def test_scale_rss_per_1k_vms(benchmark):
    """Peak RSS per 1k peak VMs of a small federation scale run.

    Runs ``python -m repro scale`` in a fresh interpreter (so the figure is
    not polluted by whatever this process has already allocated) and parses
    the footprint line of the report. Gated as a memory metric by
    ``check_regression.py`` — a footprint regression won't move any median.
    """
    import os
    import re
    import subprocess
    import sys

    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    cmd = [sys.executable, "-m", "repro", "scale", "--sites", "4",
           "--services", "1000", "--hours", "0.5", "--seed", "2010"]

    def run():
        out = subprocess.run(
            cmd, capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": src})
        match = re.search(r"\(([0-9.]+) MB per 1k VMs\)", out.stdout)
        assert match, out.stdout
        return float(match.group(1))

    rss_mb_per_1k = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rss_mb_per_1k_vms"] = rss_mb_per_1k
    assert rss_mb_per_1k > 0


def test_vm_table_capacity_scan(benchmark):
    """Struct-of-arrays fleet scans: census + filtered scans + capacity
    aggregation over a 20k-VM table with a third of the fleet terminal.

    This is the per-tick introspection work of the scale harness
    (active counts, per-service scans, reserved-capacity sums) on the
    dense ``array`` columns instead of VM object chains.
    """
    from repro.cloud.vm import DeploymentDescriptor, VirtualMachine, VMState
    from repro.cloud.vmtable import VMTable

    env = Environment()
    table = VMTable()
    vms = []
    for i in range(20_000):
        vm = VirtualMachine(env, f"vm-{i}", DeploymentDescriptor(
            name=f"vm-{i}", memory_mb=1024.0, cpu=1.0,
            disk_source="img://app",
            service_id=f"svc-{i % 400}", component_id="app"))
        table.add(vm)
        vms.append(vm)
    for i, vm in enumerate(vms):
        vm.transition(VMState.STAGING)
        vm.transition(VMState.BOOTING)
        vm.transition(VMState.RUNNING)
        if i % 3 == 0:
            vm.transition(VMState.SHUTTING_DOWN)
            vm.transition(VMState.STOPPED)

    def scan():
        active = table.active_count
        cpu, mem = table.active_capacity()
        matches = len(table.active_indices(service_id="svc-7"))
        return active, cpu, matches

    active, cpu, matches = benchmark(scan)
    assert active == 20_000 - (20_000 + 2) // 3
    assert cpu == float(active)
    assert matches > 0


def test_scale_parallel_speedup(benchmark):
    """Sharded scale harness speedup: `--procs 4` vs `--procs 1`, each in
    a fresh interpreter, on a federation big enough for the per-site
    simulation work to dominate the coordinator's planning phase.

    Requires 4 usable cores; on smaller boxes the bench skips and the
    regression gate treats it as conditional (present in the baseline only
    when produced on capable hardware).
    """
    import os
    import re
    import subprocess
    import sys

    if len(os.sched_getaffinity(0)) < 4:
        pytest.skip("needs >= 4 usable CPUs for a parallel speedup")

    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src"))

    def run_once(procs):
        cmd = [sys.executable, "-m", "repro", "scale", "--sites", "40",
               "--services", "2000", "--hours", "0.5", "--seed", "2010",
               "--procs", str(procs)]
        out = subprocess.run(
            cmd, capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": src})
        match = re.search(r"wall-clock/sim-h:\s+([0-9.]+) s", out.stdout)
        assert match, out.stdout
        return float(match.group(1))

    def measure():
        single = run_once(1)
        sharded = run_once(4)
        return single, sharded

    single, sharded = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = single / sharded if sharded else 0.0
    benchmark.extra_info["wall_s_per_sim_h_procs1"] = single
    benchmark.extra_info["wall_s_per_sim_h_procs4"] = sharded
    benchmark.extra_info["parallel_speedup"] = round(speedup, 2)
    assert speedup >= 2.0, (
        f"--procs 4 must be >= 2x faster than --procs 1 "
        f"(got {speedup:.2f}x: {single:.2f}s vs {sharded:.2f}s)")


def test_scenario_runner_overhead(benchmark):
    """End-to-end cost of one experiment cell through the scenario factory:
    seeded workload generation (flash crowd), chaos injection (a recovering
    host crash), the settle window, and the full §16 invariant sweep over a
    2-site federation.

    Headline-gated: this is the per-cell constant every sweep pays, so a
    regression here multiplies across whole experiment grids. The bare
    harness run is timed alongside and the factory's multiplier is recorded
    as ``scenario_overhead_x`` — generation + checking must stay a small
    fraction of the simulation itself.
    """
    from time import perf_counter

    from repro.experiments.scale import ScaleConfig, run_scale
    from repro.scenarios.chaos import HostCrash

    cell = ScaleConfig(
        sites=2, services=64, hours=0.25, random_seed=7,
        workload="flash-crowd", settle_s=120.0, check_invariants=True,
        chaos=(HostCrash(at_s=465.0, site="site-0",
                         recover_after_s=240.0),))
    bare = ScaleConfig(sites=2, services=64, hours=0.25, random_seed=7)

    report = benchmark(run_scale, cell)
    assert report.violations == ()
    assert report.admitted == 64

    t0 = perf_counter()
    run_scale(bare)
    bare_wall = perf_counter() - t0
    overhead = report.wall_s / bare_wall if bare_wall > 0 else 0.0
    benchmark.extra_info["cell_wall_s"] = round(report.wall_s, 4)
    benchmark.extra_info["bare_wall_s"] = round(bare_wall, 4)
    benchmark.extra_info["scenario_overhead_x"] = round(overhead, 2)


def test_metrics_merge_overhead(benchmark):
    """Telemetry shipping cost per epoch barrier: snapshot a worker-shaped
    registry, pickle it across the "pipe", and fold it into a coordinator
    registry with ``merge_snapshot``.

    The registry is populated by actually running the CI smoke federation
    (2 sites x 8 services, 0.25 h), so the instrument mix — per-site
    counters, labelled histograms, control-plane tallies — matches what a
    real worker ships. The measured round-trip is the *first* epoch's
    worst case (every instrument ships); later epochs ship deltas only.
    Headline-gated, and additionally bounded against the epoch's own
    simulation wall-clock: merging must stay under 5 % or per-epoch
    telemetry would tax the parallel harness it instruments.
    """
    import pickle
    from time import perf_counter

    from repro.control import ControlPlane
    from repro.experiments.scale import (
        WARMUP_S,
        ScaleConfig,
        _attach_agent,
        _build_site_veem,
        _draw_profiles,
        _register_tenants,
        _scale_manifest,
        _start_session_driver,
        _submit_all,
    )
    from repro.obs.metrics import (
        MetricsRegistry,
        SnapshotCursor,
        canonical_view,
    )

    cfg = ScaleConfig(sites=2, services=8, hours=0.25, settle_s=120.0)
    t0 = perf_counter()
    env = Environment()
    control = ControlPlane(env)
    for name in (f"site-{s}" for s in range(cfg.sites)):
        control.add_site(name, _build_site_veem(env, cfg, name,
                                                control.trace))
    _register_tenants(control, cfg)
    requests, *_ = _submit_all(control, cfg, _scale_manifest(cfg))
    states = [_start_session_driver(env, profile, cfg)
              for profile in _draw_profiles(cfg, requests)]
    env.run(until=WARMUP_S)
    site_by_name = {s.name: s for s in control.sites}
    for request, state in zip(requests, states):
        if request.service is not None:
            _attach_agent(env, cfg, site_by_name[request.site].manager,
                          request.service_id, state)
    env.run(until=cfg.duration_s + cfg.settle_s)
    sim_wall = perf_counter() - t0
    epochs = max(1, int((cfg.duration_s + cfg.settle_s) // cfg.epoch_s))
    epoch_wall = sim_wall / epochs

    def roundtrip():
        snap = SnapshotCursor().snapshot(env.metrics)
        coordinator = MetricsRegistry()
        coordinator.merge_snapshot(pickle.loads(pickle.dumps(snap)))
        return coordinator

    coordinator = benchmark(roundtrip)
    assert canonical_view(coordinator) == canonical_view(env.metrics)

    t0 = perf_counter()
    roundtrip()
    merge_s = perf_counter() - t0
    fraction = merge_s / epoch_wall if epoch_wall > 0 else 0.0
    benchmark.extra_info["instruments"] = len(env.metrics)
    benchmark.extra_info["epoch_wall_s"] = round(epoch_wall, 4)
    benchmark.extra_info["merge_fraction_of_epoch"] = round(fraction, 5)
    assert fraction < 0.05, (
        f"epoch telemetry merge took {fraction:.1%} of the epoch's "
        f"simulation wall-clock ({merge_s:.4f}s vs {epoch_wall:.4f}s)")
