"""Shared fixtures for the benchmark suite.

The full-size evaluation runs (Table 3 / Fig. 11 / weekly) are deterministic
whole-program simulations, so they are executed once per session and shared;
``benchmark.pedantic(rounds=1)`` records their wall time without re-running
a multi-second simulation dozens of times.
"""

import pytest

from repro.experiments import run_dedicated, run_elastic


@pytest.fixture(scope="session")
def dedicated_run():
    """The full-size Fig. 11 (left) / Table 3 dedicated baseline."""
    return run_dedicated()


@pytest.fixture(scope="session")
def elastic_run():
    """The full-size Fig. 11 (right) / Table 3 elastic run."""
    return run_elastic()


def paper_row(name: str, paper: float, measured: float, unit: str = ""):
    """Uniform printing of paper-vs-measured rows in benchmark logs."""
    delta = (measured - paper) / paper * 100 if paper else float("nan")
    print(f"    {name:<38} paper={paper:>10.2f}{unit}  "
          f"measured={measured:>10.2f}{unit}  ({delta:+.1f}%)")
