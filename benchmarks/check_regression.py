#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_micro.py -q \
        --benchmark-json=/tmp/bench.json
    python benchmarks/check_regression.py /tmp/bench.json

Exits non-zero if any headline benchmark's median regressed more than
``THRESHOLD`` (25%) against ``BENCH_baseline.json``. Medians are compared
rather than means because the shared CI boxes throw multi-millisecond
scheduling outliers that swamp a mean but barely move a median.

Refresh the baseline after an intentional performance change::

    python benchmarks/check_regression.py /tmp/bench.json --update
"""

import json
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"

#: The benches the PR acceptance criteria are stated against. Other benches
#: are tracked informally; only these gate.
HEADLINE = (
    "test_expression_evaluation",
    "test_rule_engine_evaluation_pass",
    "test_kernel_event_throughput",
    "test_broker_fanout_indexed_1k",
    "test_probe_emission_throughput",
    "test_codec_header_peek",
    "test_control_plane_churn",
    "test_solver_fallback_admission",
    "test_whatif_federation_probe",
    "test_obs_overhead",
    "test_kernel_10m_events",
    "test_vm_table_capacity_scan",
    "test_scenario_runner_overhead",
    "test_metrics_merge_overhead",
)

#: Recorded in the baseline for context (e.g. the linear-scan routing mode
#: the indexed-broker speedup is measured against) but never gated — the
#: reference paths are not optimisation targets.
INFORMATIONAL = (
    "test_broker_fanout_reference_1k",
)

#: Memory metrics gated alongside the medians: (bench name, extra_info key).
#: Benches record them via ``benchmark.extra_info``; a footprint regression
#: would not move any median, so these are compared explicitly.
MEMORY = (
    ("test_scale_rss_per_1k_vms", "rss_mb_per_1k_vms"),
)

#: Hardware-conditional gates: (bench name, extra_info key), higher is
#: better. These benches skip themselves on incapable boxes (e.g. the
#: parallel-speedup bench needs >= 4 cores), so a metric missing from the
#: current run is SKIPPED, not a failure; when the baseline carries a value
#: and the box produced one, it gates like everything else. ``--update``
#: preserves the previous baseline entry when the current run skipped.
CONDITIONAL = (
    ("test_scale_parallel_speedup", "parallel_speedup"),
)

THRESHOLD = 0.25


def load_medians(path):
    with open(path) as fh:
        data = json.load(fh)
    if "benchmarks" in data and isinstance(data["benchmarks"], list):
        # raw pytest-benchmark output
        return {b["name"]: b["stats"]["median"] for b in data["benchmarks"]}
    # our slim committed format
    medians = {name: entry["median_s"]
               for name, entry in data["headline"].items()}
    for name, entry in data.get("informational", {}).items():
        medians[name] = entry["median_s"]
    return medians


def load_memory(path):
    """Memory metrics as {(bench name, metric key): value}."""
    with open(path) as fh:
        data = json.load(fh)
    metrics = {}
    if "benchmarks" in data and isinstance(data["benchmarks"], list):
        for b in data["benchmarks"]:
            for key, value in b.get("extra_info", {}).items():
                if isinstance(value, (int, float)):
                    metrics[(b["name"], key)] = float(value)
        return metrics
    for section in ("memory", "conditional"):
        for name, entry in data.get(section, {}).items():
            for key, value in entry.items():
                metrics[(name, key)] = float(value)
    return metrics


def main(argv):
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 2
    current = load_medians(argv[0])
    current_memory = load_memory(argv[0])
    if "--update" in argv[1:]:
        memory = {}
        for name, key in MEMORY:
            if (name, key) in current_memory:
                memory.setdefault(name, {})[key] = current_memory[(name, key)]
        conditional = {}
        previous = (load_memory(BASELINE_PATH)
                    if BASELINE_PATH.exists() else {})
        for name, key in CONDITIONAL:
            if (name, key) in current_memory:
                conditional.setdefault(name, {})[key] = \
                    current_memory[(name, key)]
            elif (name, key) in previous:
                # Bench skipped on this box: keep the capable-box baseline.
                conditional.setdefault(name, {})[key] = previous[(name, key)]
        slim = {
            "comment": "medians in seconds; refresh via check_regression.py "
                       "--update after intentional perf changes",
            "headline": {name: {"median_s": current[name]}
                         for name in HEADLINE},
            "informational": {name: {"median_s": current[name]}
                              for name in INFORMATIONAL if name in current},
            "memory": memory,
            "conditional": conditional,
        }
        BASELINE_PATH.write_text(json.dumps(slim, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_PATH}")
        return 0
    baseline = load_medians(BASELINE_PATH)
    baseline_memory = load_memory(BASELINE_PATH)
    failed = False
    for name in HEADLINE:
        if name not in current:
            print(f"MISSING  {name}: not in {argv[0]}")
            failed = True
            continue
        if name not in baseline:
            print(f"NO-BASELINE {name}: add its median to "
                  f"{BASELINE_PATH.name}")
            failed = True
            continue
        base, now = baseline[name], current[name]
        delta = (now - base) / base
        status = "OK"
        if delta > THRESHOLD:
            status = "REGRESSED"
            failed = True
        print(f"{status:<10}{name}: baseline {base * 1e6:.1f}us, "
              f"current {now * 1e6:.1f}us ({delta:+.1%})")
    for name, key in MEMORY:
        if (name, key) not in current_memory:
            print(f"MISSING  {name}[{key}]: not in {argv[0]}")
            failed = True
            continue
        if (name, key) not in baseline_memory:
            print(f"NO-BASELINE {name}[{key}]: add it to "
                  f"{BASELINE_PATH.name}")
            failed = True
            continue
        base = baseline_memory[(name, key)]
        now = current_memory[(name, key)]
        delta = (now - base) / base
        status = "OK"
        if delta > THRESHOLD:
            status = "REGRESSED"
            failed = True
        print(f"{status:<10}{name}[{key}]: baseline {base:.1f}, "
              f"current {now:.1f} ({delta:+.1%})")
    for name, key in CONDITIONAL:
        if (name, key) not in baseline_memory:
            print(f"SKIPPED  {name}[{key}]: no baseline (bench needs "
                  f"capable hardware to record one)")
            continue
        if (name, key) not in current_memory:
            print(f"SKIPPED  {name}[{key}]: not measured on this box")
            continue
        base = baseline_memory[(name, key)]
        now = current_memory[(name, key)]
        # Higher is better for conditional metrics (they are speedups).
        delta = (base - now) / base
        status = "OK"
        if delta > THRESHOLD:
            status = "REGRESSED"
            failed = True
        print(f"{status:<10}{name}[{key}]: baseline {base:.2f}x, "
              f"current {now:.2f}x ({-delta:+.1%})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
