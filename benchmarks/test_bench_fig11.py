"""Fig. 11 reproduction: job submission and resource availability.

The paper's figure plots queued jobs against allocated Condor execution
instances for both runs. These benches regenerate the two panels, print them
as text charts, and assert the qualitative features the paper calls out:

* two staggered queue spikes (one per seed-job completion);
* dedicated: a flat 16-node line;
* elastic: "a small delay can be observed between increases in the number of
  jobs in queue, and the increase in Condor execution services" and
  "a complete deallocation as these jobs complete".
"""

from repro.experiments import extract_series, render_run


def _spike_starts(series, jump=100.0, window_s=120.0, spacing_s=600.0):
    """Times of sudden queue build-ups: the value rose by ≥ ``jump`` within
    ``window_s``. Batch submissions enqueue ~200 jobs near-instantly, so each
    shows up as one spike; ``spacing_s`` separates distinct spikes (the
    queue need not drain to zero between the two batches)."""
    spikes = []
    for t, v in series.steps():
        if spikes and t - spikes[-1] < spacing_s:
            continue
        if v - series.value_at(max(t - window_s, series.times[0])) >= jump:
            spikes.append(t)
    return spikes


def test_fig11_dedicated(benchmark, dedicated_run):
    result = benchmark.pedantic(lambda: dedicated_run, rounds=1, iterations=1)
    print("\n" + render_run(result, width=72))

    # Flat 16-node availability line.
    assert result.nodes_series.maximum() == 16
    samples = result.nodes_series.sample(result.run_start, result.run_end, 300)
    assert all(v == 16 for _, v in samples)

    # Two staggered batch spikes.
    spikes = _spike_starts(result.queue_series)
    assert len(spikes) == 2
    assert spikes[1] - spikes[0] > 600  # visibly staggered

    # Queue fully drained by the end.
    assert result.queue_series.current == 0


def test_fig11_elastic(benchmark, elastic_run):
    result = benchmark.pedantic(lambda: elastic_run, rounds=1, iterations=1)
    print("\n" + render_run(result, width=72))

    # Two staggered batch spikes, as in the dedicated chart.
    spikes = _spike_starts(result.queue_series)
    assert len(spikes) == 2

    # Scale-up lag: the instance ramp to full size completes only after the
    # first queue spike began.
    full_at = next(t for t, v in result.nodes_series.steps() if v >= 16)
    assert full_at > spikes[0]

    # Bootstrap phase: a small cluster carries the seeds before the first
    # spike. (A brief overshoot right at bootstrap is expected — the
    # instances KPI is 30 s stale, so the bootstrap rule can fire a few
    # extra times before the scale-down rule trims back; the time-averaged
    # seed-phase allocation stays small.)
    pre_spike_mean = result.nodes_series.mean(result.run_start, spikes[0])
    assert pre_spike_mean < 4
    assert result.nodes_series.value_at(spikes[0] - 1) <= 3

    # Complete deallocation at the end.
    assert result.nodes_series.current == 0
    assert result.shutdown_time_s is not None


def test_fig11_series_export(benchmark, elastic_run, dedicated_run):
    """The figure's underlying series export on a regular grid."""
    benchmark.pedantic(extract_series, args=(elastic_run,),
                       kwargs={"period_s": 60.0}, rounds=1, iterations=1)
    for run in (dedicated_run, elastic_run):
        series = extract_series(run, period_s=60.0)
        assert len(series.times) > 100
        assert len(series.times) == len(series.queued) == len(series.instances)
        assert max(series.queued) > 150        # the 200-job batches
        assert max(series.instances) == 16
        # grid is uniform
        gaps = {round(b - a, 6) for a, b in zip(series.times, series.times[1:])}
        assert gaps == {60.0}
