"""Failure injection and self-healing tests.

§1: the infrastructure must "replicate components and provide additional
resources as demand grows or components become unavailable" — these tests
crash VMs and whole hosts and verify the stack heals: the lifecycle manager
redeploys below-minimum components, the scheduler requeues interrupted jobs,
and placement avoids failed hosts.

Topologies and manifests come from :mod:`repro.scenarios.library`; the
tests here only inject faults and assert.
"""

import pytest

from repro.cloud import (
    DeploymentDescriptor,
    Host,
    LifecycleError,
    PlacementError,
    VMState,
)
from repro.core.manifest import ManifestBuilder
from repro.core.service_manager import ServiceManager
from repro.grid import Job, JobState
from repro.scenarios.library import (
    FAILURE_TIMINGS,
    build_cluster,
    make_veem,
    simple_manifest,
)
from repro.sim import Environment


def failure_veem(env, n_hosts=3):
    return make_veem(env, n_hosts, timings=FAILURE_TIMINGS)


# ---------------------------------------------------------------------------
# Cloud-layer failure mechanics
# ---------------------------------------------------------------------------

def test_vm_failure_releases_resources():
    env = Environment()
    veem = failure_veem(env)
    vm = veem.submit(DeploymentDescriptor(
        name="x", memory_mb=1024, cpu=1,
        disk_source=veem.repository.add("img", 100).href,
        networks=("net",), component_id="x", service_id="s"))
    env.run(until=vm.on_running)
    host = vm.host
    cpu_before = host.cpu_free
    veem.inject_vm_failure(vm)
    assert vm.state is VMState.FAILED
    assert host.cpu_free == cpu_before + 1
    assert veem.networks.get("net").allocated == 0
    rec = veem.trace.last(kind="vm.failed")
    assert rec.details["vm"] == vm.vm_id


def test_vm_failure_during_boot_is_safe():
    """Failing a VM mid-provisioning must not crash the deploy process."""
    env = Environment()
    veem = failure_veem(env)
    href = veem.repository.add("img", 100).href
    vm = veem.submit(DeploymentDescriptor(
        name="x", memory_mb=1024, cpu=1, disk_source=href,
        component_id="x", service_id="s"))
    env.run(until=2)  # staging/booting
    assert vm.state in (VMState.STAGING, VMState.BOOTING)
    veem.inject_vm_failure(vm)
    env.run()  # the deploy process must exit quietly
    assert vm.state is VMState.FAILED
    assert vm.running_at is None


def test_vm_failure_on_inactive_rejected():
    env = Environment()
    veem = failure_veem(env)
    href = veem.repository.add("img", 100).href
    vm = veem.submit(DeploymentDescriptor(
        name="x", memory_mb=1024, cpu=1, disk_source=href,
        component_id="x", service_id="s"))
    env.run(until=vm.on_running)
    veem.inject_vm_failure(vm)
    with pytest.raises(LifecycleError):
        veem.inject_vm_failure(vm)


def test_host_failure_kills_all_residents():
    env = Environment()
    veem = failure_veem(env, n_hosts=2)
    href = veem.repository.add("img", 100).href
    vms = [veem.submit(DeploymentDescriptor(
        name=f"x{i}", memory_mb=1024, cpu=1, disk_source=href,
        component_id="x", service_id="s")) for i in range(3)]
    env.run(until=env.all_of([vm.on_running for vm in vms]))
    host0 = veem.hosts[0]
    residents = list(host0.vms)
    assert residents
    casualties = veem.inject_host_failure(host0)
    assert set(casualties) == set(residents)
    assert all(vm.state is VMState.FAILED for vm in casualties)
    assert host0.failed and host0.vms == []


def test_failed_host_excluded_from_placement():
    env = Environment()
    veem = failure_veem(env, n_hosts=2)
    href = veem.repository.add("img", 100).href
    veem.inject_host_failure(veem.hosts[0])
    vm = veem.submit(DeploymentDescriptor(
        name="x", memory_mb=1024, cpu=1, disk_source=href,
        component_id="x", service_id="s"))
    env.run(until=vm.on_running)
    assert vm.host is veem.hosts[1]
    # All hosts down → placement fails outright.
    veem.inject_host_failure(veem.hosts[1])
    with pytest.raises(PlacementError):
        veem.submit(DeploymentDescriptor(
            name="y", memory_mb=1024, cpu=1, disk_source=href,
            component_id="x", service_id="s"))


def test_host_recovery_restores_placement():
    env = Environment()
    veem = failure_veem(env, n_hosts=1)
    href = veem.repository.add("img", 100).href
    veem.inject_host_failure(veem.hosts[0])
    veem.recover_host(veem.hosts[0])
    vm = veem.submit(DeploymentDescriptor(
        name="x", memory_mb=1024, cpu=1, disk_source=href,
        component_id="x", service_id="s"))
    env.run(until=vm.on_running)
    assert vm.state is VMState.RUNNING


def test_unmanaged_host_failure_rejected():
    env = Environment()
    veem = failure_veem(env)
    alien = Host(env, "alien")
    with pytest.raises(PlacementError):
        veem.inject_host_failure(alien)
    with pytest.raises(PlacementError):
        veem.recover_host(alien)


# ---------------------------------------------------------------------------
# Lifecycle self-healing
# ---------------------------------------------------------------------------

def test_failed_fixed_component_is_redeployed():
    env = Environment()
    veem = failure_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(simple_manifest(minimum=1, initial=1, maximum=1))
    env.run(until=service.deployment)
    original = service.lifecycle.components["web"].vms[0]
    veem.inject_vm_failure(original)
    env.run(until=env.now + 60)
    assert service.instance_count("web") == 1
    replacement = [vm for vm in service.lifecycle.components["web"].vms
                   if vm.state is VMState.RUNNING]
    assert len(replacement) == 1
    assert replacement[0] is not original
    heal = sm.trace.last(kind="instance.heal")
    assert heal.details["failed_vm"] == original.vm_id


def test_healing_respects_elastic_floor():
    """An elastic component above its minimum is NOT healed — the rules own
    that capacity decision; below the minimum it is."""
    env = Environment()
    veem = failure_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(simple_manifest(minimum=1, initial=1, maximum=3))
    env.run(until=service.deployment)
    service.lifecycle.scale_up("web")
    env.run(until=env.now + 60)
    assert service.instance_count("web") == 2

    # Kill the extra instance: count 2 → 1 == minimum → no heal.
    extra = service.lifecycle.components["web"].vms[1]
    veem.inject_vm_failure(extra)
    env.run(until=env.now + 60)
    assert service.instance_count("web") == 1
    assert sm.trace.last(kind="instance.heal") is None

    # Kill the last one: 1 → 0 < minimum → heal.
    veem.inject_vm_failure(service.lifecycle.components["web"].vms[0])
    env.run(until=env.now + 60)
    assert service.instance_count("web") == 1
    assert sm.trace.last(kind="instance.heal") is not None


def test_auto_heal_can_be_disabled():
    env = Environment()
    veem = failure_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(simple_manifest())
    env.run(until=service.deployment)
    service.lifecycle.auto_heal = False
    veem.inject_vm_failure(service.lifecycle.components["web"].vms[0])
    env.run(until=env.now + 60)
    assert service.instance_count("web") == 0


def test_scale_down_victim_is_not_healed():
    """Releasing an instance (scale-down) must never trigger healing."""
    env = Environment()
    veem = failure_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(simple_manifest(minimum=1, initial=1, maximum=3))
    env.run(until=service.deployment)
    service.lifecycle.scale_up("web")
    env.run(until=env.now + 60)
    service.lifecycle.scale_down("web")
    env.run(until=env.now + 60)
    assert service.instance_count("web") == 1
    assert sm.trace.last(kind="instance.heal") is None


def test_termination_does_not_heal():
    env = Environment()
    veem = failure_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(simple_manifest())
    env.run(until=service.deployment)
    env.run(until=sm.undeploy(service))
    assert service.instance_count("web") == 0
    assert sm.trace.last(kind="instance.heal") is None


def test_host_failure_heals_whole_service():
    """Every component on a failed host is replaced on surviving hosts."""
    env = Environment()
    veem = failure_veem(env, n_hosts=3)
    sm = ServiceManager(env, veem)
    b = ManifestBuilder("multi")
    b.component("a", image_mb=100, cpu=2, memory_mb=2048)
    b.component("b", image_mb=100, cpu=2, memory_mb=2048)
    b.colocate("b", "a")   # both land on the same host
    service = sm.deploy(b.build())
    env.run(until=service.deployment)
    host = service.lifecycle.components["a"].vms[0].host
    assert service.lifecycle.components["b"].vms[0].host is host
    veem.inject_host_failure(host)
    env.run(until=env.now + 120)
    assert service.instance_count("a") == 1
    assert service.instance_count("b") == 1
    vms = [c.vms[-1] for c in service.lifecycle.components.values()]
    assert all(vm.host is not host for vm in vms)
    # Co-location still holds on the new placement.
    assert service.check_constraints().ok


# ---------------------------------------------------------------------------
# Scheduler node failure / job requeue
# ---------------------------------------------------------------------------

def test_node_failure_requeues_running_job():
    env = Environment()
    veem, sched, cluster = build_cluster(env)
    s1 = cluster.deploy_instance()
    s2 = cluster.deploy_instance()
    env.run(until=30)
    assert sched.node_count == 2
    job = sched.submit(Job(duration_s=500, input_mb=0, output_mb=0))
    env.run(until=40)
    assert job.state is JobState.RUNNING
    victim = next(s for s in (s1, s2) if s.node.busy)
    veem.inject_vm_failure(victim.vm)
    env.run(until=60)
    # Node vanished; the job restarted on the surviving node.
    assert sched.node_count == 1
    assert job.state is JobState.RUNNING
    env.run(until=700)
    assert job.state is JobState.COMPLETED
    rec = sched.trace.last(kind="node.failed")
    assert rec.details["requeued"] == job.job_id


def test_node_failure_while_idle_just_deregisters():
    env = Environment()
    veem, sched, cluster = build_cluster(env)
    service = cluster.deploy_instance()
    env.run(until=30)
    assert sched.node_count == 1
    veem.inject_vm_failure(service.vm)
    env.run(until=40)
    assert sched.node_count == 0
    rec = sched.trace.last(kind="node.failed")
    assert rec.details["requeued"] is None


def test_node_failure_before_registration_is_noop():
    env = Environment()
    veem, sched, cluster = build_cluster(env)
    service = cluster.deploy_instance()
    env.run(until=2)  # still provisioning
    veem.inject_vm_failure(service.vm)
    env.run(until=60)
    assert sched.node_count == 0
    assert sched.trace.last(kind="node.failed") is None
