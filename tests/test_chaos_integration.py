"""Chaos integration: the full stack under failures and churn.

Exercises several §5.2 monitoring requirements and the §1 availability claim
at once: monitoring survives VM migration ("Migration: so that any virtual
resource which moves from one physical host to another is monitored
correctly"), the elastic application rides through host failures, and the
system converges back to a consistent, constraint-clean state.
"""

from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM, VMState
from repro.core.manifest import ManifestBuilder
from repro.core.service_manager import ServiceManager
from repro.grid import (
    CondorExecDriver,
    CondorScheduler,
    Job,
    JobState,
    VirtualCluster,
)
from repro.monitoring import MeasurementJournal, MonitoringAgent
from repro.sim import Environment, RandomStreams

TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2,
                            migrate_suspend_s=2)


def make_sm(env, n_hosts=4):
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=8, memory_mb=16384,
                           timings=TIMINGS))
    return ServiceManager(env, veem)


def test_monitoring_survives_migration():
    """A migrated VM's agent keeps publishing without interruption."""
    env = Environment()
    sm = make_sm(env)
    b = ManifestBuilder("svc")
    b.component("app", image_mb=100, cpu=1, memory_mb=1024)
    service = sm.deploy(b.build(), service_id="svc-1")
    env.run(until=service.deployment)
    vm = service.lifecycle.components["app"].vms[0]

    journal = MeasurementJournal()
    journal.subscribe_to(sm.network)
    agent = MonitoringAgent(env, service_id="svc-1", component="app",
                            network=sm.network)
    agent.expose("svc.app.heartbeat", lambda: 1, frequency_s=10)

    env.run(until=env.now + 35)
    before = len(journal)
    assert before == 3

    target = next(h for h in sm.veem.hosts if h is not vm.host)

    def migrate(env):
        yield sm.veem.migrate(vm, target)

    env.process(migrate(env))
    env.run(until=env.now + 65)
    assert vm.host is target
    assert vm.state is VMState.RUNNING
    # No gap larger than ~2 publication periods across the migration window.
    gaps = journal.gaps_exceeding("svc-1", "svc.app.heartbeat", max_gap_s=20)
    assert gaps == []
    assert len(journal) >= before + 5


def test_elastic_grid_rides_through_host_failure():
    """Jobs complete despite a mid-run host failure killing several exec
    VMs; the elasticity rules rebuild the cluster and the queue drains."""
    env = Environment()
    sm = make_sm(env, n_hosts=4)
    sm.veem.repository.add("exec-img", size_mb=100,
                           href="http://sm.internal/images/exec")

    b = ManifestBuilder("grid")
    b.component("exec", image_mb=100, cpu=1, memory_mb=1024,
                image_href="http://sm.internal/images/exec",
                initial=0, minimum=0, maximum=12)
    b.kpi("GM", "exec", "grid.queue.size", frequency_s=10, default=0)
    b.kpi("Cluster", "exec", "grid.exec.instances", frequency_s=10,
          default=0)
    b.rule("bootstrap", "(@grid.queue.size > 0) && "
                        "(@grid.exec.instances < 2)", "deployVM(exec)")
    b.rule("up", "(@grid.queue.size / (@grid.exec.instances + 1) > 2) && "
                 "(@grid.exec.instances < 12)", "deployVM(exec)")
    manifest = b.build()

    scheduler = CondorScheduler(env, match_delay_s=0.5, trace=sm.trace)
    from repro.cloud import DeploymentDescriptor
    cluster = VirtualCluster(
        env, sm.veem, scheduler,
        descriptor_template=DeploymentDescriptor(
            name="exec", memory_mb=1024, cpu=1,
            disk_source="http://sm.internal/images/exec",
            service_id="grid-1", component_id="exec"),
        registration_delay_s=5)
    service = sm.deploy(manifest, service_id="grid-1",
                        drivers={"exec": CondorExecDriver(cluster)})
    env.run(until=service.deployment)

    agent = MonitoringAgent(env, service_id="grid-1", component="GM",
                            network=sm.network)
    agent.expose("grid.queue.size", lambda: scheduler.queue_size,
                 frequency_s=10)
    agent.expose("grid.exec.instances", lambda: cluster.instance_count,
                 frequency_s=10)

    rng = RandomStreams(5).stream("jobs")
    jobs = [Job(duration_s=float(rng.uniform(60, 240)),
                input_mb=0, output_mb=0) for _ in range(60)]
    scheduler.submit_many(jobs)

    def chaos(env):
        yield env.timeout(300)
        # Fail the host carrying the most exec VMs, mid-run.
        victim = max(sm.veem.hosts, key=lambda h: len(h.vms))
        sm.veem.inject_host_failure(victim)
        yield env.timeout(600)
        sm.veem.recover_host(victim)

    env.process(chaos(env))
    env.run(until=env.now + 6000)

    assert all(j.state is JobState.COMPLETED for j in jobs), \
        f"{sum(j.state is not JobState.COMPLETED for j in jobs)} unfinished"
    # Some jobs were interrupted by the failure and re-ran elsewhere.
    assert sm.trace.query(kind="node.failed")
    assert sm.trace.query(kind="host.failed")
    # Constraint suite still clean at the end.
    assert service.check_constraints().ok


def test_two_tenants_with_failures_stay_isolated():
    env = Environment()
    sm = make_sm(env, n_hosts=4)

    def tenant_manifest():
        b = ManifestBuilder("web")
        b.component("web", image_mb=100, cpu=1, memory_mb=1024,
                    initial=2, minimum=2, maximum=4)
        b.kpi("LB", "web", "web.load.level", default=0)
        b.rule("up", "(@web.load.level > 100) && (1 < 0)", "deployVM(web)")
        return b.build()

    a = sm.deploy(tenant_manifest(), service_id="tenant-A")
    b_svc = sm.deploy(tenant_manifest(), service_id="tenant-B")
    env.run(until=env.all_of([a.deployment, b_svc.deployment]))

    # Kill one VM of tenant A; only A heals, B is untouched.
    victim = a.lifecycle.components["web"].vms[0]
    b_vms_before = list(b_svc.lifecycle.components["web"].vms)
    sm.veem.inject_vm_failure(victim)
    env.run(until=env.now + 120)
    assert a.instance_count("web") == 2
    assert b_svc.lifecycle.components["web"].vms == b_vms_before
    heal = sm.trace.last(kind="instance.heal")
    assert heal.details["service"] == "tenant-A"
