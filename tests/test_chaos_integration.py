"""Chaos integration: the full stack under failures and churn.

Exercises several §5.2 monitoring requirements and the §1 availability claim
at once: monitoring survives VM migration ("Migration: so that any virtual
resource which moves from one physical host to another is monitored
correctly"), the elastic application rides through host failures, and the
system converges back to a consistent, constraint-clean state.

Topologies come from the named setups in :mod:`repro.scenarios.library`;
each test only injects its fault and asserts.
"""

from repro.cloud import VMState
from repro.grid import Job, JobState
from repro.scenarios import library
from repro.sim import Environment, RandomStreams


def test_monitoring_survives_migration():
    """A migrated VM's agent keeps publishing without interruption."""
    env = Environment()
    stage = library.build("monitored-web", env)
    sm, vm, journal = stage.sm, stage.vm, stage.journal

    env.run(until=env.now + 35)
    before = len(journal)
    assert before == 3

    target = next(h for h in sm.veem.hosts if h is not vm.host)

    def migrate(env):
        yield sm.veem.migrate(vm, target)

    env.process(migrate(env))
    env.run(until=env.now + 65)
    assert vm.host is target
    assert vm.state is VMState.RUNNING
    # No gap larger than ~2 publication periods across the migration window.
    gaps = journal.gaps_exceeding("svc-1", "svc.app.heartbeat", max_gap_s=20)
    assert gaps == []
    assert len(journal) >= before + 5


def test_elastic_grid_rides_through_host_failure():
    """Jobs complete despite a mid-run host failure killing several exec
    VMs; the elasticity rules rebuild the cluster and the queue drains."""
    env = Environment()
    stage = library.build("elastic-grid", env)
    sm, scheduler, service = stage.sm, stage.scheduler, stage.service

    rng = RandomStreams(5).stream("jobs")
    jobs = [Job(duration_s=float(rng.uniform(60, 240)),
                input_mb=0, output_mb=0) for _ in range(60)]
    scheduler.submit_many(jobs)

    def chaos(env):
        yield env.timeout(300)
        # Fail the host carrying the most exec VMs, mid-run.
        victim = max(sm.veem.hosts, key=lambda h: len(h.vms))
        sm.veem.inject_host_failure(victim)
        yield env.timeout(600)
        sm.veem.recover_host(victim)

    env.process(chaos(env))
    env.run(until=env.now + 6000)

    assert all(j.state is JobState.COMPLETED for j in jobs), \
        f"{sum(j.state is not JobState.COMPLETED for j in jobs)} unfinished"
    # Some jobs were interrupted by the failure and re-ran elsewhere.
    assert sm.trace.query(kind="node.failed")
    assert sm.trace.query(kind="host.failed")
    # Constraint suite still clean at the end.
    assert service.check_constraints().ok


def test_two_tenants_with_failures_stay_isolated():
    env = Environment()
    stage = library.build("two-web-tenants", env)
    sm, a, b_svc = stage.sm, stage.a, stage.b

    # Kill one VM of tenant A; only A heals, B is untouched.
    victim = a.lifecycle.components["web"].vms[0]
    b_vms_before = list(b_svc.lifecycle.components["web"].vms)
    sm.veem.inject_vm_failure(victim)
    env.run(until=env.now + 120)
    assert a.instance_count("web") == 2
    assert b_svc.lifecycle.components["web"].vms == b_vms_before
    heal = sm.trace.last(kind="instance.heal")
    assert heal.details["service"] == "tenant-A"
