"""Unit tests for resources, containers and stores."""

import pytest

from repro.sim import Container, Environment, FilterStore, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    acquired = []

    def user(env, tag):
        with res.request() as req:
            yield req
            acquired.append((tag, env.now))
            yield env.timeout(10)

    for tag in "abc":
        env.process(user(env, tag))
    env.run()
    # a and b acquire at t=0; c waits until one of them releases at t=10.
    assert acquired == [("a", 0.0), ("b", 0.0), ("c", 10.0)]


def test_resource_count_tracks_holders():
    env = Environment()
    res = Resource(env, capacity=3)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    env.process(holder(env))
    env.process(holder(env))
    env.run(until=1)
    assert res.count == 2
    env.run()
    assert res.count == 0


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, tag):
        with res.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    for tag in range(5):
        env.process(user(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_queued_request_can_be_withdrawn():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        req = res.request()
        # Give up before being granted.
        yield env.timeout(2)
        req.cancel()
        got.append("gave up")

    def patient(env):
        yield env.timeout(1)
        with res.request() as req:
            yield req
            got.append(("patient", env.now))

    env.process(holder(env))
    env.process(impatient(env))
    env.process(patient(env))
    env.run()
    assert ("patient", 10.0) in got
    assert "gave up" in got


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------

def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    got = []

    def consumer(env):
        yield tank.get(30)
        got.append(env.now)

    def producer(env):
        yield env.timeout(5)
        yield tank.put(50)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [5.0]
    assert tank.level == 20


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    done = []

    def producer(env):
        yield tank.put(5)
        done.append(env.now)

    def consumer(env):
        yield env.timeout(3)
        yield tank.get(7)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert done == [3.0]
    assert tank.level == 8


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.get(0)
    with pytest.raises(ValueError):
        tank.put(-1)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_delivery():
    env = Environment()
    store = Store(env)
    received = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    def producer(env):
        for item in ("x", "y", "z"):
            yield env.timeout(1)
            store.put(item)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert received == ["x", "y", "z"]


def test_store_get_before_put_blocks():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        yield store.get()
        times.append(env.now)

    def producer(env):
        yield env.timeout(42)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [42.0]


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_filter_store_selects_matching_item():
    env = Environment()
    store = FilterStore(env)
    received = []

    def consumer(env):
        item = yield store.get(lambda x: x % 2 == 0)
        received.append(item)

    env.process(consumer(env))
    store.put(1)
    store.put(3)
    store.put(4)
    env.run()
    assert received == [4]
    assert store.items == [1, 3]


def test_filter_store_waits_for_match():
    env = Environment()
    store = FilterStore(env)
    received = []

    def consumer(env):
        item = yield store.get(lambda x: x == "wanted")
        received.append((env.now, item))

    def producer(env):
        store.put("other")
        yield env.timeout(9)
        store.put("wanted")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert received == [(9.0, "wanted")]
