"""Unit tests for the image repository and virtual networks."""

import pytest

from repro.cloud import (
    DiskImage,
    ImageError,
    ImageRepository,
    NetworkError,
    NetworkFabric,
    VirtualNetwork,
)


# ---------------------------------------------------------------------------
# Images
# ---------------------------------------------------------------------------

def test_disk_image_validation():
    with pytest.raises(ValueError):
        DiskImage("img", "href", size_mb=0)
    with pytest.raises(ValueError):
        DiskImage("", "href", size_mb=10)


def test_repository_register_and_get():
    repo = ImageRepository()
    img = repo.add("condor-exec", size_mb=2048)
    assert repo.get("condor-exec") is img
    assert "condor-exec" in repo
    assert len(repo) == 1
    assert img.href.endswith("/condor-exec")


def test_repository_duplicate_rejected():
    repo = ImageRepository()
    repo.add("a", size_mb=10)
    with pytest.raises(ImageError):
        repo.add("a", size_mb=10)


def test_repository_unknown_image():
    repo = ImageRepository()
    with pytest.raises(ImageError):
        repo.get("nope")
    with pytest.raises(ImageError):
        repo.resolve_href("http://nowhere")


def test_repository_resolve_href():
    repo = ImageRepository()
    img = repo.add("a", size_mb=10, href="http://sm/images/a.img")
    assert repo.resolve_href("http://sm/images/a.img") is img


def test_transfer_time_scales_with_size_and_bandwidth():
    repo = ImageRepository(bandwidth_mb_per_s=50)
    repo.add("big", size_mb=1000)
    assert repo.transfer_time("big") == pytest.approx(20.0)


def test_record_transfer_accounts_bytes():
    repo = ImageRepository(bandwidth_mb_per_s=100)
    repo.add("img", size_mb=500)
    d1 = repo.record_transfer("img")
    d2 = repo.record_transfer("img")
    assert d1 == d2 == pytest.approx(5.0)
    assert repo.bytes_served_mb == 1000


def test_customisation_disks_unique_ids():
    repo = ImageRepository()
    d1 = repo.make_customisation_disk({"ip": "10.0.0.2"})
    d2 = repo.make_customisation_disk({"ip": "10.0.0.3"})
    assert d1.disk_id != d2.disk_id
    assert d1.properties == {"ip": "10.0.0.2"}


def test_bad_bandwidth_rejected():
    with pytest.raises(ValueError):
        ImageRepository(bandwidth_mb_per_s=0)


# ---------------------------------------------------------------------------
# Networks
# ---------------------------------------------------------------------------

def test_network_allocates_sequential_addresses():
    net = VirtualNetwork("internal", "192.168.1.0/29")
    # /29 → 6 host addrs, .1 is the gateway → 5 allocatable.
    a = net.allocate("vm1")
    b = net.allocate("vm2")
    assert a == "192.168.1.2"
    assert b == "192.168.1.3"
    assert net.gateway == "192.168.1.1"
    assert net.allocated == 2


def test_network_release_and_reuse_lowest_first():
    net = VirtualNetwork("n", "10.0.0.0/28")
    a = net.allocate("vm1")
    b = net.allocate("vm2")
    net.release(a)
    c = net.allocate("vm3")
    assert c == a  # lowest free address is recycled
    assert net.owner_of(b) == "vm2"
    assert net.owner_of(c) == "vm3"


def test_network_pool_exhaustion():
    net = VirtualNetwork("tiny", "10.0.0.0/30")  # 2 hosts, 1 after gateway
    net.allocate("vm1")
    with pytest.raises(NetworkError):
        net.allocate("vm2")


def test_network_release_unknown_raises():
    net = VirtualNetwork("n", "10.0.0.0/29")
    with pytest.raises(NetworkError):
        net.release("10.0.0.2")


def test_network_addresses_of_owner():
    net = VirtualNetwork("n", "10.0.0.0/28")
    a = net.allocate("vm1")
    b = net.allocate("vm1")
    net.allocate("vm2")
    assert sorted(net.addresses_of("vm1")) == sorted([a, b])


def test_network_bad_cidr():
    with pytest.raises(NetworkError):
        VirtualNetwork("n", "not-a-cidr")
    with pytest.raises(NetworkError):
        VirtualNetwork("", "10.0.0.0/24")


def test_fabric_create_get_ensure():
    fabric = NetworkFabric()
    net = fabric.create("internal", "10.1.0.0/24")
    assert fabric.get("internal") is net
    assert fabric.ensure("internal") is net
    assert fabric.ensure("other") is not net
    assert "internal" in fabric
    with pytest.raises(NetworkError):
        fabric.create("internal")
    with pytest.raises(NetworkError):
        fabric.get("missing")


def test_fabric_release_all_owner():
    fabric = NetworkFabric()
    n1 = fabric.create("a", "10.1.0.0/28")
    n2 = fabric.create("b", "10.2.0.0/28")
    n1.allocate("vm1")
    n2.allocate("vm1")
    n2.allocate("vm2")
    released = fabric.release_all("vm1")
    assert released == 2
    assert n1.allocated == 0
    assert n2.allocated == 1


def test_public_flag():
    net = VirtualNetwork("dmz", public=True)
    assert net.public
    assert not VirtualNetwork("internal").public
