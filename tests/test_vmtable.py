"""Tests for the struct-of-arrays VM fleet table (repro.cloud.vmtable)."""

import pytest

from repro.cloud import (
    DiskImage,
    Host,
    HypervisorTimings,
    ImageRepository,
    VEEM,
)
from repro.cloud.vm import DeploymentDescriptor, VirtualMachine, VMState
from repro.cloud.vmtable import ACTIVE_CODES, STATE_CODE, VMTable
from repro.sim import Environment


def make_vm(env, vm_id, *, cpu=1.0, memory_mb=1024.0, service_id=None,
            component_id=None):
    return VirtualMachine(env, vm_id, DeploymentDescriptor(
        name=vm_id, memory_mb=memory_mb, cpu=cpu, disk_source="img://d",
        service_id=service_id, component_id=component_id))


def run_to_stopped(vm):
    for state in (VMState.STAGING, VMState.BOOTING, VMState.RUNNING,
                  VMState.SHUTTING_DOWN, VMState.STOPPED):
        vm.transition(state)


# ---------------------------------------------------------------------------
# Encoding and registration
# ---------------------------------------------------------------------------

def test_state_codes_cover_every_state():
    assert set(STATE_CODE) == set(VMState)
    assert STATE_CODE[VMState.STOPPED] not in ACTIVE_CODES
    assert STATE_CODE[VMState.FAILED] not in ACTIVE_CODES
    assert STATE_CODE[VMState.RUNNING] in ACTIVE_CODES


def test_add_wires_vm_into_table():
    env = Environment()
    table = VMTable()
    vm = make_vm(env, "vm-0", cpu=2.0, memory_mb=4096.0,
                 service_id="svc", component_id="app")
    index = table.add(vm)
    assert vm._table is table and vm._table_index == index
    assert len(table) == 1
    assert table.cpu[index] == 2.0
    assert table.memory[index] == 4096.0
    assert table.active_count == 1


def test_transitions_update_column_and_active_count():
    env = Environment()
    table = VMTable()
    vms = [make_vm(env, f"vm-{i}") for i in range(3)]
    for vm in vms:
        table.add(vm)
    assert table.active_count == 3
    run_to_stopped(vms[0])
    assert table.active_count == 2
    vms[1].transition(VMState.FAILED)
    assert table.active_count == 1
    assert table.state[0] == STATE_CODE[VMState.STOPPED]
    assert table.state[1] == STATE_CODE[VMState.FAILED]


def test_scans_filter_by_service_and_component():
    env = Environment()
    table = VMTable()
    a = make_vm(env, "a", service_id="svc-1", component_id="app")
    b = make_vm(env, "b", service_id="svc-1", component_id="db")
    c = make_vm(env, "c", service_id="svc-2", component_id="app")
    for vm in (a, b, c):
        table.add(vm)
    assert table.active_vms(service_id="svc-1") == [a, b]
    assert table.active_vms(component_id="app") == [a, c]
    assert table.active_vms(service_id="svc-1", component_id="app") == [a]
    # Names never interned match nothing (no KeyError, no false positives).
    assert table.active_vms(service_id="missing") == []
    run_to_stopped(a)
    assert table.active_vms(component_id="app") == [c]


def test_running_only_scan():
    env = Environment()
    table = VMTable()
    vm = make_vm(env, "vm-0")
    table.add(vm)
    assert table.active_vms(running_only=True) == []
    vm.transition(VMState.STAGING)
    vm.transition(VMState.BOOTING)
    vm.transition(VMState.RUNNING)
    assert table.active_vms(running_only=True) == [vm]


def test_active_capacity_and_state_counts():
    env = Environment()
    table = VMTable()
    small = make_vm(env, "s", cpu=1.0, memory_mb=1024.0)
    big = make_vm(env, "b", cpu=2.0, memory_mb=2048.0)
    table.add(small)
    table.add(big)
    assert table.active_capacity() == (3.0, 3072.0)
    run_to_stopped(big)
    assert table.active_capacity() == (1.0, 1024.0)
    counts = table.state_counts()
    assert counts[VMState.PENDING] == 1
    assert counts[VMState.STOPPED] == 1


# ---------------------------------------------------------------------------
# VEEM integration: the table is the fleet's bookkeeping
# ---------------------------------------------------------------------------

@pytest.fixture()
def veem_env():
    env = Environment()
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo)
    veem.add_host(Host(env, "h0", cpu_cores=4, memory_mb=8192,
                       timings=HypervisorTimings(define_s=1, boot_s=10,
                                                 shutdown_s=2)))
    return env, veem


def test_veem_table_tracks_submitted_fleet(veem_env):
    env, veem = veem_env
    image = veem.repository.register(
        DiskImage("app-image", "img://app", size_mb=64))
    desc = DeploymentDescriptor(name="app", memory_mb=1024, cpu=1,
                                disk_source=image.href,
                                service_id="svc", component_id="app")
    vm = veem.submit(desc)
    assert veem.table.vms[-1] is vm
    assert veem.active_vm_count == 1
    env.run(until=60)
    assert vm.state is VMState.RUNNING
    assert veem.active_vms(service_id="svc") == [vm]
    assert veem.running_vms() == [vm]
    veem.shutdown(vm)
    env.run(until=120)
    assert vm.state is VMState.STOPPED
    assert veem.active_vm_count == 0
    assert veem.table.active_vms() == []
