"""Multi-tenancy: several services on one cloud operate independently.

§4.2.1: "At the implementation level, KPIs published within a network are
tagged with a particular service identifier, and rules ... will also be
associated with this same identifier. Multiple instances of an application
service would hence operate independently."
"""

import pytest

from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
from repro.core.manifest import ManifestBuilder
from repro.core.service_manager import ServiceManager
from repro.monitoring import MonitoringAgent
from repro.sim import Environment

TIMINGS = HypervisorTimings(define_s=1, boot_s=5, shutdown_s=1)


def make_sm(env, n_hosts=4):
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=16, memory_mb=65536,
                           timings=TIMINGS))
    return ServiceManager(env, veem)


def shop_manifest():
    """The same service definition, deployed twice as separate instances."""
    b = ManifestBuilder("shop")
    b.component("web", image_mb=100, cpu=1, memory_mb=1024,
                initial=1, minimum=1, maximum=4)
    b.kpi("LB", "web", "com.shop.lb.sessions", frequency_s=10, default=0)
    b.kpi("Web", "web", "com.shop.web.instances", frequency_s=10, default=1)
    b.rule("up", "(@com.shop.lb.sessions / 100 > @com.shop.web.instances) "
                 "&& (@com.shop.web.instances < 4)", "deployVM(web)")
    b.rule("down", "(@com.shop.lb.sessions == 0) && "
                   "(@com.shop.web.instances > 1)", "undeployVM(web)",
           cooldown_s=30)
    return b.build()


def attach_agent(env, sm, service, sessions):
    agent = MonitoringAgent(env, service_id=service.service_id,
                            component="LB", network=sm.network)
    agent.expose("com.shop.lb.sessions", lambda: sessions["n"],
                 frequency_s=10)
    agent.expose("com.shop.web.instances",
                 lambda: service.instance_count("web"), frequency_s=10)
    return agent


def test_same_manifest_twice_scales_independently():
    env = Environment()
    sm = make_sm(env)
    tenant_a = sm.deploy(shop_manifest(), service_id="shop-A")
    tenant_b = sm.deploy(shop_manifest(), service_id="shop-B")
    env.run(until=env.all_of([tenant_a.deployment, tenant_b.deployment]))

    load_a, load_b = {"n": 0}, {"n": 0}
    attach_agent(env, sm, tenant_a, load_a)
    attach_agent(env, sm, tenant_b, load_b)

    # Only tenant A gets load: identical qualified names, different
    # service ids — B's rules must not react to A's measurements.
    load_a["n"] = 350
    env.run(until=env.now + 120)
    assert tenant_a.instance_count("web") == 4
    assert tenant_b.instance_count("web") == 1

    # Then only B; A drains back to 1.
    load_a["n"] = 0
    load_b["n"] = 220
    env.run(until=env.now + 200)
    assert tenant_a.instance_count("web") == 1
    assert tenant_b.instance_count("web") >= 2


def test_rule_firings_attributed_to_the_right_service():
    env = Environment()
    sm = make_sm(env)
    tenant_a = sm.deploy(shop_manifest(), service_id="shop-A")
    tenant_b = sm.deploy(shop_manifest(), service_id="shop-B")
    env.run(until=env.all_of([tenant_a.deployment, tenant_b.deployment]))
    load_a = {"n": 350}
    attach_agent(env, sm, tenant_a, load_a)
    attach_agent(env, sm, tenant_b, {"n": 0})
    env.run(until=env.now + 120)
    actions = sm.trace.query(kind="elasticity.action")
    services = {r.details["service"] for r in actions}
    assert services == {"shop-A"}
    assert tenant_b.interpreter.firings == []


def test_accounting_is_per_service():
    env = Environment()
    sm = make_sm(env)
    tenant_a = sm.deploy(shop_manifest(), service_id="shop-A")
    tenant_b = sm.deploy(shop_manifest(), service_id="shop-B")
    env.run(until=env.all_of([tenant_a.deployment, tenant_b.deployment]))
    t0 = env.now
    tenant_a.lifecycle.scale_up("web")
    env.run(until=t0 + 100)
    usage_a = tenant_a.lifecycle.accountant.usage("web", t0, t0 + 100)
    usage_b = tenant_b.lifecycle.accountant.usage("web", t0, t0 + 100)
    assert usage_a.peak_instances == 2
    assert usage_b.peak_instances == 1


def test_constraints_scoped_per_service():
    """Service A's instances never count against B's Association invariant
    or bounds."""
    env = Environment()
    sm = make_sm(env)
    tenant_a = sm.deploy(shop_manifest(), service_id="shop-A")
    tenant_b = sm.deploy(shop_manifest(), service_id="shop-B")
    env.run(until=env.all_of([tenant_a.deployment, tenant_b.deployment]))
    for _ in range(3):
        tenant_a.lifecycle.scale_up("web")
    env.run(until=env.now + 60)
    assert tenant_a.check_constraints().ok
    assert tenant_b.check_constraints().ok


def test_shared_capacity_contention_fails_loudly():
    """Tenants share the physical pool: when it is exhausted, scale-ups are
    refused (logged), not silently dropped.

    Reference behaviour: the seed surfaced contention as a loud
    ``PlacementError``; that contract is preserved (``CapacityError`` is a
    subclass), so code written against the old failure mode keeps working.
    The queue-and-drain alternative lives in :mod:`repro.control`.
    """
    env = Environment()
    sm = make_sm(env, n_hosts=1)
    # Shrink the host so two tenants plus a little headroom fill it.
    sm.veem.hosts[0].cpu_cores = 3.0
    sm.veem.hosts[0].memory_mb = 3 * 1024.0
    tenant_a = sm.deploy(shop_manifest(), service_id="shop-A")
    tenant_b = sm.deploy(shop_manifest(), service_id="shop-B")
    env.run(until=env.all_of([tenant_a.deployment, tenant_b.deployment]))
    tenant_a.lifecycle.scale_up("web")   # third slot: host now full
    env.run(until=env.now + 30)
    from repro.cloud import PlacementError
    with pytest.raises(PlacementError):
        tenant_b.lifecycle.scale_up("web")


def test_shared_capacity_contention_is_typed_capacity_error():
    """Capacity exhaustion (as opposed to constraint infeasibility) is the
    typed, transient ``CapacityError`` on every submit/scale path — the
    signal the control plane queues and retries on."""
    from repro.cloud import CapacityError, PlacementError

    assert issubclass(CapacityError, PlacementError)
    env = Environment()
    sm = make_sm(env, n_hosts=1)
    sm.veem.hosts[0].cpu_cores = 3.0
    sm.veem.hosts[0].memory_mb = 3 * 1024.0
    tenant_a = sm.deploy(shop_manifest(), service_id="shop-A")
    tenant_b = sm.deploy(shop_manifest(), service_id="shop-B")
    env.run(until=env.all_of([tenant_a.deployment, tenant_b.deployment]))
    tenant_a.lifecycle.scale_up("web")
    env.run(until=env.now + 30)
    # Scale path surfaces the typed error ...
    with pytest.raises(CapacityError, match="capacity"):
        tenant_b.lifecycle.scale_up("web")
    # ... and so does a raw VEEM submit of the same descriptor shape.
    descriptor = tenant_b.parsed.descriptor_for(
        tenant_b.parsed.manifest.system("web"), instance=9)
    with pytest.raises(CapacityError):
        sm.veem.submit(descriptor)
