"""Property-based tests: admission never oversubscribes the pool.

Hypothesis drives randomized churn — submissions of variously-sized
elastic manifests across tenants, interleaved with time advancement and
releases — and checks after every operation that the control plane's
books balance:

* the sum of admitted demand envelopes (worst case) packs into each
  site's pool ceiling, recomputed *from the requests themselves*, not
  trusted from the admission controller's own ledger;
* the admission ledger contains exactly the manifests of live admitted
  requests;
* per-tenant usage equals the sum of that tenant's live envelopes and
  never breaches its quota.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
from repro.cloud.capacity import HostType, _pack, demand_envelope
from repro.control import ControlPlane, RequestState, TenantQuota
from repro.core.manifest import ManifestBuilder
from repro.sim import Environment

TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)
HOST = HostType(cpu_cores=4.0, memory_mb=8192.0)
TENANT_NAMES = ("alpha", "beta", "gamma")

#: states in which a request holds a capacity/quota reservation
LIVE = (RequestState.DEPLOYING, RequestState.ACTIVE)


def make_control(pool_hosts, quotas):
    env = Environment()
    control = ControlPlane(env)
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo)
    for i in range(pool_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=HOST.cpu_cores,
                           memory_mb=HOST.memory_mb, timings=TIMINGS))
    control.add_site("site", veem)
    for name, quota in zip(TENANT_NAMES, quotas):
        control.register_tenant(name, quota=quota)
    return env, control


def manifest_for(seq, cpu, memory_mb, initial, extra):
    return (ManifestBuilder(f"svc-{seq}")
            .component("app", image_mb=128, cpu=cpu, memory_mb=memory_mb,
                       initial=initial, minimum=initial,
                       maximum=initial + extra)
            .build())


def check_books_balance(control):
    """The oversubscription invariant, recomputed from first principles."""
    live = [r for r in control.requests.values() if r.state in LIVE]
    for site in control.sites:
        mine = [r for r in live if r.site == site.name]
        # worst case of every live admitted request packs into the pool
        ceiling = [d for r in mine for d in r.envelope.ceiling]
        hosts_needed = _pack(ceiling, site.admission.host) if ceiling else 0
        assert hosts_needed <= site.admission.pool_hosts, (
            f"oversubscribed: {hosts_needed} hosts needed on "
            f"{site.admission.pool_hosts}-host pool")
        # the admission ledger is exactly the live manifests (as multiset)
        assert sorted(m.service_name for m in site.admission.admitted) == \
            sorted(r.manifest.service_name for r in mine)
    for name, tenant in control.tenants.items():
        mine = [r for r in live if r.tenant == name]
        assert tenant.usage.services == len(mine)
        assert tenant.usage.instances == \
            sum(len(r.envelope.ceiling) for r in mine)
        if tenant.quota.max_services is not None:
            assert tenant.usage.services <= tenant.quota.max_services
        if tenant.quota.max_instances is not None:
            assert tenant.usage.instances <= tenant.quota.max_instances


operation = st.one_of(
    st.tuples(st.just("submit"),
              st.integers(0, len(TENANT_NAMES) - 1),   # tenant
              st.sampled_from([1.0, 2.0, 4.0]),        # cpu / instance
              st.sampled_from([1024.0, 4096.0, 8192.0]),  # memory / instance
              st.integers(1, 3),                        # initial instances
              st.integers(0, 2)),                       # elastic headroom
    st.tuples(st.just("release"), st.integers(0, 10 ** 6)),
    st.tuples(st.just("run"), st.integers(1, 60)),
)

quota_strategy = st.sampled_from([
    TenantQuota(),
    TenantQuota(max_services=1),
    TenantQuota(max_services=3),
    TenantQuota(max_instances=4),
])


@settings(max_examples=60, deadline=None)
@given(pool_hosts=st.integers(1, 6),
       quotas=st.tuples(quota_strategy, quota_strategy, quota_strategy),
       ops=st.lists(operation, max_size=40))
def test_admission_never_oversubscribes_under_churn(pool_hosts, quotas, ops):
    env, control = make_control(pool_hosts, quotas)
    seq = 0
    for op in ops:
        if op[0] == "submit":
            _, tenant_idx, cpu, memory_mb, initial, extra = op
            seq += 1
            control.submit(TENANT_NAMES[tenant_idx],
                           manifest_for(seq, cpu, memory_mb, initial, extra))
        elif op[0] == "release":
            active = control.active_requests()
            if active:
                control.release(active[op[1] % len(active)])
        else:
            env.run(until=env.now + op[1])
        check_books_balance(control)
    # quiesce: everything in flight settles, books still balance
    env.run(until=env.now + 5_000)
    check_books_balance(control)
    # liveness floor: every request reached a definite state or still queues
    for request in control.requests.values():
        assert request.state in (RequestState.QUEUED, RequestState.DEPLOYING,
                                 RequestState.ACTIVE, RequestState.REJECTED,
                                 RequestState.RELEASED)
        if request.state is RequestState.QUEUED:
            # whatever still queues must at least be feasible in principle
            assert request.envelope.ceiling


@settings(max_examples=30, deadline=None)
@given(pool_hosts=st.integers(1, 4),
       sizes=st.lists(st.tuples(st.sampled_from([1.0, 2.0, 4.0]),
                                st.integers(1, 3)),
                      min_size=1, max_size=8))
def test_admitted_envelopes_always_pack_into_pool(pool_hosts, sizes):
    """Burst-only variant: no releases, just a pile of submissions."""
    env, control = make_control(
        pool_hosts, (TenantQuota(), TenantQuota(), TenantQuota()))
    for i, (cpu, initial) in enumerate(sizes):
        control.submit(TENANT_NAMES[i % 3],
                       manifest_for(i, cpu, 1024.0, initial, 0))
        check_books_balance(control)
    admitted = [r for r in control.requests.values() if r.state in LIVE]
    ceiling = [d for r in admitted for d in r.envelope.ceiling]
    if ceiling:
        assert _pack(ceiling, HOST) <= pool_hosts
    # everything not admitted is queued or terminally rejected, never lost
    assert len(control.requests) == len(sizes)
    envelopes = [demand_envelope(r.manifest) for r in admitted]
    assert all(e.ceiling for e in envelopes)
