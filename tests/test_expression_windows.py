"""Tests for the §4.2.1 time-series (window) extension of the rule language."""

import pytest

from repro.core.manifest import parse_expression
from repro.core.manifest.expressions import (
    EvaluationContext,
    ExpressionError,
    WindowOp,
)
from repro.core.service_manager import RuleInterpreter
from repro.monitoring import Measurement
from repro.sim import Environment


def ctx_from_samples(samples):
    """An EvaluationContext over a fixed {name: [values]} table."""
    def window(name, window_s, op):
        values = samples.get(name, [])
        if not values:
            return None
        if op == "mean":
            return sum(values) / len(values)
        if op == "min":
            return min(values)
        if op == "max":
            return max(values)
        return float(len(values))

    return EvaluationContext(
        latest=lambda n: samples[n][-1] if samples.get(n) else None,
        window=window,
    )


# ---------------------------------------------------------------------------
# Syntax + AST
# ---------------------------------------------------------------------------

def test_parse_window_operations():
    for op in ("mean", "min", "max", "count"):
        expr = parse_expression(f"{op}(@a.b, 300) > 1", defaults={"a.b": 0})
        assert expr.kpi_references() == {"a.b"}


def test_window_unparse_round_trip():
    expr = parse_expression("mean(@a.b, 300) + max(@a.b, 60.5)",
                            defaults={"a.b": 0})
    reparsed = parse_expression(expr.unparse(), defaults={"a.b": 0})
    ctx = ctx_from_samples({"a.b": [2.0, 4.0]})
    assert expr.evaluate(ctx) == reparsed.evaluate(ctx) == 3.0 + 4.0


def test_window_validation():
    with pytest.raises(ExpressionError):
        WindowOp("median", "a.b", 60)
    with pytest.raises(ExpressionError):
        WindowOp("mean", "a.b", 0)
    with pytest.raises(ValueError):
        WindowOp("mean", "nodots", 60)


@pytest.mark.parametrize("text", [
    "mean(@a.b)",            # missing window
    "mean(@a.b, )",          # missing number
    "mean(3, 60)",           # not a KPI ref
    "frobnicate(@a.b, 60)",  # unknown function
    "mean(@a.b 60)",         # missing comma
])
def test_window_parse_errors(text):
    with pytest.raises(ExpressionError):
        parse_expression(text)


# ---------------------------------------------------------------------------
# Evaluation semantics
# ---------------------------------------------------------------------------

def test_window_aggregations():
    ctx = ctx_from_samples({"a.b": [1.0, 5.0, 3.0]})
    assert parse_expression("mean(@a.b, 60)").evaluate(ctx) == 3.0
    assert parse_expression("min(@a.b, 60)").evaluate(ctx) == 1.0
    assert parse_expression("max(@a.b, 60)").evaluate(ctx) == 5.0
    assert parse_expression("count(@a.b, 60)").evaluate(ctx) == 3.0


def test_empty_window_count_is_zero():
    ctx = ctx_from_samples({})
    assert parse_expression("count(@a.b, 60)").evaluate(ctx) == 0.0


def test_empty_window_mean_uses_default():
    ctx = ctx_from_samples({})
    expr = parse_expression("mean(@a.b, 60)", defaults={"a.b": 7})
    assert expr.evaluate(ctx) == 7.0
    bare = parse_expression("mean(@a.b, 60)")
    with pytest.raises(ExpressionError, match="empty window"):
        bare.evaluate(ctx)


def test_plain_bindings_rejected():
    expr = parse_expression("mean(@a.b, 60) > 1", defaults={"a.b": 0})
    with pytest.raises(ExpressionError, match="EvaluationContext"):
        expr.evaluate(lambda n: 5.0)


def test_context_without_window_support_rejected():
    ctx = EvaluationContext(latest=lambda n: 5.0, window=None)
    expr = parse_expression("mean(@a.b, 60)", defaults={"a.b": 0})
    with pytest.raises(ExpressionError, match="window-capable"):
        expr.evaluate(ctx)


def test_mixing_latest_and_window_refs():
    ctx = ctx_from_samples({"a.b": [10.0, 20.0], "c.d": [2.0]})
    expr = parse_expression("(@c.d > 1) && (mean(@a.b, 300) >= 15)")
    assert expr.holds(ctx)


# ---------------------------------------------------------------------------
# Rule engine integration
# ---------------------------------------------------------------------------

def measurement(qname, value, t):
    return Measurement(qname, "svc-1", "p", t, (value,))


def test_rule_engine_window_smoothing():
    """A mean-over-window rule ignores a transient spike that a latest-value
    rule would react to — the paper's motivation: 'limit the impact of
    strong fluctuations'."""
    from repro.core.manifest import ElasticityRule

    env = Environment()
    calls = []
    rule = ElasticityRule.from_text(
        "smooth-up", "mean(@load.level, 100) > 50", "deployVM(x)",
        defaults={"load.level": 0})
    interp = RuleInterpreter(
        env, "svc-1", executor=lambda a, r: calls.append(env.now) or True)
    interp.install(rule)

    def drive(env):
        # One 10-second spike inside a calm window: mean stays low.
        for t, v in [(10, 5), (20, 95), (30, 5), (40, 5)]:
            yield env.timeout(t - env.now)
            interp.notify(measurement("load.level", v, env.now))
            interp.evaluate_rules()
        # Sustained load: mean over the window crosses the threshold.
        for t in (50, 60, 70):
            yield env.timeout(t - env.now)
            interp.notify(measurement("load.level", 95, env.now))
            interp.evaluate_rules()

    env.process(drive(env))
    env.run()
    assert len(calls) == 1
    assert calls[0] >= 60  # only after sustained high readings


def test_rule_engine_count_guard():
    """count() guards against deciding on too few samples."""
    from repro.core.manifest import ElasticityRule

    env = Environment()
    calls = []
    rule = ElasticityRule.from_text(
        "guarded", "(count(@q.size, 100) >= 3) && (mean(@q.size, 100) > 10)",
        "deployVM(x)", defaults={"q.size": 0})
    interp = RuleInterpreter(
        env, "svc-1", executor=lambda a, r: calls.append(env.now) or True)
    interp.install(rule)

    def drive(env):
        for t in (10, 20, 30):
            yield env.timeout(t - env.now)
            interp.notify(measurement("q.size", 50, env.now))
            interp.evaluate_rules()

    env.process(drive(env))
    env.run()
    # Needs three samples before acting.
    assert calls == [30.0]


def test_validator_replays_window_rules():
    """The enforcement validator evaluates window rules over the journal."""
    from repro.core.constraints import ElasticityEnforcementValidator
    from repro.core.manifest import ManifestBuilder
    from repro.monitoring import MeasurementJournal
    from repro.sim import Environment, TraceLog
    from repro.sim.tracing import TraceRecord

    b = ManifestBuilder("svc")
    b.component("exec", image_mb=1, initial=0, minimum=0, maximum=4)
    b.kpi("C", "exec", "q.size", default=0)
    b.rule("win-up", "mean(@q.size, 100) > 10", "deployVM(exec)",
           time_constraint_ms=5000)
    manifest = b.build()

    journal = MeasurementJournal()
    for t in (10.0, 20.0, 30.0):
        journal.notify(Measurement("q.size", "svc", "p", t, (50,)))
    env = Environment()
    trace = TraceLog(env)
    trace.records.append(TraceRecord(
        12.0, "rule-engine", "elasticity.action",
        {"rule": "win-up", "service": "svc", "operation": "deployVM",
         "component_ref": "exec"}))

    validator = ElasticityEnforcementValidator(manifest, "svc", journal,
                                               trace)
    findings = validator.findings()
    assert findings, "window rule must be evaluable in the replay"
    assert findings[0].verdict == "enforced"
