"""Tests for the SLA syntax (§8 future work) and the SLA monitor."""

import pytest

from repro.core.manifest import (
    ManifestBuilder,
    ServiceLevelObjective,
    SLASection,
    manifest_from_xml,
    manifest_to_xml,
    validate_manifest,
    Severity,
)
from repro.core.sla import SLAMonitor
from repro.monitoring import Measurement
from repro.sim import Environment


def make_slo(**kw):
    kw.setdefault("name", "responsive")
    kw.setdefault("expression", "@app.response.time < 2")
    kw.setdefault("defaults", {"app.response.time": 0})
    return ServiceLevelObjective.from_text(**kw)


# ---------------------------------------------------------------------------
# Syntax
# ---------------------------------------------------------------------------

def test_slo_validation():
    with pytest.raises(ValueError):
        make_slo(name="")
    with pytest.raises(ValueError):
        make_slo(evaluation_period_s=0)
    with pytest.raises(ValueError):
        make_slo(target_compliance=0)
    with pytest.raises(ValueError):
        make_slo(target_compliance=1.5)
    with pytest.raises(ValueError):
        make_slo(assessment_window_s=10, evaluation_period_s=30)
    with pytest.raises(ValueError):
        make_slo(penalty_per_breach=-1)


def test_sla_section_lookups():
    slo = make_slo()
    section = SLASection((slo,))
    assert section.objective("responsive") is slo
    assert bool(section)
    assert list(section) == [slo]
    with pytest.raises(KeyError):
        section.objective("ghost")
    with pytest.raises(ValueError):
        SLASection((slo, slo))
    assert not SLASection()


def sla_manifest():
    b = ManifestBuilder("svc")
    b.component("web", image_mb=100, initial=1, minimum=1, maximum=4)
    b.kpi("LB", "web", "app.response.time", type_name="double", default=0)
    b.kpi("Web", "web", "app.web.instances", default=1)
    b.rule("up", "(@app.response.time > 1.5) && (@app.web.instances < 4)",
           "deployVM(web)")
    b.slo("responsive", "@app.response.time < 2",
          evaluation_period_s=30, target_compliance=0.9,
          assessment_window_s=300, penalty_per_breach=50)
    return b.build()


def test_sla_xml_round_trip():
    m1 = sla_manifest()
    m2 = manifest_from_xml(manifest_to_xml(m1))
    assert m2.sla == m1.sla
    slo = m2.sla.objective("responsive")
    assert slo.penalty_per_breach == 50
    assert slo.target_compliance == 0.9
    # Defaults bound into the round-tripped expression.
    assert slo.expression.holds(lambda n: None)


def test_sla_validation_catches_undeclared_kpi():
    b = ManifestBuilder("svc")
    b.component("web", image_mb=100)
    b.slo("bad", "@un.declared < 1")
    codes = {i.code for i in validate_manifest(b.build(validate=False))
             if i.severity is Severity.ERROR}
    assert "slo-undeclared-kpi" in codes


def test_slo_counts_as_kpi_consumer():
    """A KPI consumed only by an SLO must not warn as unused."""
    b = ManifestBuilder("svc")
    b.component("web", image_mb=100)
    b.kpi("LB", "web", "app.response.time", default=0)
    b.slo("responsive", "@app.response.time < 2")
    warnings = {i.code for i in validate_manifest(b.build(validate=False))
                if i.severity is Severity.WARNING}
    assert "kpi-unused" not in warnings


# ---------------------------------------------------------------------------
# Monitor
# ---------------------------------------------------------------------------

def measurement(value, t, qname="app.response.time"):
    return Measurement(qname, "svc-1", "p", t, (value,))


def make_monitor(env, **slo_kw):
    slo_kw.setdefault("evaluation_period_s", 10)
    slo_kw.setdefault("assessment_window_s", 100)
    slo_kw.setdefault("target_compliance", 0.9)
    slo_kw.setdefault("penalty_per_breach", 25.0)
    slo = make_slo(**slo_kw)
    monitor = SLAMonitor(env, "svc-1", SLASection((slo,)),
                         kpi_defaults={"app.response.time": 0})
    return monitor, slo


def drive(env, monitor, profile):
    """profile: list of (time, response_time) updates."""
    def proc(env):
        for t, value in profile:
            yield env.timeout(t - env.now)
            monitor.notify(measurement(value, env.now))

    env.process(proc(env))


def test_monitor_all_compliant():
    env = Environment()
    monitor, _ = make_monitor(env)
    monitor.start()
    drive(env, monitor, [(5, 0.5), (50, 0.8)])
    env.run(until=301)
    assert monitor.compliance("responsive") == 1.0
    assert monitor.breaches() == []
    assert monitor.penalties_accrued == 0
    ok = monitor.trace.query(kind="slo.window.ok")
    assert len(ok) == 3  # three 100 s windows assessed


def test_monitor_detects_breach_and_penalty():
    env = Environment()
    monitor, _ = make_monitor(env)
    monitor.start()
    # Response time bad for the whole first window.
    drive(env, monitor, [(1, 5.0), (105, 0.5)])
    env.run(until=201)
    breaches = monitor.breaches("responsive")
    assert len(breaches) == 1
    assert breaches[0].compliance < 0.9
    assert monitor.penalties_accrued == 25.0
    # Second window recovered.
    assert monitor.trace.last(kind="slo.window.ok") is not None


def test_monitor_tolerates_violations_within_target():
    env = Environment()
    monitor, _ = make_monitor(env, target_compliance=0.5)
    monitor.start()
    # Bad for ~30 s of a 100 s window → compliance ≈ 0.7 ≥ 0.5.
    drive(env, monitor, [(1, 5.0), (35, 0.5)])
    env.run(until=101)
    assert monitor.breaches() == []


def test_monitor_unevaluable_counts_as_held():
    """Before any data arrives (and without defaults) the obligation has not
    begun — samples count as held."""
    env = Environment()
    slo = ServiceLevelObjective.from_text(
        "nodata", "@never.reported < 1",
        evaluation_period_s=10, assessment_window_s=100)
    monitor = SLAMonitor(env, "svc-1", SLASection((slo,)))
    monitor.start()
    env.run(until=101)
    assert monitor.compliance("nodata") == 1.0
    assert monitor.breaches() == []


def test_protection_hook_invoked_on_breach():
    env = Environment()
    monitor, slo = make_monitor(env)
    protected = []
    monitor.add_protection_hook(
        lambda s, c: protected.append((s.name, c)) or True)
    monitor.start()
    drive(env, monitor, [(1, 9.0)])
    env.run(until=101)
    assert protected and protected[0][0] == "responsive"
    assert monitor.trace.last(kind="slo.protected") is not None


def test_protection_hook_errors_logged_not_raised():
    env = Environment()
    monitor, _ = make_monitor(env)

    def bad_hook(slo, compliance):
        raise RuntimeError("hook exploded")

    monitor.add_protection_hook(bad_hook)
    monitor.start()
    drive(env, monitor, [(1, 9.0)])
    env.run(until=101)
    assert monitor.trace.last(kind="slo.protection.failed") is not None


def test_monitor_stop_halts_sampling():
    env = Environment()
    monitor, _ = make_monitor(env)
    monitor.start()
    env.run(until=51)
    before = len(monitor._states["responsive"].samples)
    monitor.stop()
    env.run(until=500)
    assert len(monitor._states["responsive"].samples) == before


def test_window_slo_over_journal():
    """SLOs may use the time-series window operations."""
    env = Environment()
    slo = ServiceLevelObjective.from_text(
        "queue-healthy", "mean(@q.size, 60) < 10",
        evaluation_period_s=10, assessment_window_s=100,
        defaults={"q.size": 0})
    monitor = SLAMonitor(env, "svc-1", SLASection((slo,)),
                         kpi_defaults={"q.size": 0})
    monitor.start()

    def proc(env):
        for t, v in [(5, 50), (15, 60), (25, 55), (65, 1), (75, 1)]:
            yield env.timeout(t - env.now)
            monitor.notify(measurement(v, env.now, qname="q.size"))

    env.process(proc(env))
    env.run(until=101)
    compliance = monitor.compliance("queue-healthy")
    assert compliance is not None and 0 < compliance < 1


def test_statement_shape():
    env = Environment()
    monitor, _ = make_monitor(env)
    monitor.start()
    drive(env, monitor, [(1, 9.0)])
    env.run(until=101)
    statement = monitor.statement()
    entry = statement["responsive"]
    assert entry["breaches"] == 1
    assert entry["penalties"] == 25.0
    assert entry["samples"] == 10
    assert 0 <= entry["compliance"] <= 1


def test_end_to_end_sla_protection_scales_service():
    """Full loop: SLO breach → protection hook → scale-up via lifecycle."""
    from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
    from repro.core.service_manager import ScaleError, ServiceManager
    from repro.monitoring import MonitoringAgent

    env = Environment()
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo)
    veem.add_host(Host(env, "h0", cpu_cores=8, memory_mb=16384,
                       timings=HypervisorTimings(define_s=1, boot_s=5,
                                                 shutdown_s=1)))
    sm = ServiceManager(env, veem)
    manifest = sla_manifest()
    # Rules disabled: only the SLA protection path may add capacity.
    service = sm.deploy(manifest, service_id="svc-1", start_rules=False)
    env.run(until=service.deployment)

    monitor = SLAMonitor(env, "svc-1", manifest.sla,
                         kpi_defaults=manifest.kpi_defaults(),
                         trace=sm.trace)
    monitor.subscribe_to(sm.network)

    def protect(slo, compliance):
        try:
            service.lifecycle.scale_up("web")
            return True
        except ScaleError:
            return False

    monitor.add_protection_hook(protect)
    monitor.start()

    # An overloaded single instance reports terrible response times; with
    # the rule engine off, only the SLA protection path can add capacity.
    agent = MonitoringAgent(env, service_id="svc-1", component="LB",
                            network=sm.network)
    agent.expose("app.response.time", lambda: 8.0, frequency_s=10,
                 type=__import__("repro.monitoring", fromlist=["AttributeType"]).AttributeType.DOUBLE)
    env.run(until=env.now + 320)
    assert monitor.penalties_accrued > 0
    assert service.instance_count("web") > 1
    assert sm.trace.last(kind="slo.protected") is not None
