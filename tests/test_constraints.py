"""Tests for the OCL-style constraint framework and generated instruments."""

import pytest

from repro.cloud import (
    DeploymentDescriptor,
    Host,
    HypervisorTimings,
    ImageRepository,
    VEEM,
)
from repro.core.constraints import (
    AssociationInvariant,
    ConstraintSuite,
    ElasticityEnforcementValidator,
    InstanceBoundsInvariant,
    Violation,
    deployment_suite,
    generate_instruments,
)
from repro.core.manifest import ManifestBuilder
from repro.core.service_manager import ServiceManager
from repro.monitoring import Measurement, MeasurementJournal, MonitoringAgent, MulticastChannel
from repro.sim import Environment, TraceLog

TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)


def make_veem(env, n_hosts=4):
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=8, memory_mb=16384,
                           timings=TIMINGS))
    return veem


def sap_manifest():
    """The §3 motivating example: CI+DBMS co-located, elastic DIs."""
    b = ManifestBuilder("sap-erp")
    b.network("internal")
    b.network("dmz", public=True)
    b.component("DBMS", image_mb=2000, cpu=2, memory_mb=6144,
                networks=["internal"], startup_order=0)
    b.component("CI", image_mb=1000, cpu=2, memory_mb=4096,
                networks=["internal"], startup_order=1, replicable=False)
    b.component("WebDispatcher", image_mb=500, cpu=1, memory_mb=1024,
                networks=["internal", "dmz"], startup_order=2)
    b.component("DI", image_mb=1000, cpu=1, memory_mb=2048,
                networks=["internal"], startup_order=3,
                initial=1, minimum=1, maximum=6)
    b.colocate("CI", "DBMS")
    b.application("sap-app")
    b.kpi("WebDispatcher", "WebDispatcher",
          "com.sap.webdispatcher.kpis.sessions", frequency_s=30, default=0)
    b.kpi("DIs", "DI", "com.sap.di.instances", frequency_s=30, default=1)
    b.rule("scale-di-up",
           "(@com.sap.webdispatcher.kpis.sessions / 50 > "
           "@com.sap.di.instances) && (@com.sap.di.instances < 6)",
           "deployVM(DI)")
    b.rule("scale-di-down",
           "(@com.sap.webdispatcher.kpis.sessions == 0) && "
           "(@com.sap.di.instances > 1)",
           "undeployVM(DI)")
    return b.build()


def deployed_sap(env):
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(sap_manifest())
    env.run(until=service.deployment)
    return sm, service


# ---------------------------------------------------------------------------
# Framework basics
# ---------------------------------------------------------------------------

def test_suite_reports_checked_and_violations():
    class AlwaysFails(InstanceBoundsInvariant):
        name = "always"

        def check(self, domain):
            return [self.violation("nope", detail=1)]

    suite = ConstraintSuite([AlwaysFails()])
    report = suite.check(None)
    assert not report.ok
    assert report.checked == ["always"]
    assert report.by_constraint("always")[0].context == {"detail": 1}
    assert "1 violation" in report.summary()


def test_violation_str():
    v = Violation("assoc", "broken")
    assert "assoc" in str(v) and "broken" in str(v)


# ---------------------------------------------------------------------------
# Association invariant (§4.2.2 OCL)
# ---------------------------------------------------------------------------

def test_association_holds_for_real_deployment():
    env = Environment()
    sm, service = deployed_sap(env)
    report = service.check_constraints()
    assert report.ok, [str(v) for v in report.violations]


def test_association_detects_tampered_memory():
    env = Environment()
    sm, service = deployed_sap(env)
    domain = service.lifecycle.provisioning_domain()
    domain.descriptors[0].memory_mb += 1  # simulated faulty transformation
    violations = AssociationInvariant().check(domain)
    assert any("memory" in v.message for v in violations)


def test_association_detects_wrong_disk_source():
    env = Environment()
    sm, service = deployed_sap(env)
    domain = service.lifecycle.provisioning_domain()
    domain.descriptors[0].disk_source = "http://evil/image"
    violations = AssociationInvariant().check(domain)
    assert any("disk source" in v.message for v in violations)


def test_association_detects_missing_descriptor():
    env = Environment()
    sm, service = deployed_sap(env)
    domain = service.lifecycle.provisioning_domain()
    domain.descriptors = [d for d in domain.descriptors
                          if d.component_id != "CI"]
    violations = AssociationInvariant().check(domain)
    assert any("no deployment descriptor" in v.message for v in violations)


def test_association_detects_unknown_component():
    env = Environment()
    sm, service = deployed_sap(env)
    domain = service.lifecycle.provisioning_domain()
    domain.descriptors.append(DeploymentDescriptor(
        name="rogue", memory_mb=1, cpu=1, disk_source="x",
        service_id=service.service_id, component_id="rogue"))
    violations = AssociationInvariant().check(domain)
    assert any("unknown virtual system" in v.message for v in violations)


# ---------------------------------------------------------------------------
# Placement / bounds / startup invariants over the real stack
# ---------------------------------------------------------------------------

def test_colocation_constraint_enforced_and_checked():
    env = Environment()
    sm, service = deployed_sap(env)
    ci = service.lifecycle.components["CI"].vms[0]
    dbms = service.lifecycle.components["DBMS"].vms[0]
    assert ci.host is dbms.host  # placement actually co-located them
    report = service.check_constraints()
    assert report.by_constraint("colocation") == []


def test_colocation_violation_detected_after_bad_migration():
    env = Environment()
    sm, service = deployed_sap(env)
    ci = service.lifecycle.components["CI"].vms[0]
    target = next(h for h in sm.veem.hosts if h is not ci.host)

    def migrate(env):
        yield sm.veem.migrate(ci, target)

    env.process(migrate(env))
    env.run(until=env.now + 100)
    report = service.check_constraints()
    assert any(v.constraint == "colocation" for v in report.violations)


def test_instance_bounds_violation_detected():
    env = Environment()
    sm, service = deployed_sap(env)
    domain = service.lifecycle.provisioning_domain()
    # Simulate a runaway: clone DI VMs beyond the maximum of 6.
    di_vms = [vm for vm in domain.vms
              if vm.descriptor.component_id == "DI"]
    domain.vms.extend(di_vms * 6)
    violations = InstanceBoundsInvariant().check(domain)
    assert any("above maximum" in v.message for v in violations)


def test_startup_order_postcondition_detects_early_submission():
    env = Environment()
    sm, service = deployed_sap(env)
    domain = service.lifecycle.provisioning_domain()
    # Tamper: pretend the CI was submitted before the DBMS was running.
    ci_vm = next(vm for vm in domain.vms
                 if vm.descriptor.component_id == "CI")
    ci_vm.submitted_at = 0.0
    dbms_vm = next(vm for vm in domain.vms
                   if vm.descriptor.component_id == "DBMS")
    assert dbms_vm.running_at > 0
    report = deployment_suite().check(domain)
    assert any(v.constraint == "startup-order" for v in report.violations)


# ---------------------------------------------------------------------------
# Generated instruments (§4.2.3)
# ---------------------------------------------------------------------------

def test_kpi_reporter_tracks_streams():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    manifest = sap_manifest()
    instruments = generate_instruments(manifest, "svc-sap", sm.network)
    service = sm.deploy(manifest, service_id="svc-sap")
    env.run(until=service.deployment)

    agent = MonitoringAgent(env, service_id="svc-sap",
                            component="WebDispatcher", network=sm.network)
    agent.expose("com.sap.webdispatcher.kpis.sessions", lambda: 42,
                 frequency_s=30)
    env.run(until=env.now + 100)

    reports = {r.qualified_name: r for r in instruments.reporter.report()}
    sessions = reports["com.sap.webdispatcher.kpis.sessions"]
    assert sessions.events == 3
    assert sessions.last_value == 42
    assert sessions.frequency_ok()
    assert instruments.reporter.silent_kpis() == ["com.sap.di.instances"]


def test_reporter_requires_application_description():
    env = Environment()
    b = ManifestBuilder("bare")
    b.component("a", image_mb=1)
    with pytest.raises(ValueError):
        generate_instruments(b.build(), "svc", MulticastChannel(env))


def _journal_with(events):
    journal = MeasurementJournal()
    for qname, value, t in events:
        journal.notify(Measurement(qname, "svc", "p", t, (value,)))
    return journal


def _trace_with(env, actions):
    trace = TraceLog(env)
    records = []
    for rule, t in actions:
        # emit() stamps env.now; build records manually for arbitrary times
        from repro.sim.tracing import TraceRecord
        trace.records.append(TraceRecord(
            t, "rule-engine", "elasticity.action",
            {"rule": rule, "service": "svc", "operation": "deployVM",
             "component_ref": "x"}))
    return trace


def enforcement_manifest():
    b = ManifestBuilder("svc")
    b.component("exec", image_mb=1, initial=0, minimum=0, maximum=4)
    b.kpi("C", "exec", "q.size", default=0)
    b.rule("up", "@q.size > 4", "deployVM(exec)", time_constraint_ms=5000)
    return b.build()


def test_enforcement_validator_accepts_timely_action():
    env = Environment()
    manifest = enforcement_manifest()
    journal = _journal_with([("q.size", 10, 100.0)])
    trace = _trace_with(env, [("up", 103.0)])  # within 5 s window
    validator = ElasticityEnforcementValidator(manifest, "svc", journal, trace)
    assert validator.violations() == []
    assert validator.summary()["up"]["enforced"] == 1


def test_enforcement_validator_flags_missed_action():
    env = Environment()
    manifest = enforcement_manifest()
    journal = _journal_with([("q.size", 10, 100.0)])
    trace = _trace_with(env, [("up", 120.0)])  # too late
    validator = ElasticityEnforcementValidator(manifest, "svc", journal, trace)
    violations = validator.violations()
    assert len(violations) == 1
    assert "no action was invoked" in violations[0].message


def test_enforcement_validator_excuses_cooldown():
    env = Environment()
    manifest = enforcement_manifest()
    journal = _journal_with([
        ("q.size", 10, 100.0),
        ("q.size", 12, 101.0),  # still holding, inside cooldown
    ])
    trace = _trace_with(env, [("up", 100.5)])
    validator = ElasticityEnforcementValidator(manifest, "svc", journal, trace)
    summary = validator.summary()["up"]
    # First event enforced; second event is enforced (action within its
    # window) or cooldown — but never missed.
    assert summary["missed"] == 0


def test_enforcement_validator_ignores_non_holding_events():
    env = Environment()
    manifest = enforcement_manifest()
    journal = _journal_with([("q.size", 1, 100.0)])
    validator = ElasticityEnforcementValidator(
        manifest, "svc", journal, _trace_with(env, []))
    assert validator.findings() == []


def test_end_to_end_enforcement_validation():
    """Full stack: deploy, drive load, then validate enforcement from the
    real journal and trace — the paper's §4.2.3 instrument in action."""
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    manifest = sap_manifest()
    service = sm.deploy(manifest, service_id="svc-sap")
    env.run(until=service.deployment)

    sessions = {"n": 0}
    agent = MonitoringAgent(env, service_id="svc-sap",
                            component="WebDispatcher", network=sm.network)
    agent.expose("com.sap.webdispatcher.kpis.sessions",
                 lambda: sessions["n"], frequency_s=10)
    agent.expose("com.sap.di.instances",
                 lambda: service.instance_count("DI"), frequency_s=10)
    sessions["n"] = 300
    env.run(until=env.now + 120)
    sessions["n"] = 0
    env.run(until=env.now + 120)

    validator = ElasticityEnforcementValidator(
        manifest, "svc-sap", service.interpreter.journal, sm.trace)
    assert validator.violations() == [], [
        str(v) for v in validator.violations()]
    summary = validator.summary()
    assert summary["scale-di-up"]["enforced"] >= 1
    assert summary["scale-di-down"]["enforced"] >= 1
