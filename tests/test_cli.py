"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from repro.core.manifest import manifest_to_text, manifest_to_xml
from tests.test_manifest_xml import paper_manifest


@pytest.fixture
def xml_path(tmp_path):
    path = tmp_path / "service.xml"
    path.write_text(manifest_to_xml(paper_manifest()))
    return str(path)


@pytest.fixture
def text_path(tmp_path):
    path = tmp_path / "service.rsm"
    path.write_text(manifest_to_text(paper_manifest()))
    return str(path)


def test_validate_xml_ok(xml_path, capsys):
    assert main(["validate", xml_path]) == 0
    out = capsys.readouterr().out
    assert "OK: polymorphGridService" in out
    assert "2 rule(s)" in out


def test_validate_text_ok(text_path, capsys):
    assert main(["validate", text_path]) == 0


def test_validate_invalid_manifest(tmp_path, capsys):
    from repro.core.manifest import ManifestBuilder

    bad = ManifestBuilder("bad")
    bad.component("a", image_mb=1, networks=["ghost"])
    path = tmp_path / "bad.xml"
    path.write_text(manifest_to_xml(bad.build(validate=False)))
    assert main(["validate", str(path)]) == 1
    captured = capsys.readouterr()
    assert "system-netref" in captured.out
    assert "INVALID" in captured.err


def test_validate_unparseable_file(tmp_path, capsys):
    path = tmp_path / "garbage.xml"
    path.write_text("<<< not a manifest")
    assert main(["validate", str(path)]) == 1
    assert "parse error" in capsys.readouterr().err


def test_convert_round_trips(xml_path, tmp_path, capsys):
    assert main(["convert", xml_path, "--to", "text"]) == 0
    text = capsys.readouterr().out
    assert text.startswith("service polymorphGridService {")
    path = tmp_path / "converted.rsm"
    path.write_text(text)
    assert main(["convert", str(path), "--to", "xml"]) == 0
    xml = capsys.readouterr().out
    from repro.core.manifest import manifest_from_xml
    assert manifest_from_xml(xml) == paper_manifest()


def test_generate_agent(xml_path, capsys):
    assert main(["generate-agent", xml_path, "GridMgmtService"]) == 0
    source = capsys.readouterr().out
    assert "class GridMgmtServiceAgentStub" in source
    compile(source, "<cli>", "exec")  # must be valid Python


def test_generate_validator(xml_path, capsys):
    assert main(["generate-validator", xml_path, "svc-1"]) == 0
    source = capsys.readouterr().out
    assert "SERVICE_ID = 'svc-1'" in source
    compile(source, "<cli>", "exec")


def test_table3_small(capsys):
    assert main(["table3", "--small"]) == 0
    out = capsys.readouterr().out
    assert "resource_usage_saving" in out
    assert "extra_run_time" in out


def test_fig11_small(capsys):
    assert main(["fig11", "--small", "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "queued jobs" in out
    assert out.count("execution instances") == 2


def test_capacity_plan(xml_path, capsys):
    assert main(["capacity", xml_path]) == 0
    out = capsys.readouterr().out
    assert "ceiling: 6 host(s)" in out


def test_capacity_admission_ok(xml_path, capsys):
    assert main(["capacity", xml_path, "--hosts", "6"]) == 0
    assert "OK" in capsys.readouterr().out


def test_capacity_admission_refused(xml_path, capsys):
    assert main(["capacity", xml_path, xml_path, "--hosts", "6"]) == 1
    assert "REFUSED" in capsys.readouterr().out


def test_control_demo(capsys):
    assert main(["control-demo", "--tenants", "3", "--services", "3",
                 "--hosts", "3", "--quota", "2"]) == 0
    out = capsys.readouterr().out
    assert "ADMITTED -> north" in out
    assert "queued (depth" in out
    assert "peak queue depth:" in out
    assert "rejected   0" in out
    # the demo drains completely: everything admitted is later released
    assert "submitted  9" in out
    assert "released   9" in out
    # phase 2: the causal chain from a KPI publication to the VEE it caused
    assert "causal chain: kpi.publish #" in out
    assert "is an ancestor of vm.deploy #" in out
    assert "rule-engine:rule.firing" in out
    assert "-> PASS" in out


def test_obs_report(tmp_path, capsys):
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    assert main(["obs-report", "--chrome", str(chrome),
                 "--jsonl", str(jsonl)]) == 0
    out = capsys.readouterr().out
    assert "== span tree" in out
    assert "control:request" in out
    assert "== metrics ==" in out
    assert "# TYPE control_plane_submitted counter" in out
    assert "time-constraint audit" in out and "-> PASS" in out
    # the exports are structurally valid
    import json
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"] and any(e["ph"] == "X"
                                      for e in doc["traceEvents"])
    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert any(row.get("record") == "span" for row in lines)
    assert any("span_id" in row for row in lines)
