"""Differential validation of the incremental/compiled rule engine.

Drives random measurement sequences through two RuleInterpreters over the
same simulated clock:

* the optimised engine (KPI-indexed incremental passes, compiled
  conditions) — the production default;
* the reference engine (``incremental=False, compiled=False``): the
  evaluate-everything tree-walking interpreter transcribed from §4.2.2.

Whatever the sequence — sparse churn, unmeasured KPIs, error rules, window
aggregations, cooldowns, refusing executors — both engines must produce
identical :class:`RuleFiring` journals and identical per-rule statistics.
"""

import random
import zlib

import pytest

from repro.core.manifest import ElasticityRule
from repro.core.service_manager import RuleInterpreter
from repro.monitoring import Measurement
from repro.sim import Environment


DEFAULTS = {"k.a": 0.0, "k.b": 5.0, "k.t": 1.0}  # k.c deliberately missing


def build_rules():
    return [
        ElasticityRule.from_text(
            "plain", "@k.a > 3", "deployVM(x)", defaults=DEFAULTS),
        ElasticityRule.from_text(
            "compound", "(@k.a / (@k.b + 1) > 0.5) && (@k.b < 12)",
            "deployVM(x)", defaults=DEFAULTS),
        ElasticityRule.from_text(
            "error-prone", "@k.c > 2", "undeployVM(x)", defaults=DEFAULTS),
        ElasticityRule.from_text(
            "windowed", "mean(@k.a, 30) > 4", "notify()", defaults=DEFAULTS),
        ElasticityRule.from_text(
            "timed", "(@system.time.timeofday > 36000) && (@k.t >= 1)",
            "notify()", defaults=DEFAULTS),
        ElasticityRule.from_text(
            "eager", "@k.b >= 5", "reconfigureVM(x)", defaults=DEFAULTS,
            cooldown_s=0.0),
        ElasticityRule.from_text(
            "mixed", "!(@k.a > 2) || (@k.c < 9)", "notify()",
            defaults=DEFAULTS),
        ElasticityRule.from_text(
            "constant", "1 > 0", "notify()", defaults=DEFAULTS,
            time_constraint_ms=20_000),
    ]


def make_executor(env, journal):
    """Deterministic executor: refuses roughly a third of requests, keyed on
    (rule, time, position) so both engines see the same decisions."""

    def executor(action, rule):
        key = f"{rule.name}:{env.now:.6f}:{len(journal)}".encode()
        decision = zlib.crc32(key) % 3 != 0
        journal.append((env.now, rule.name, action.operation.value, decision))
        return decision
    return executor


def run_differential(seed, steps=120):
    rng = random.Random(seed)
    env = Environment()
    optimised_log, reference_log = [], []
    optimised = RuleInterpreter(
        env, "svc", executor=make_executor(env, optimised_log),
        kpi_defaults=DEFAULTS)
    reference = RuleInterpreter(
        env, "svc", executor=make_executor(env, reference_log),
        kpi_defaults=DEFAULTS, incremental=False, compiled=False)
    for rule in build_rules():
        optimised.install(rule)
        reference.install(rule)

    def driver(env):
        for _ in range(steps):
            roll = rng.random()
            if roll < 0.55:
                name = rng.choice(["k.a", "k.b", "k.c", "k.t", "k.unused"])
                m = Measurement(name, "svc", "probe-1", env.now,
                                (round(rng.uniform(-2.0, 15.0), 3),))
                optimised.notify(m)
                reference.notify(m)
            else:
                assert optimised.evaluate_rules() == reference.evaluate_rules()
            yield env.timeout(rng.choice([0.0, 0.5, 1.5, 4.0, 7.0]))
        assert optimised.evaluate_rules() == reference.evaluate_rules()

    env.process(driver(env))
    env.run()
    return optimised, reference, optimised_log, reference_log


@pytest.mark.parametrize("seed", range(8))
def test_firing_journals_identical(seed):
    optimised, reference, opt_log, ref_log = run_differential(seed)
    assert optimised.firings == reference.firings
    assert opt_log == ref_log
    opt_stats = optimised.stats()
    ref_stats = reference.stats()
    for name in ref_stats:
        for key in ("firings", "suppressed", "last_fired"):
            assert opt_stats[name][key] == ref_stats[name][key], (name, key)


def test_incremental_engine_actually_skips():
    """The differential harness is only meaningful if the optimised engine
    takes the incremental path — prove it skipped work."""
    optimised, reference, _, _ = run_differential(seed=3)
    assert optimised.rules_skipped > 0
    assert optimised.rules_evaluated < reference.rules_evaluated
    assert reference.rules_skipped == 0


def test_sparse_churn_evaluates_only_dirty_rules():
    env = Environment()
    interp = RuleInterpreter(env, "svc", executor=lambda a, r: False)
    n = 50
    for i in range(n):
        interp.install(ElasticityRule.from_text(
            f"rule-{i}", f"@kpi.s{i} > 5", "notify()",
            defaults={f"kpi.s{i}": 0.0}))
    interp.evaluate_rules()   # settle: fresh rules all evaluate once
    assert interp.last_pass["evaluated"] == n

    interp.evaluate_rules()   # nothing dirty, nothing hot → nothing to do
    assert interp.last_pass["evaluated"] == 0
    assert interp.last_pass["skipped"] == n

    interp.notify(Measurement("kpi.s7", "svc", "p", 0.0, (10,)))
    interp.evaluate_rules()   # exactly the one dirty rule re-evaluated
    assert interp.last_pass["dirty_kpis"] == 1
    assert interp.last_pass["evaluated"] == 1

    # Its condition now holds (executor refuses) → stays hot next pass.
    interp.evaluate_rules()
    assert interp.last_pass["evaluated"] == 1


def test_sustained_condition_refires_after_cooldown_without_new_events():
    env = Environment()
    calls = []

    def executor(action, rule):
        calls.append(env.now)
        return True

    interp = RuleInterpreter(env, "svc", executor=executor)
    interp.install(ElasticityRule.from_text(
        "up", "@a.b > 4", "deployVM(x)", defaults={"a.b": 0},
        time_constraint_ms=5000))
    interp.notify(Measurement("a.b", "svc", "p", 0.0, (10,)))

    def drive(env):
        interp.evaluate_rules()          # fires at t=0
        yield env.timeout(6)
        interp.evaluate_rules()          # no new measurement, must re-fire
    env.process(drive(env))
    env.run()
    assert calls == [0.0, 6.0]


def test_error_rule_keeps_tracing_each_pass():
    env = Environment()
    interp = RuleInterpreter(env, "svc", executor=lambda a, r: True)
    interp.install(ElasticityRule.from_text("bad", "@no.default > 1",
                                            "notify()"))
    interp.evaluate_rules()
    interp.evaluate_rules()
    errors = [r for r in interp.trace.records if r.kind == "rule.error"]
    assert len(errors) == 2
