"""Tests for jobs and the Condor-like scheduler."""

import pytest

from repro.grid import CondorScheduler, ExecutionNodeHandle, Job, JobState
from repro.sim import Environment


def make_sched(env, match_delay=0.0):
    return CondorScheduler(env, match_delay_s=match_delay)


def add_node(sched, name="n0", rate=1e9):
    node = ExecutionNodeHandle(name, transfer_mb_per_s=rate)
    sched.register_node(node)
    return node


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------

def test_job_validation():
    with pytest.raises(ValueError):
        Job(duration_s=0)
    with pytest.raises(ValueError):
        Job(duration_s=10, input_mb=-1)


def test_job_ids_unique_and_name_defaults():
    a, b = Job(duration_s=1), Job(duration_s=1)
    assert a.job_id != b.job_id
    assert a.name == a.job_id
    assert Job(duration_s=1, name="custom").name == "custom"


def test_job_metrics_before_events_are_none():
    job = Job(duration_s=10)
    assert job.queue_wait is None
    assert job.turnaround is None


# ---------------------------------------------------------------------------
# Submission and matchmaking
# ---------------------------------------------------------------------------

def test_job_runs_on_registered_node():
    env = Environment()
    sched = make_sched(env)
    add_node(sched)
    job = sched.submit(Job(duration_s=100, input_mb=0, output_mb=0))
    env.run()
    assert job.state is JobState.COMPLETED
    assert job.turnaround == pytest.approx(100)
    assert job.node_name == "startd@n0" or job.node_name == "n0"


def test_queue_size_counts_idle_only():
    env = Environment()
    sched = make_sched(env)
    add_node(sched)
    jobs = [Job(duration_s=50, input_mb=0, output_mb=0) for _ in range(3)]
    sched.submit_many(jobs)
    assert sched.queue_size == 3  # matchmaking hasn't run yet
    env.run(until=1)
    assert sched.queue_size == 2  # one matched to the single node
    assert sched.running_jobs == 1
    env.run()
    assert sched.queue_size == 0
    assert sched.all_done


def test_jobs_complete_fifo_on_single_node():
    env = Environment()
    sched = make_sched(env)
    add_node(sched)
    jobs = [Job(duration_s=10, input_mb=0, output_mb=0, name=f"j{i}")
            for i in range(3)]
    sched.submit_many(jobs)
    env.run()
    finish = [j.completed_at for j in jobs]
    assert finish == sorted(finish)
    assert [j.name for j in sorted(jobs, key=lambda j: j.completed_at)] == \
        ["j0", "j1", "j2"]


def test_parallel_nodes_share_queue():
    env = Environment()
    sched = make_sched(env)
    for i in range(4):
        add_node(sched, f"n{i}")
    jobs = [Job(duration_s=100, input_mb=0, output_mb=0) for _ in range(8)]
    sched.submit_many(jobs)
    env.run()
    # Two waves of four: makespan 200.
    assert env.now == pytest.approx(200)
    assert all(j.state is JobState.COMPLETED for j in jobs)


def test_transfer_time_added_to_execution():
    env = Environment()
    sched = make_sched(env)
    add_node(sched, rate=10.0)  # MB/s
    job = sched.submit(Job(duration_s=100, input_mb=50, output_mb=20))
    env.run()
    # 5 s in + 100 s run + 2 s out
    assert job.completed_at == pytest.approx(107.0)
    # queue_wait measures submission → execution start (includes transfer).
    assert job.queue_wait == pytest.approx(5.0)


def test_match_delay_applies():
    env = Environment()
    sched = make_sched(env, match_delay=2.0)
    add_node(sched)
    job = sched.submit(Job(duration_s=10, input_mb=0, output_mb=0))
    env.run()
    assert job.completed_at == pytest.approx(12.0)


def test_node_registration_triggers_matching():
    env = Environment()
    sched = make_sched(env)
    job = sched.submit(Job(duration_s=10, input_mb=0, output_mb=0))

    def late_node(env):
        yield env.timeout(100)
        add_node(sched)

    env.process(late_node(env))
    env.run()
    assert job.completed_at == pytest.approx(110.0)
    assert job.queue_wait == pytest.approx(100.0)


def test_resubmission_of_same_job_rejected():
    env = Environment()
    sched = make_sched(env)
    job = sched.submit(Job(duration_s=10))
    with pytest.raises(ValueError):
        sched.submit(job)


def test_remove_idle_job():
    env = Environment()
    sched = make_sched(env)
    job = sched.submit(Job(duration_s=10))
    sched.remove(job)
    assert job.state is JobState.REMOVED
    assert sched.queue_size == 0
    with pytest.raises(ValueError):
        sched.remove(job)


def test_duplicate_node_name_rejected():
    env = Environment()
    sched = make_sched(env)
    add_node(sched, "n0")
    with pytest.raises(ValueError):
        add_node(sched, "n0")


def test_deregister_busy_node_rejected():
    env = Environment()
    sched = make_sched(env)
    node = add_node(sched)
    sched.submit(Job(duration_s=100, input_mb=0, output_mb=0))
    env.run(until=10)
    assert node.busy
    with pytest.raises(ValueError):
        sched.deregister_node(node)


def test_drain_idle_node_deregisters_immediately():
    env = Environment()
    sched = make_sched(env)
    node = add_node(sched)
    drained = []
    node.on_drained = drained.append
    sched.drain_node(node)
    assert sched.node_count == 0
    assert drained == [node]


def test_drain_busy_node_finishes_current_job():
    env = Environment()
    sched = make_sched(env)
    node = add_node(sched)
    job = sched.submit(Job(duration_s=100, input_mb=0, output_mb=0))
    extra = sched.submit(Job(duration_s=100, input_mb=0, output_mb=0))
    env.run(until=10)
    drained = []
    node.on_drained = drained.append
    sched.drain_node(node)
    env.run(until=150)
    assert job.state is JobState.COMPLETED
    assert drained == [node]
    # The second job never ran on the drained node.
    assert extra.state is JobState.IDLE
    assert sched.node_count == 0


def test_pick_node_to_drain_prefers_idle():
    env = Environment()
    sched = make_sched(env)
    busy = add_node(sched, "busy")
    sched.submit(Job(duration_s=1000, input_mb=0, output_mb=0))
    env.run(until=5)

    def later(env):
        yield env.timeout(1)
        idle = add_node(sched, "idle")
        assert sched.pick_node_to_drain() is idle

    env.process(later(env))
    env.run(until=10)
    assert busy.busy


def test_pick_node_to_drain_falls_back_to_newest_busy():
    env = Environment()
    sched = make_sched(env)
    first = add_node(sched, "first")
    sched.submit(Job(duration_s=1000, input_mb=0, output_mb=0))
    env.run(until=5)

    def later(env):
        yield env.timeout(1)
        second = add_node(sched, "second")
        sched.submit(Job(duration_s=1000, input_mb=0, output_mb=0))
        yield env.timeout(5)
        assert second.busy
        assert sched.pick_node_to_drain() is second
        sched.drain_node(second)
        # Already-draining nodes are not offered again.
        assert sched.pick_node_to_drain() is first

    env.process(later(env))
    env.run(until=50)


def test_series_track_queue_and_nodes():
    env = Environment()
    # Non-zero match delay so the t=0 queue spike isn't collapsed by the
    # same-timestamp overwrite semantics of TimeSeries.
    sched = make_sched(env, match_delay=1.0)
    add_node(sched)
    sched.submit_many([Job(duration_s=10, input_mb=0, output_mb=0)
                       for _ in range(5)])
    env.run()
    queue = sched.series["queue_size"]
    nodes = sched.series["nodes_registered"]
    assert queue.maximum() == 5
    assert queue.current == 0
    assert nodes.current == 1


def test_mean_queue_wait():
    env = Environment()
    sched = make_sched(env)
    add_node(sched)
    jobs = [Job(duration_s=10, input_mb=0, output_mb=0) for _ in range(2)]
    sched.submit_many(jobs)
    env.run()
    # First waits 0, second waits 10.
    assert sched.mean_queue_wait() == pytest.approx(5.0)


def test_mean_queue_wait_empty_is_none():
    env = Environment()
    sched = make_sched(env)
    assert sched.mean_queue_wait() is None
