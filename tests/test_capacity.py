"""Tests for provider-side capacity planning and admission control (§8)."""

import pytest

from repro.cloud import (
    AdmissionController,
    CapacityError,
    HostType,
    demand_envelope,
    plan_capacity,
)
from repro.core.manifest import ManifestBuilder


def polymorph_like():
    """The evaluation service: 2 fixed hosts + up to 16 quarter-host execs."""
    b = ManifestBuilder("polymorph")
    b.component("Orchestration", image_mb=4096, cpu=4, memory_mb=8192)
    b.component("GridMgmt", image_mb=4096, cpu=4, memory_mb=8192)
    b.component("exec", image_mb=2048, cpu=1, memory_mb=2048,
                initial=0, minimum=0, maximum=16)
    b.kpi("C", "exec", "q.size", default=0)
    b.rule("up", "@q.size > 4", "deployVM(exec)")
    b.per_host_cap("exec", 4)
    return b.build()


def small_web(maximum=4):
    b = ManifestBuilder("web")
    b.component("web", image_mb=512, cpu=1, memory_mb=2048,
                initial=1, minimum=1, maximum=maximum)
    if maximum > 1:
        b.kpi("C", "web", "w.load", default=0)
        b.rule("up", "@w.load > 4", "deployVM(web)")
    return b.build()


# ---------------------------------------------------------------------------
# Demand envelopes
# ---------------------------------------------------------------------------

def test_envelope_expands_bounds():
    env = demand_envelope(polymorph_like())
    assert len(env.floor) == 2          # two fixed components, exec min 0
    assert len(env.ceiling) == 2 + 16
    cpu, mem = env.totals("ceiling")
    assert cpu == 4 + 4 + 16 * 1
    assert mem == 2 * 8192 + 16 * 2048
    assert env.totals("floor") == (8, 16384)


def test_envelope_carries_per_host_caps():
    env = demand_envelope(polymorph_like())
    exec_demands = [d for d in env.ceiling if d.component == "exec"]
    assert all(d.per_host_cap == 4 for d in exec_demands)
    fixed = [d for d in env.ceiling if d.component == "GridMgmt"]
    assert fixed[0].per_host_cap is None


# ---------------------------------------------------------------------------
# Packing
# ---------------------------------------------------------------------------

def test_plan_reproduces_testbed_sizing():
    """The paper's deployment: 2 dedicated hosts + 16 exec VMs at 4/host
    → exactly the six-server testbed at worst case."""
    plan = plan_capacity([polymorph_like()], HostType(4, 8192))
    assert plan.hosts_for_ceiling == 6
    assert plan.hosts_for_floor == 2
    assert plan.elasticity_headroom == 4


def test_per_host_cap_limits_packing():
    b = ManifestBuilder("dense")
    # Tiny instances that would fit 8/host by resources, capped at 2/host.
    b.component("tiny", image_mb=10, cpu=0.5, memory_mb=1024,
                initial=8, minimum=8, maximum=8)
    b.per_host_cap("tiny", 2)
    plan = plan_capacity([b.build()], HostType(4, 8192))
    assert plan.hosts_for_ceiling == 4  # 8 instances / cap 2


def test_oversized_instance_rejected():
    b = ManifestBuilder("huge")
    b.component("big", image_mb=10, cpu=16, memory_mb=1024)
    with pytest.raises(CapacityError, match="exceeds the host type"):
        plan_capacity([b.build()], HostType(4, 8192))


def test_empty_plan():
    plan = plan_capacity([], HostType())
    assert plan.hosts_for_floor == plan.hosts_for_ceiling == 0
    assert plan.elasticity_headroom == 0


def test_plan_summary_text():
    plan = plan_capacity([polymorph_like()])
    text = plan.summary()
    assert "floor: 2 host(s)" in text
    assert "ceiling: 6 host(s)" in text


def test_host_type_validation():
    with pytest.raises(ValueError):
        HostType(cpu_cores=0)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

def test_admission_within_pool():
    controller = AdmissionController(pool_hosts=6, host=HostType(4, 8192))
    controller.admit(polymorph_like())
    assert controller.committed_plan.hosts_for_ceiling == 6


def test_admission_rejects_overcommitment():
    controller = AdmissionController(pool_hosts=6, host=HostType(4, 8192))
    controller.admit(polymorph_like())
    # The pool is fully committed at worst case; nothing else fits.
    assert not controller.can_admit(small_web())
    with pytest.raises(CapacityError, match="cannot admit"):
        controller.admit(small_web())


def test_release_frees_commitment():
    controller = AdmissionController(pool_hosts=6, host=HostType(4, 8192))
    big = polymorph_like()
    controller.admit(big)
    controller.release(big)
    controller.admit(small_web())  # fits easily now
    assert len(controller.admitted) == 1


def test_multiple_small_services_share_hosts():
    controller = AdmissionController(pool_hosts=2, host=HostType(4, 8192))
    # Each web service peaks at 4 × (1 cpu, 2 GB); two of them fill 2 hosts.
    controller.admit(small_web())
    controller.admit(small_web())
    assert not controller.can_admit(small_web(maximum=1))
    assert controller.committed_plan.hosts_for_ceiling == 2


def test_admission_pool_validation():
    with pytest.raises(ValueError):
        AdmissionController(pool_hosts=0)


# ---------------------------------------------------------------------------
# Struct-of-arrays admission vs. the repack oracle
# ---------------------------------------------------------------------------

from hypothesis import given, settings, strategies as st  # noqa: E402


def _manifest(spec):
    """Build a manifest from a draw: list of (cpu, mem, lo, hi, cap)."""
    b = ManifestBuilder(f"svc-{abs(hash(tuple(spec))) % 10 ** 8}")
    for i, (cpu, mem, lo, hi, cap) in enumerate(spec):
        name = f"c{i}"
        b.component(name, image_mb=64, cpu=cpu, memory_mb=mem,
                    initial=lo, minimum=lo, maximum=hi)
        if hi > lo:
            b.kpi("K", name, f"m{i}.load", default=0)
            b.rule(f"up{i}", f"@m{i}.load > 1", f"deployVM({name})")
        if cap is not None:
            b.per_host_cap(name, cap)
    return b.build()


_component = st.tuples(
    st.sampled_from([0.5, 1.0, 2.0, 4.0]),            # cpu
    st.sampled_from([512.0, 1024.0, 2048.0, 8192.0]),  # memory
    st.integers(0, 2),                                 # minimum
    st.integers(1, 6),                                 # extra above minimum
    st.sampled_from([None, 1, 2, 4]),                  # per-host cap
).map(lambda t: (t[0], t[1], t[2], t[2] + t[3], t[4]))

_manifests = st.lists(
    st.lists(_component, min_size=1, max_size=3).map(_manifest),
    min_size=1, max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(specs=_manifests, pool=st.integers(1, 12),
       data=st.data())
def test_incremental_admission_matches_repack_oracle(specs, pool, data):
    """The table-backed controller must agree with a from-scratch
    ``plan_capacity`` repack after every admit/release — same verdicts,
    same committed plan."""
    host = HostType(4, 8192)
    controller = AdmissionController(pool_hosts=pool, host=host)
    for manifest in specs:
        oracle = plan_capacity(controller.admitted + [manifest], host)
        expected = oracle.hosts_for_ceiling <= pool
        assert controller.can_admit(manifest) is expected
        if expected:
            controller.admit(manifest)
        if controller.admitted and data.draw(st.booleans()):
            victim = data.draw(st.sampled_from(controller.admitted))
            controller.release(victim)
        plan = controller.committed_plan
        truth = plan_capacity(controller.admitted, host)
        assert plan.hosts_for_ceiling == truth.hosts_for_ceiling
        assert plan.hosts_for_floor == truth.hosts_for_floor
        assert plan.ceiling_cpu == pytest.approx(truth.ceiling_cpu)
        assert plan.ceiling_memory_mb == pytest.approx(truth.ceiling_memory_mb)
        assert plan.floor_cpu == pytest.approx(truth.floor_cpu)
        assert plan.floor_memory_mb == pytest.approx(truth.floor_memory_mb)
