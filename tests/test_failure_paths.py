"""Regression tests for failure-path bugs surfaced by the chaos scenarios.

Three latent bugs, all variations of "a yield raced a failure":

1. ``ServiceLifecycleManager.deploy_service`` waited on ``on_running`` alone
   at the tier barrier, so a host crash that killed a provisioning VM wedged
   the deployment (and any control-plane request driving it) forever.
2. ``VEEM._migrate`` transitioned FAILED→RUNNING after the memory copy if the
   VM died mid-flight, raising ``LifecycleError``.
3. ``VEEM._shutdown`` dereferenced ``vm.host`` after the shutdown delay,
   crashing with ``AttributeError`` when a failure had already evicted the VM.

Each test here fails against the pre-fix code.
"""

from repro.cloud import (
    DeploymentDescriptor,
    Host,
    HypervisorTimings,
    ImageRepository,
    VEEM,
    VMState,
)
from repro.control import Admitted, ControlPlane, Queued, RequestState
from repro.core.manifest import ManifestBuilder
from repro.core.service_manager import ServiceManager
from repro.sim import Environment

TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2,
                            migrate_suspend_s=2)


def make_veem(env, n_hosts=3, trace=None):
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo, trace=trace)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=8, memory_mb=16384,
                           timings=TIMINGS))
    return veem


def web_manifest(initial=2, minimum=2, maximum=3, cpu=1):
    b = ManifestBuilder("svc")
    b.component("web", image_mb=100, cpu=cpu, memory_mb=1024,
                initial=initial, minimum=minimum, maximum=maximum)
    return b.build()


def crash_plane(env, n_hosts=2, cores=4):
    control = ControlPlane(env)
    veem = VEEM(env, name="s0", trace=control.trace,
                repository=ImageRepository(bandwidth_mb_per_s=1000))
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=cores, memory_mb=8192,
                           timings=TIMINGS))
    control.add_site("s0", veem)
    control.register_tenant("t")
    return control, veem


# ---------------------------------------------------------------------------
# Bug 1: mid-deploy host crash must not wedge the deployment
# ---------------------------------------------------------------------------

def test_mid_deploy_host_crash_completes_deployment():
    env = Environment()
    control, veem = crash_plane(env)
    out = control.submit("t", web_manifest(), service_id="svc-1")
    assert isinstance(out, Admitted)
    req = out.request

    env.run(until=3)  # both instances still provisioning
    assert req.state is RequestState.DEPLOYING
    victim = next(h for h in veem.hosts if h.vms)
    veem.inject_host_failure(victim)

    env.run(until=600)
    # Pre-fix: the tier barrier waits on the dead VMs' on_running forever and
    # the request never leaves DEPLOYING.
    assert req.state is RequestState.ACTIVE
    assert req.service is not None
    assert req.service.deployment.processed
    assert req.service.instance_count("web") == 2
    # The crashed host's capacity was released by the failure path.
    assert victim.cpu_free == victim.cpu_cores
    # No orphan spans beyond the (by-design open) span of the active request.
    open_kinds = [s.kind for s in control.trace.open_spans()]
    assert open_kinds == ["request"]


def test_queue_redrains_after_crash_then_release():
    """End-to-end re-drain proof: a request wedged by the pre-fix bug would
    hold its capacity forever, starving the queue."""
    env = Environment()
    control, veem = crash_plane(env, n_hosts=1, cores=4)
    first = control.submit("t", web_manifest(initial=3, minimum=3, maximum=3),
                           service_id="svc-1")
    assert isinstance(first, Admitted)
    env.run(until=3)
    veem.inject_host_failure(veem.hosts[0])
    env.run(until=20)
    veem.recover_host(veem.hosts[0])

    env.run(until=600)
    assert first.request.state is RequestState.ACTIVE

    second = control.submit("t", web_manifest(initial=3, minimum=3, maximum=3),
                            service_id="svc-2")
    assert isinstance(second, Queued)

    control.release(first.request)
    env.run(until=1200)
    assert first.request.state is RequestState.RELEASED
    # The freed capacity re-drained the queue.
    assert second.request.state is RequestState.ACTIVE


def test_release_completes_when_instance_failed_mid_boot():
    """The DefaultDriver stop path must not wait on ``on_running`` of a VM
    that died while provisioning."""
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest(initial=2, minimum=2, maximum=2))
    service.lifecycle.auto_heal = False
    env.run(until=3)
    booting = service.lifecycle.components["web"].vms[0]
    assert booting.state in (VMState.STAGING, VMState.BOOTING)
    veem.inject_vm_failure(booting)
    env.run(until=service.deployment)
    env.run(until=sm.undeploy(service))
    assert service.instance_count("web") == 0


# ---------------------------------------------------------------------------
# Bug 2: host failure mid-migration must not raise FAILED -> RUNNING
# ---------------------------------------------------------------------------

def test_migration_survives_target_host_crash():
    env = Environment()
    veem = make_veem(env, n_hosts=2)
    href = veem.repository.add("img", 1000).href
    vm = veem.submit(DeploymentDescriptor(
        name="x", memory_mb=2048, cpu=1, disk_source=href,
        component_id="x", service_id="s"))
    env.run(until=vm.on_running)
    source = vm.host
    target = next(h for h in veem.hosts if h is not source)

    done = veem.migrate(vm, target)
    env.run(until=env.now + 0.5)
    assert vm.state is VMState.MIGRATING
    veem.inject_host_failure(target)  # kills the in-flight VM
    env.run(until=done)  # pre-fix: LifecycleError failed -> running
    assert vm.state is VMState.FAILED
    # Both hosts hold no capacity for the dead VM.
    assert source.cpu_free == source.cpu_cores
    assert all(vm not in h.vms for h in veem.hosts)


# ---------------------------------------------------------------------------
# Bug 3: failure racing a shutdown must not dereference a None host
# ---------------------------------------------------------------------------

def test_shutdown_survives_concurrent_vm_failure():
    env = Environment()
    veem = make_veem(env, n_hosts=1)
    href = veem.repository.add("img", 100).href
    vm = veem.submit(DeploymentDescriptor(
        name="x", memory_mb=1024, cpu=1, disk_source=href,
        component_id="x", service_id="s"))
    env.run(until=vm.on_running)
    host = veem.hosts[0]
    done = veem.shutdown(vm)
    env.run(until=env.now + 0.5)
    assert vm.state is VMState.SHUTTING_DOWN
    veem.inject_vm_failure(vm)
    env.run(until=done)  # pre-fix: AttributeError on vm.host.release
    assert vm.state is VMState.FAILED
    # Capacity released exactly once.
    assert host.cpu_free == host.cpu_cores
    assert host.memory_free == host.memory_mb
