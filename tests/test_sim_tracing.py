"""Unit tests for trace logs, time series and random streams."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, RandomStreams, TimeSeries, TraceLog
from repro.sim.rng import lognormal_from_mean_cv, truncated_normal, weighted_choice
from repro.sim.tracing import SeriesRecorder


# ---------------------------------------------------------------------------
# TraceLog
# ---------------------------------------------------------------------------

def test_trace_log_records_time_and_details():
    env = Environment()
    log = TraceLog(env)

    def proc(env):
        yield env.timeout(3)
        log.emit("veem", "vm.deploy", vm="dialog-1")

    env.process(proc(env))
    env.run()
    assert len(log) == 1
    rec = log.records[0]
    assert rec.time == 3.0
    assert rec.source == "veem"
    assert rec.kind == "vm.deploy"
    assert rec.details == {"vm": "dialog-1"}


def test_trace_log_query_filters():
    env = Environment()
    log = TraceLog(env)
    log.emit("a", "x", n=1)
    log.emit("b", "x", n=2)
    log.emit("a", "y", n=3)
    assert [r.details["n"] for r in log.query(source="a")] == [1, 3]
    assert [r.details["n"] for r in log.query(kind="x")] == [1, 2]
    assert log.first(source="a").details["n"] == 1
    assert log.last(source="a").details["n"] == 3
    assert log.first(source="missing") is None


def test_trace_log_time_window():
    env = Environment()
    log = TraceLog(env)

    def proc(env):
        for i in range(5):
            log.emit("s", "tick", i=i)
            yield env.timeout(10)

    env.process(proc(env))
    env.run()
    window = log.query(since=10, until=30)
    assert [r.details["i"] for r in window] == [1, 2, 3]


def test_trace_log_listener_and_json():
    env = Environment()
    log = TraceLog(env)
    seen = []
    log.subscribe(seen.append)
    rec = log.emit("src", "kind", value=7)
    assert seen == [rec]
    parsed = json.loads(rec.to_json())
    assert parsed["details"]["value"] == 7


# ---------------------------------------------------------------------------
# TimeSeries
# ---------------------------------------------------------------------------

def test_time_series_records_and_evaluates():
    ts = TimeSeries("nodes", initial=0)
    ts.record(10, 4)
    ts.record(20, 16)
    assert ts.value_at(0) == 0
    assert ts.value_at(10) == 4
    assert ts.value_at(15) == 4
    assert ts.value_at(25) == 16
    assert ts.current == 16


def test_time_series_rejects_time_travel():
    ts = TimeSeries("x")
    ts.record(5, 1)
    with pytest.raises(ValueError):
        ts.record(4, 2)


def test_time_series_same_time_overwrites():
    ts = TimeSeries("x")
    ts.record(5, 1)
    ts.record(5, 9)
    assert ts.value_at(5) == 9
    assert len(ts.times) == 2  # start point plus one change


def test_time_series_integral():
    ts = TimeSeries("alloc", initial=0)
    ts.record(10, 2)   # 0 for [0,10), 2 for [10,30), 5 for [30,...]
    ts.record(30, 5)
    assert ts.integral(0, 10) == 0
    assert ts.integral(0, 30) == 40
    assert ts.integral(0, 40) == 90
    assert ts.integral(20, 40) == pytest.approx(2 * 10 + 5 * 10)
    assert ts.integral(15, 15) == 0


def test_time_series_mean_matches_hand_computation():
    ts = TimeSeries("alloc", initial=16)
    ts.record(100, 8)
    # 16 for 100 s, then 8 for 100 s → mean 12.
    assert ts.mean(0, 200) == pytest.approx(12.0)


def test_time_series_increment_and_max():
    ts = TimeSeries("queue", initial=0)
    ts.increment(1)
    ts.increment(2)
    ts.increment(3, delta=5)
    ts.increment(4, delta=-2)
    assert ts.current == 5
    assert ts.maximum() == 7


def test_time_series_sample_grid():
    ts = TimeSeries("q", initial=1)
    ts.record(10, 3)
    samples = ts.sample(0, 20, 5)
    assert samples == [(0, 1.0), (5, 1.0), (10, 3.0), (15, 3.0), (20, 3.0)]


@given(
    changes=st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=100),
                  st.floats(min_value=-50, max_value=50)),
        min_size=1, max_size=20,
    )
)
@settings(max_examples=100)
def test_time_series_integral_additivity(changes):
    """∫[0,T] = ∫[0,m] + ∫[m,T] for any split point m — a core invariant the
    Table 3 resource-usage computation relies on."""
    ts = TimeSeries("x", initial=1.0)
    t = 0.0
    for dt, v in changes:
        t += dt
        ts.record(t, v)
    total_end = t + 10
    mid = total_end / 3
    whole = ts.integral(0, total_end)
    split = ts.integral(0, mid) + ts.integral(mid, total_end)
    assert math.isclose(whole, split, rel_tol=1e-9, abs_tol=1e-9)


def test_series_recorder_creates_on_demand():
    env = Environment()
    rec = SeriesRecorder(env)
    rec.record("queue", 5)
    rec.increment("queue")
    assert rec["queue"].current == 6
    assert "queue" in rec
    assert "other" not in rec


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------

def test_random_streams_reproducible():
    a = RandomStreams(seed=7).stream("jobs").random(5).tolist()
    b = RandomStreams(seed=7).stream("jobs").random(5).tolist()
    assert a == b


def test_random_streams_independent_by_name():
    rs = RandomStreams(seed=7)
    a = rs.stream("jobs").random(5).tolist()
    b = rs.stream("boot").random(5).tolist()
    assert a != b


def test_random_streams_new_stream_does_not_perturb_existing():
    rs1 = RandomStreams(seed=3)
    first = rs1.stream("jobs").random(3).tolist()

    rs2 = RandomStreams(seed=3)
    rs2.stream("something-new").random(10)  # extra consumer
    second = rs2.stream("jobs").random(3).tolist()
    assert first == second


def test_spawned_streams_differ_from_parent():
    rs = RandomStreams(seed=3)
    child = rs.spawn("run-1")
    assert rs.stream("x").random() != child.stream("x").random()


def test_truncated_normal_respects_bounds():
    rng = RandomStreams(seed=1).stream("t")
    draws = [truncated_normal(rng, mean=10, std=20, low=0, high=15)
             for _ in range(200)]
    assert all(0 <= d <= 15 for d in draws)


def test_truncated_normal_zero_std_is_deterministic():
    rng = RandomStreams(seed=1).stream("t")
    assert truncated_normal(rng, mean=5, std=0, low=0) == 5


def test_truncated_normal_validation():
    rng = RandomStreams(seed=1).stream("t")
    with pytest.raises(ValueError):
        truncated_normal(rng, 5, -1)
    with pytest.raises(ValueError):
        truncated_normal(rng, 5, 1, low=10, high=0)


def test_lognormal_mean_cv_statistics():
    rng = RandomStreams(seed=2).stream("ln")
    draws = [lognormal_from_mean_cv(rng, mean=100, cv=0.3)
             for _ in range(5000)]
    sample_mean = sum(draws) / len(draws)
    assert sample_mean == pytest.approx(100, rel=0.05)
    assert all(d > 0 for d in draws)


def test_lognormal_zero_cv_is_mean():
    rng = RandomStreams(seed=2).stream("ln")
    assert lognormal_from_mean_cv(rng, mean=42, cv=0) == 42


def test_lognormal_validation():
    rng = RandomStreams(seed=2).stream("ln")
    with pytest.raises(ValueError):
        lognormal_from_mean_cv(rng, mean=-1, cv=0.5)
    with pytest.raises(ValueError):
        lognormal_from_mean_cv(rng, mean=1, cv=-0.5)


def test_weighted_choice_respects_zero_weights():
    rng = RandomStreams(seed=4).stream("w")
    picks = {weighted_choice(rng, ["a", "b", "c"], [0, 1, 0])
             for _ in range(50)}
    assert picks == {"b"}


def test_weighted_choice_validation():
    rng = RandomStreams(seed=4).stream("w")
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a"], [1, 2])
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a", "b"], [0, 0])
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a", "b"], [-1, 2])


# ---------------------------------------------------------------------------
# TimeSeries: bisect-windowed extrema
# ---------------------------------------------------------------------------

def test_time_series_windowed_extrema_basic():
    ts = TimeSeries("load", initial=5)
    ts.record(10, 1)
    ts.record(20, 9)
    ts.record(30, 4)
    # Change points inside (12, 25]: the 9 recorded at t=20.
    assert ts.maximum(12, 25) == 9
    # The value *entering* the window (the level carried in from t=10)
    # counts too -- the series sat at 1 from t=12 until t=20.
    assert ts.minimum(12, 25) == 1
    # Full-history defaults are unchanged.
    assert ts.maximum() == 9
    assert ts.minimum() == 1


def test_time_series_window_with_no_interior_points_uses_entering_value():
    ts = TimeSeries("load", initial=5)
    ts.record(10, 7)
    ts.record(50, 2)
    # No change point falls in [20, 30]; the step level there is 7.
    assert ts.maximum(20, 30) == 7
    assert ts.minimum(20, 30) == 7


def test_time_series_window_boundaries_are_inclusive():
    ts = TimeSeries("load", initial=0)
    ts.record(10, 3)
    ts.record(20, 8)
    # start exactly on a change point includes it (right-continuity).
    assert ts.maximum(10, 15) == 3
    # end exactly on a change point includes it.
    assert ts.maximum(5, 20) == 8
    assert ts.minimum(10, 20) == 3


def test_time_series_window_before_first_point():
    ts = TimeSeries("load", initial=4, start=100.0)
    ts.record(200, 9)
    # A window entirely before the series started raises: there is no
    # level entering the window and no change point inside it.
    with pytest.raises(ValueError):
        ts.maximum(0, 50)
    # A window starting at/after the first point works.
    assert ts.minimum(100, 150) == 4


def test_time_series_extrema_million_points():
    """Regression: windowed extrema on a 1e6-point series must return the
    same answers as brute-force slices (and not scan full history)."""
    n = 1_000_000
    ts = TimeSeries("big", initial=0.0)
    # Deterministic sawtooth with two planted outliers; build the columns
    # directly (record() per point would dominate the test's runtime).
    ts.times.extend(float(i) for i in range(1, n + 1))
    ts.values.extend(float(i % 97) for i in range(1, n + 1))
    ts.values[500_000] = 5000.0   # t = 500_000
    ts.values[750_000] = -50.0    # t = 750_000

    assert ts.maximum() == 5000.0
    assert ts.minimum() == -50.0
    # Tight windows around the planted points.
    assert ts.maximum(499_999.5, 500_000.5) == 5000.0
    assert ts.minimum(749_999.5, 750_000.5) == -50.0
    # A window avoiding both outliers: sawtooth extrema plus the level
    # entering the window.
    lo_t, hi_t = 100_000.0, 100_500.0
    brute = list(ts.values[100_000:100_501])  # change points in [lo, hi]
    assert ts.maximum(lo_t, hi_t) == max(brute)
    assert ts.minimum(lo_t, hi_t) == min(brute)
    # A window strictly between change points reads the entering level.
    assert ts.maximum(123_456.25, 123_456.75) == float(123_456 % 97)
    assert ts.minimum(123_456.25, 123_456.75) == float(123_456 % 97)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1000),
                          st.floats(min_value=-100, max_value=100)),
                min_size=1, max_size=30),
       st.floats(min_value=-10, max_value=1010),
       st.floats(min_value=0, max_value=200))
@settings(max_examples=100, deadline=None)
def test_time_series_extrema_match_bruteforce(points, start, width):
    points = sorted(points)
    ts = TimeSeries("h", initial=0.0)
    for t, v in points:
        ts.record(t, v)
    end = start + width
    # Brute force over the step function: values at change points in
    # [start, end], plus the level entering the window.
    candidates = [v for t, v in ts.steps() if start <= t <= end]
    if ts.times[0] < start:
        candidates.append(ts.value_at(start))
    if not candidates:
        with pytest.raises(ValueError):
            ts.maximum(start, end)
    else:
        assert ts.maximum(start, end) == max(candidates)
        assert ts.minimum(start, end) == min(candidates)


# ---------------------------------------------------------------------------
# TraceLog: keyed listeners
# ---------------------------------------------------------------------------

def test_trace_log_keyed_listeners_dispatch_by_key():
    env = Environment()
    log = TraceLog(env)
    got = []
    log.subscribe_keyed("service", "a", lambda r: got.append(("a", r.kind)))
    log.subscribe_keyed("service", "b", lambda r: got.append(("b", r.kind)))
    log.emit("x", "one", service="a")
    log.emit("x", "two", service="b")
    log.emit("x", "three", service="c")   # no listener for this key
    log.emit("x", "four")                 # field absent entirely
    assert got == [("a", "one"), ("b", "two")]


def test_trace_log_keyed_listeners_fire_on_emit_in():
    env = Environment()
    log = TraceLog(env)
    got = []
    log.subscribe_keyed("service", "svc", lambda r: got.append(r.kind))
    span = log.span("src", "op")
    log.emit_in(span, "src", "step", service="svc")
    log.emit_in(span, "src", "other", service="nope")
    assert got == ["step"]


def test_trace_log_keyed_unsubscribe_cleans_up():
    env = Environment()
    log = TraceLog(env)
    got = []
    listener = lambda r: got.append(r.kind)
    log.subscribe_keyed("service", "svc", listener)
    log.emit("x", "one", service="svc")
    log.unsubscribe_keyed("service", "svc", listener)
    log.emit("x", "two", service="svc")
    assert got == ["one"]
    # Tables fully collapse so the emit fast path stays a falsy check.
    assert log._keyed == {}
    # Unsubscribing again (or an unknown listener) is a no-op.
    log.unsubscribe_keyed("service", "svc", listener)


def test_trace_log_keyed_and_plain_listeners_coexist():
    env = Environment()
    log = TraceLog(env)
    seen = {"plain": 0, "keyed": 0}
    log.subscribe(lambda r: seen.__setitem__("plain", seen["plain"] + 1))
    log.subscribe_keyed("vm", "vm-1",
                        lambda r: seen.__setitem__("keyed", seen["keyed"] + 1))
    log.emit("x", "a", vm="vm-1")
    log.emit("x", "b", vm="vm-2")
    assert seen == {"plain": 2, "keyed": 1}
