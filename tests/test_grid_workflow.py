"""Tests for the BPEL-like workflow engine and the polymorph workload."""

import pytest

from repro.grid import (
    CondorScheduler,
    Delay,
    ExecutionNodeHandle,
    Flow,
    ForEachCompletion,
    Invoke,
    Job,
    Sequence,
    SubmitJobs,
    WaitForJobs,
    Workflow,
    WorkflowContext,
    PolymorphSearchConfig,
    build_polymorph_workflow,
)
from repro.sim import Environment


def make_ctx(env, nodes=4):
    sched = CondorScheduler(env, match_delay_s=0.0)
    for i in range(nodes):
        sched.register_node(ExecutionNodeHandle(f"n{i}", transfer_mb_per_s=1e9))
    return WorkflowContext(env, sched)


# ---------------------------------------------------------------------------
# Engine activities
# ---------------------------------------------------------------------------

def test_invoke_runs_action_after_delay():
    env = Environment()
    ctx = make_ctx(env)
    seen = []
    wf = Workflow("t", Invoke("svc", duration_s=5,
                              action=lambda c: seen.append(c.env.now) or "ok",
                              result_var="out"))
    wf.start(ctx)
    env.run()
    assert seen == [5.0]
    assert ctx.variables["out"] == "ok"
    assert wf.turnaround == 5.0


def test_invoke_validation():
    with pytest.raises(ValueError):
        Invoke("x", duration_s=-1)
    with pytest.raises(ValueError):
        Delay(-1)


def test_sequence_orders_activities():
    env = Environment()
    ctx = make_ctx(env)
    order = []
    wf = Workflow("t", Sequence(
        Invoke("a", duration_s=3, action=lambda c: order.append(("a", c.env.now))),
        Invoke("b", duration_s=4, action=lambda c: order.append(("b", c.env.now))),
    ))
    wf.start(ctx)
    env.run()
    assert order == [("a", 3.0), ("b", 7.0)]


def test_flow_runs_parallel():
    env = Environment()
    ctx = make_ctx(env)
    wf = Workflow("t", Flow(Delay(10), Delay(25), Delay(5)))
    wf.start(ctx)
    env.run()
    assert wf.turnaround == 25.0


def test_submit_and_wait_for_jobs():
    env = Environment()
    ctx = make_ctx(env, nodes=2)
    wf = Workflow("t", Sequence(
        SubmitJobs("batch", lambda c: [
            Job(duration_s=50, input_mb=0, output_mb=0) for _ in range(4)
        ]),
        WaitForJobs(),
    ))
    wf.start(ctx)
    env.run()
    # 4 jobs on 2 nodes → two waves of 50 s.
    assert wf.turnaround == pytest.approx(100.0)
    assert len(ctx.jobs) == 4


def test_wait_for_missing_variable_is_noop():
    env = Environment()
    ctx = make_ctx(env)
    wf = Workflow("t", WaitForJobs("nothing"))
    wf.start(ctx)
    env.run()
    assert wf.turnaround == 0.0


def test_for_each_completion_fans_out():
    env = Environment()
    ctx = make_ctx(env, nodes=4)
    spawned = []

    def follow_up(job):
        def factory(c):
            batch = [Job(duration_s=10, input_mb=0, output_mb=0)
                     for _ in range(2)]
            spawned.append((job.name, c.env.now))
            return batch
        return Sequence(
            SubmitJobs(f"fanout-{job.name}", factory,
                       result_var=f"batch-{job.job_id}"),
            WaitForJobs(f"batch-{job.job_id}"),
        )

    wf = Workflow("t", Sequence(
        SubmitJobs("seeds", lambda c: [
            Job(duration_s=20, input_mb=0, output_mb=0, name="s0"),
            Job(duration_s=40, input_mb=0, output_mb=0, name="s1"),
        ], result_var="seeds"),
        ForEachCompletion("seeds", follow_up),
    ))
    wf.start(ctx)
    env.run()
    # Fan-outs were triggered at each seed's completion time.
    assert spawned == [("s0", 20.0), ("s1", 40.0)]
    assert len(ctx.jobs) == 6
    assert wf.turnaround == pytest.approx(50.0)


def test_workflow_trace_records():
    env = Environment()
    ctx = make_ctx(env)
    wf = Workflow("traced", Invoke("a", duration_s=1))
    wf.start(ctx)
    env.run()
    kinds = [r.kind for r in ctx.trace.query(source="bpel")]
    assert kinds == ["workflow.start", "invoke.start", "invoke.done",
                     "workflow.done"]


# ---------------------------------------------------------------------------
# Polymorph workload
# ---------------------------------------------------------------------------

def test_polymorph_config_validation():
    with pytest.raises(ValueError):
        PolymorphSearchConfig(seed_durations_s=())
    with pytest.raises(ValueError):
        PolymorphSearchConfig(seed_durations_s=(0,))
    with pytest.raises(ValueError):
        PolymorphSearchConfig(refinement_mean_s=-5)
    with pytest.raises(ValueError):
        PolymorphSearchConfig(refinements_per_seed=-1)


def test_polymorph_total_jobs():
    config = PolymorphSearchConfig(seed_durations_s=(100, 200),
                                   refinements_per_seed=200)
    assert config.total_jobs == 402


def test_polymorph_small_run_structure():
    """A scaled-down search: structure (seeds → staggered batches) holds."""
    env = Environment()
    ctx = make_ctx(env, nodes=4)
    config = PolymorphSearchConfig(
        seed_durations_s=(100.0, 200.0),
        refinements_per_seed=6,
        refinement_mean_s=30.0,
        refinement_cv=0.1,
        setup_s=10, gather_s=10, generate_s=5,
    )
    run = build_polymorph_workflow(config)
    run.workflow.start(ctx)
    env.run()
    assert run.workflow.turnaround is not None
    assert len(ctx.jobs) == config.total_jobs == 14
    # Two refinement batches, generated after each seed completion.
    assert len(run.batches) == 2
    assert all(len(b) == 6 for b in run.batches)
    seeds = [j for j in ctx.jobs if j.tags.get("phase") == "seed"]
    batch_starts = sorted(
        min(j.submitted_at for j in b) for b in run.batches)
    seed_ends = sorted(j.completed_at for j in seeds)
    # Each batch was submitted after its seed completed (plus generate_s).
    assert batch_starts[0] >= seed_ends[0]
    assert batch_starts[1] >= seed_ends[1]


def test_polymorph_deterministic_across_runs():
    def run_once():
        env = Environment()
        ctx = make_ctx(env, nodes=4)
        config = PolymorphSearchConfig(
            seed_durations_s=(50.0,), refinements_per_seed=5,
            refinement_mean_s=20.0, setup_s=0, gather_s=0, generate_s=0)
        run = build_polymorph_workflow(config)
        run.workflow.start(ctx)
        env.run()
        return run.workflow.turnaround

    assert run_once() == run_once()


def test_polymorph_refinement_durations_sampled_around_mean():
    env = Environment()
    ctx = make_ctx(env, nodes=16)
    config = PolymorphSearchConfig(
        seed_durations_s=(10.0,), refinements_per_seed=100,
        refinement_mean_s=200.0, refinement_cv=0.3,
        setup_s=0, gather_s=0, generate_s=0)
    run = build_polymorph_workflow(config)
    run.workflow.start(ctx)
    env.run()
    refine = [j for j in ctx.jobs if j.tags.get("phase") == "refine"]
    mean = sum(j.duration_s for j in refine) / len(refine)
    assert mean == pytest.approx(200.0, rel=0.15)
