"""End-to-end control-plane scenario (the PR's acceptance scenario).

Eight tenants submit 40 one-host services against a 25-host pool with a
4-services-per-tenant quota. The plane must admit what fits, queue the
rest, drain the queue as services undeploy, enforce quotas throughout, and
leave every request in a terminal state with queue depth and wait time
observable on the trace.
"""

from collections import defaultdict

from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
from repro.control import (
    Admitted,
    ControlPlane,
    Queued,
    Rejected,
    RequestState,
    TenantQuota,
)
from repro.core.manifest import ManifestBuilder
from repro.sim import Environment

TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)

POOL_HOSTS = 25
TENANTS = [f"tenant-{i}" for i in range(8)]
SERVICES_PER_TENANT = 5
QUOTA = TenantQuota(max_services=4)


def make_veem(env, n_hosts):
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=4, memory_mb=8192,
                           timings=TIMINGS))
    return veem


def one_host_service(name):
    return (ManifestBuilder(name)
            .component("app", image_mb=256, cpu=4, memory_mb=8192)
            .build())


def test_eight_tenants_forty_services_queue_and_drain():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("site", make_veem(env, POOL_HOSTS))
    for name in TENANTS:
        control.register_tenant(name, quota=QUOTA)

    # --- burst: interleaved rounds of submissions, 40 in total ------------
    outcomes = []
    for round_no in range(SERVICES_PER_TENANT):
        for name in TENANTS:
            outcomes.append(control.submit(
                name, one_host_service(f"{name}-svc{round_no}")))
    assert len(outcomes) == 40

    admitted = [o for o in outcomes if isinstance(o, Admitted)]
    queued = [o for o in outcomes if isinstance(o, Queued)]
    assert not any(isinstance(o, Rejected) for o in outcomes)
    # capacity (25 hosts) and quota (8 × 4 = 32) both bind: 25 in, 15 wait
    assert len(admitted) == POOL_HOSTS
    assert len(queued) == 15
    assert control.queue_depth == 15
    for tenant in TENANTS:
        assert control.tenants[tenant].usage.services <= QUOTA.max_services

    env.run(until=2_000)
    assert all(o.request.state is RequestState.ACTIVE for o in admitted)

    # --- drain: undeploy in waves until every request has had its turn ----
    waves = 0
    while control.queue_depth > 0 or control.active_requests():
        for request in sorted(control.active_requests(),
                              key=lambda r: r.admitted_at or 0.0)[:5]:
            control.release(request)
        env.run(until=env.now + 500)
        for tenant in TENANTS:      # quota holds at every wave boundary
            assert control.tenants[tenant].usage.services \
                <= QUOTA.max_services
        waves += 1
        assert waves < 100, "drain did not converge"

    # --- every request reached a terminal state ---------------------------
    assert all(o.request.state is RequestState.RELEASED for o in outcomes)
    assert control.counters["submitted"] == 40
    assert control.counters["admitted"] == 40
    assert control.counters["released"] == 40
    assert control.counters["rejected"] == 0
    assert control.counters["queued"] == 15

    # --- quotas were enforced *throughout*, not just at the end -----------
    # Replay the trace: concurrent admissions per tenant never pass 4.
    concurrent = defaultdict(int)
    peak = defaultdict(int)
    events = control.trace.query(source="control")
    for record in events:
        tenant = record.details.get("tenant")
        if record.kind == "request.admitted":
            concurrent[tenant] += 1
            peak[tenant] = max(peak[tenant], concurrent[tenant])
        elif record.kind == "request.released":
            concurrent[tenant] -= 1
    assert all(peak[t] <= QUOTA.max_services for t in TENANTS)
    # fairness floor: every tenant got all five services through eventually
    admitted_per_tenant = defaultdict(int)
    for record in events:
        if record.kind == "request.admitted":
            admitted_per_tenant[record.details["tenant"]] += 1
    assert all(admitted_per_tenant[t] == SERVICES_PER_TENANT
               for t in TENANTS)

    # --- queue depth and wait time are visible on the recorder ------------
    depth = control.series["queue.depth"]
    assert depth.maximum() == 15
    assert depth.current == 0
    waits = [o.request.wait_time for o in queued]
    assert all(w is not None and w > 0 for w in waits)
    assert "queue.wait_s" in control.series
    # wait-time detail rides on the admission trace records too
    waited = [r.details["waited"]
              for r in control.trace.query(source="control",
                                           kind="request.admitted")]
    assert sum(1 for w in waited if w > 0) == 15
