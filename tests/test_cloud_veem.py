"""Integration tests for the VEEM: deployment, shutdown, migration."""

import pytest

from repro.cloud import (
    ComponentCap,
    DeploymentDescriptor,
    Host,
    HypervisorTimings,
    ImageRepository,
    LifecycleError,
    Placer,
    PlacementError,
    VEEM,
    VMState,
)
from repro.sim import Environment


TIMINGS = HypervisorTimings(define_s=2, boot_s=45, shutdown_s=10,
                            migrate_suspend_s=5)


def make_veem(env, n_hosts=2, bandwidth=100.0, **veem_kw):
    repo = ImageRepository(bandwidth_mb_per_s=bandwidth)
    repo.add("base", size_mb=1000)  # 10 s transfer at 100 MB/s
    veem = VEEM(env, repository=repo, **veem_kw)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=4, memory_mb=8192,
                           timings=TIMINGS))
    return veem


def make_desc(component="exec", service="svc", networks=(), **kw):
    kw.setdefault("memory_mb", 1024)
    kw.setdefault("cpu", 1)
    return DeploymentDescriptor(
        name=kw.pop("name", component),
        disk_source="http://sm.internal/images/base",
        service_id=service, component_id=component,
        networks=tuple(networks), **kw,
    )


def test_submit_deploys_through_lifecycle():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    assert vm.state is VMState.PENDING
    env.run(until=vm.on_running)
    assert vm.state is VMState.RUNNING
    # 10 s staging + 2 s define + 45 s boot
    assert vm.provisioning_time == pytest.approx(57.0)
    assert vm.host is veem.hosts[0]


def test_provisioning_breakdown_matches_components():
    env = Environment()
    veem = make_veem(env, bandwidth=50.0)  # 20 s transfer
    vm = veem.submit(make_desc())
    env.run(until=vm.on_running)
    assert vm.time_in_state(VMState.STAGING) == pytest.approx(20.0)
    assert vm.time_in_state(VMState.BOOTING) == pytest.approx(47.0)


def test_submit_infeasible_fails_fast():
    env = Environment()
    veem = make_veem(env, n_hosts=1)
    with pytest.raises(PlacementError):
        veem.submit(make_desc(memory_mb=999999))


def test_capacity_reserved_at_submit_not_at_running():
    """Two submissions racing for the last slot: the second must fail at
    submit time, not silently oversubscribe."""
    env = Environment()
    veem = make_veem(env, n_hosts=1)
    veem.submit(make_desc(cpu=4, memory_mb=8192))
    with pytest.raises(PlacementError):
        veem.submit(make_desc())


def test_networks_leased_and_in_customisation():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc(networks=["internal"],
                               customisation={"role": "exec"}))
    env.run(until=vm.on_running)
    assert "internal" in vm.ip_addresses
    props = vm.customisation_disk.properties
    assert props["role"] == "exec"
    assert props["ip.internal"] == vm.ip_addresses["internal"]


def test_shutdown_releases_capacity_and_leases():
    env = Environment()
    veem = make_veem(env, n_hosts=1)
    vm = veem.submit(make_desc(networks=["net"]))
    env.run(until=vm.on_running)
    host = vm.host
    cpu_before = host.cpu_free

    def do_shutdown(env):
        yield veem.shutdown(vm)

    env.process(do_shutdown(env))
    env.run()
    assert vm.state is VMState.STOPPED
    assert host.cpu_free == cpu_before + 1
    assert veem.networks.get("net").allocated == 0


def test_shutdown_takes_hypervisor_time():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    env.run(until=vm.on_running)
    t0 = env.now

    def do_shutdown(env):
        yield veem.shutdown(vm)

    env.process(do_shutdown(env))
    env.run(until=vm.on_stopped)
    assert env.now - t0 == pytest.approx(10.0)


def test_shutdown_non_running_raises():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    with pytest.raises(LifecycleError):
        veem.shutdown(vm)  # still PENDING


def test_migrate_moves_vm():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    env.run(until=vm.on_running)
    source, target = veem.hosts[0], veem.hosts[1]
    assert vm.host is source

    def do_migrate(env):
        yield veem.migrate(vm, target)

    env.process(do_migrate(env))
    env.run()
    assert vm.host is target
    assert vm.state is VMState.RUNNING
    assert source.vms == []
    # Migration cost: 1024 MB memory / 100 MB/s + 5 s suspend ≈ 15.24 s
    rec = veem.trace.last(kind="vm.migrated")
    assert rec is not None and rec.details["to_host"] == "h1"


def test_migrate_to_full_host_rejected():
    env = Environment()
    veem = make_veem(env)
    filler = veem.submit(make_desc(cpu=4, memory_mb=8192))
    vm = veem.submit(make_desc())
    env.run(until=env.all_of([filler.on_running, vm.on_running]))
    with pytest.raises(PlacementError):
        veem.migrate(vm, veem.hosts[0])


def test_migrate_foreign_host_rejected():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    env.run(until=vm.on_running)
    foreign = Host(env, "alien")
    with pytest.raises(PlacementError):
        veem.migrate(vm, foreign)


def test_reconfigure_running_vm():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc(cpu=1, memory_mb=1024))
    env.run(until=vm.on_running)
    veem.reconfigure(vm, cpu=2, memory_mb=2048)
    assert vm.descriptor.cpu == 2
    rec = veem.trace.last(kind="vm.reconfigure")
    assert rec.details["cpu"] == 2


def test_reconfigure_non_running_raises():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    with pytest.raises(LifecycleError):
        veem.reconfigure(vm, cpu=2)


def test_active_and_running_filters():
    env = Environment()
    veem = make_veem(env)
    a = veem.submit(make_desc(component="exec"))
    b = veem.submit(make_desc(component="dbms"))
    assert len(veem.active_vms()) == 2
    assert veem.running_vms() == []
    env.run(until=env.all_of([a.on_running, b.on_running]))
    assert len(veem.running_vms(component_id="exec")) == 1
    assert len(veem.running_vms(service_id="svc")) == 2
    assert veem.running_vms(service_id="other") == []


def test_placement_constraints_enforced_by_veem():
    env = Environment()
    repo = ImageRepository()
    repo.add("base", size_mb=100)
    veem = VEEM(env, repository=repo,
                placer=Placer(constraints=[ComponentCap("exec", 1)]))
    veem.add_host(Host(env, "h0", cpu_cores=8, memory_mb=16384))
    veem.submit(make_desc(component="exec"))
    with pytest.raises(PlacementError):
        veem.submit(make_desc(component="exec"))


def test_trace_records_full_lifecycle():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    env.run(until=vm.on_running)

    def do_shutdown(env):
        yield veem.shutdown(vm)

    env.process(do_shutdown(env))
    env.run()
    kinds = [r.kind for r in veem.trace.query()]
    assert kinds == ["vm.submit", "vm.running", "vm.shutdown.request",
                     "vm.stopped"]


def test_duplicate_host_name_rejected():
    env = Environment()
    veem = make_veem(env)
    with pytest.raises(ValueError):
        veem.add_host(Host(env, "h0"))


def test_image_caching_mode_amortises_staging():
    env = Environment()
    veem = make_veem(env, cache_images=True)
    vm1 = veem.submit(make_desc())
    env.run(until=vm1.on_running)
    vm2 = veem.submit(make_desc())  # lands on h0 again (first fit)
    t0 = env.now
    env.run(until=vm2.on_running)
    # Second deploy on the same host skips the 10 s image transfer.
    assert env.now - t0 == pytest.approx(47.0)


def test_suspend_and_resume_cycle():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    env.run(until=vm.on_running)
    host = vm.host
    cpu_when_running = host.cpu_free

    def cycle(env):
        yield veem.suspend(vm)
        assert vm.state is VMState.SUSPENDED
        # Reservation retained while suspended.
        assert host.cpu_free == cpu_when_running
        yield env.timeout(100)
        yield veem.resume(vm)

    t0 = env.now
    env.process(cycle(env))
    env.run()
    assert vm.state is VMState.RUNNING
    # suspend 5? timings: TIMINGS has no suspend/resume → defaults 8 + 6.
    assert env.now - t0 == pytest.approx(8 + 100 + 6)
    kinds = [r.kind for r in veem.trace.query()
             if "suspend" in r.kind or "resume" in r.kind]
    assert kinds == ["vm.suspend.request", "vm.suspended",
                     "vm.resume.request", "vm.resumed"]


def test_suspend_wrong_state_rejected():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    with pytest.raises(LifecycleError):
        veem.suspend(vm)  # still PENDING
    env.run(until=vm.on_running)
    with pytest.raises(LifecycleError):
        veem.resume(vm)  # not suspended


def test_suspended_vm_can_shut_down():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    env.run(until=vm.on_running)

    def run(env):
        yield veem.suspend(vm)
        vm.transition(VMState.SHUTTING_DOWN)
        yield env.timeout(1)
        vm.host.release(vm)
        vm.transition(VMState.STOPPED)

    env.process(run(env))
    env.run()
    assert vm.state is VMState.STOPPED


def test_resume_does_not_refire_on_running():
    env = Environment()
    veem = make_veem(env)
    vm = veem.submit(make_desc())
    env.run(until=vm.on_running)
    first_running_at = vm.running_at

    def cycle(env):
        yield veem.suspend(vm)
        yield veem.resume(vm)

    env.process(cycle(env))
    env.run()
    # on_running is a one-shot event; resuming must not try to re-fire it.
    assert vm.running_at == first_running_at
    assert vm.state is VMState.RUNNING
