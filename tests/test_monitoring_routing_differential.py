"""Differential tests: indexed broker routing vs the reference linear scan.

The PubSubBroker's indexed mode (exact-topic dict + compiled globs + route
cache) must be observationally identical to the seed's O(subscriptions)
linear scan, which survives as ``PubSubBroker(env, reference=True)``. These
tests drive both with identical randomized subscribe/unsubscribe/publish
traffic and assert identical callback sequences and byte accounting.
"""

import random

import pytest

from repro.monitoring import Measurement, MulticastChannel, PubSubBroker
from repro.sim import Environment

QNAMES = [
    "uk.ucl.condor.schedd.queuesize",
    "uk.ucl.condor.exec.load",
    "uk.ucl.web.sessions",
    "com.sap.dispatcher.sessions",
    "com.sap.dispatcher.latency",
    "org.example.probe.raw",
]

GLOBS = [
    "uk.ucl.*",
    "uk.ucl.condor.*",
    "*.sessions",
    "com.sap.dispatcher.?atency",
    "uk.ucl.condor.[se]*",
    "*",
]

SERVICES = ["svc-1", "svc-2", "svc-3"]


def _recorder(log, tag):
    def callback(m):
        log.append((tag, m.service_id, m.qualified_name, m.seqno))
    return callback


def _random_filters(rng):
    service_id = rng.choice(SERVICES + [None, None])
    kind = rng.random()
    if kind < 0.4:
        qualified_name = rng.choice(QNAMES)
    elif kind < 0.7:
        qualified_name = rng.choice(GLOBS)
    else:
        qualified_name = None
    return service_id, qualified_name


def _run_traffic(seed, indexed, reference, env_i, env_r, *,
                 latency=False, n_ops=400):
    rng = random.Random(seed)
    log_i, log_r = [], []
    live = []  # (tag, sub_indexed, sub_reference)
    tag = 0
    for k in range(n_ops):
        op = rng.random()
        if op < 0.2:
            service_id, qualified_name = _random_filters(rng)
            live.append((
                tag,
                indexed.subscribe(_recorder(log_i, tag),
                                  service_id=service_id,
                                  qualified_name=qualified_name),
                reference.subscribe(_recorder(log_r, tag),
                                    service_id=service_id,
                                    qualified_name=qualified_name),
            ))
            tag += 1
        elif op < 0.3 and live:
            _, sub_i, sub_r = live.pop(rng.randrange(len(live)))
            # exercise both teardown spellings
            if rng.random() < 0.5:
                indexed.unsubscribe(sub_i)
                reference.unsubscribe(sub_r)
            else:
                sub_i.cancel()
                sub_r.cancel()
        else:
            m = Measurement(
                qualified_name=rng.choice(QNAMES),
                service_id=rng.choice(SERVICES),
                probe_id=f"probe-{rng.randrange(8) + 1}",
                timestamp=float(k),
                values=(k, rng.random(), "state"),
                seqno=k,
            )
            indexed.publish(m)
            reference.publish(m)
            if latency and rng.random() < 0.2:
                until = env_i.now + rng.choice([0.5, 1.0, 3.0])
                env_i.run(until=until)
                env_r.run(until=until)
    if latency:
        env_i.run()
        env_r.run()
    return log_i, log_r


@pytest.mark.parametrize("seed", range(8))
def test_indexed_routing_matches_reference(seed):
    env_i, env_r = Environment(), Environment()
    indexed = PubSubBroker(env_i)
    reference = PubSubBroker(env_r, reference=True)
    log_i, log_r = _run_traffic(seed, indexed, reference, env_i, env_r)
    assert log_i == log_r
    assert indexed.bytes_published == reference.bytes_published
    assert indexed.bytes_delivered == reference.bytes_delivered
    assert indexed.packets_published == reference.packets_published
    # lazy decode never decodes more than the reference's always-decode
    assert indexed.packets_decoded <= reference.packets_decoded


@pytest.mark.parametrize("seed", range(4))
def test_indexed_routing_matches_reference_with_latency(seed):
    """Same differential under a latency edge, exercising the coalesced
    drain loop: delivery order and accounting must still be identical."""
    env_i, env_r = Environment(), Environment()
    indexed = PubSubBroker(env_i, latency_s=1.0)
    reference = PubSubBroker(env_r, latency_s=1.0, reference=True)
    log_i, log_r = _run_traffic(seed, indexed, reference, env_i, env_r,
                                latency=True, n_ops=200)
    assert log_i == log_r
    assert indexed.bytes_delivered == reference.bytes_delivered
    assert indexed.bytes_published == reference.bytes_published


@pytest.mark.parametrize("seed", range(4))
def test_multicast_matches_reference_broker_callbacks(seed):
    """A MulticastChannel's *callback* sequence equals the broker's (same
    filters, same traffic) even though its byte accounting differs — the
    lazy-decode refactor must not change who sees what."""
    env_m, env_r = Environment(), Environment()
    multicast = MulticastChannel(env_m)
    reference = PubSubBroker(env_r, reference=True)
    log_m, log_r = _run_traffic(seed, multicast, reference, env_m, env_r,
                                n_ops=250)
    assert log_m == log_r
    # multicast pushes every packet to every member at the network level
    assert multicast.bytes_delivered >= reference.bytes_delivered


def test_route_cache_counters_account_hits_and_misses():
    env = Environment()
    broker = PubSubBroker(env)
    broker.subscribe(lambda m: None, service_id="svc-1",
                     qualified_name=QNAMES[0])
    m = Measurement(QNAMES[0], "svc-1", "p-1", 0.0, (1,))
    broker.publish(m)
    assert (broker.route_cache_misses, broker.route_cache_hits) == (1, 0)
    broker.publish(m)
    assert (broker.route_cache_misses, broker.route_cache_hits) == (1, 1)
    # subscription churn invalidates the cache
    sub = broker.subscribe(lambda m: None, qualified_name="uk.ucl.*")
    broker.publish(m)
    assert (broker.route_cache_misses, broker.route_cache_hits) == (2, 1)
    broker.unsubscribe(sub)
    broker.publish(m)
    assert (broker.route_cache_misses, broker.route_cache_hits) == (3, 1)
