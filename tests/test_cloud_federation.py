"""Tests for federated multi-site deployment and cross-site migration."""

import pytest

from repro.cloud import (
    DeploymentDescriptor,
    FederatedCloud,
    Host,
    ImageRepository,
    PlacementError,
    Site,
    SiteConstraint,
    VEEM,
    VMState,
)
from repro.sim import Environment


def make_site(env, name, n_hosts=2, trusted=True):
    repo = ImageRepository(bandwidth_mb_per_s=100)
    repo.add("base", size_mb=100, href="http://sm/images/base")
    veem = VEEM(env, name=f"veem-{name}", repository=repo)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"{name}-h{i}", cpu_cores=4, memory_mb=8192))
    return Site(name=name, veem=veem, attributes={"trusted": trusted})


def make_desc(component="web", service="svc", **kw):
    kw.setdefault("memory_mb", 1024)
    kw.setdefault("cpu", 1)
    return DeploymentDescriptor(
        name=component, disk_source="http://sm/images/base",
        service_id=service, component_id=component, **kw,
    )


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cloud(env):
    cloud = FederatedCloud(env)
    cloud.add_site(make_site(env, "london"))
    cloud.add_site(make_site(env, "madrid"))
    cloud.add_site(make_site(env, "offshore", trusted=False))
    return cloud


def test_submit_routes_to_first_site(cloud, env):
    vm = cloud.submit(make_desc())
    assert cloud.site_of(vm).name == "london"
    env.run(until=vm.on_running)
    assert vm.state is VMState.RUNNING


def test_avoid_constraint_excludes_site(cloud, env):
    cloud.add_constraint(SiteConstraint(component="dbms",
                                        avoid=frozenset({"london"})))
    vm = cloud.submit(make_desc("dbms"))
    assert cloud.site_of(vm).name == "madrid"
    # Unconstrained components still go to london.
    other = cloud.submit(make_desc("web"))
    assert cloud.site_of(other).name == "london"


def test_favour_constraint_prefers_site(cloud):
    cloud.add_constraint(SiteConstraint(component="web",
                                        favour=frozenset({"madrid"})))
    vm = cloud.submit(make_desc("web"))
    assert cloud.site_of(vm).name == "madrid"


def test_require_trusted_excludes_untrusted(cloud):
    cloud.add_constraint(SiteConstraint(require_trusted=True))
    sites = [s.name for s in cloud.eligible_sites(make_desc())]
    assert "offshore" not in sites


def test_global_constraint_applies_to_all_components(cloud):
    cloud.add_constraint(SiteConstraint(avoid=frozenset({"london", "madrid"})))
    vm = cloud.submit(make_desc("anything"))
    assert cloud.site_of(vm).name == "offshore"


def test_spillover_when_site_full(cloud, env):
    # Fill london entirely, next submission spills to madrid.
    for _ in range(8):
        cloud.submit(make_desc(cpu=1, memory_mb=2048))
    vm = cloud.submit(make_desc())
    assert cloud.site_of(vm).name == "madrid"


def test_no_site_available_raises(env):
    cloud = FederatedCloud(env)
    cloud.add_site(make_site(env, "only", n_hosts=1))
    cloud.add_constraint(SiteConstraint(avoid=frozenset({"only"})))
    with pytest.raises(PlacementError, match="cannot place"):
        cloud.submit(make_desc())


def test_cross_site_migration_moves_vm(cloud, env):
    vm = cloud.submit(make_desc())
    env.run(until=vm.on_running)
    madrid = cloud.sites[1]

    result = {}

    def migrate(env):
        new_vm = yield cloud.migrate_cross_site(vm, madrid)
        result["vm"] = new_vm

    env.process(migrate(env))
    env.run()
    new_vm = result["vm"]
    assert vm.state is VMState.STOPPED
    assert new_vm.state is VMState.RUNNING
    assert cloud.site_of(new_vm).name == "madrid"
    start = cloud.trace.first(kind="vm.xmigrate.start")
    done = cloud.trace.last(kind="vm.xmigrate.done")
    assert start.details["from_site"] == "london"
    assert done.details["site"] == "madrid"
    # WAN transfer of image+memory must take non-trivial time.
    assert done.time > start.time


def test_cross_site_migration_respects_constraints(cloud, env):
    vm = cloud.submit(make_desc("dbms"))
    env.run(until=vm.on_running)
    cloud.add_constraint(SiteConstraint(component="dbms",
                                        avoid=frozenset({"madrid"})))
    with pytest.raises(PlacementError):
        cloud.migrate_cross_site(vm, cloud.sites[1])


def test_cross_site_migration_same_site_rejected(cloud, env):
    vm = cloud.submit(make_desc())
    env.run(until=vm.on_running)
    with pytest.raises(PlacementError):
        cloud.migrate_cross_site(vm, cloud.sites[0])


def test_migrate_non_running_rejected(cloud):
    vm = cloud.submit(make_desc())
    with pytest.raises(PlacementError):
        cloud.migrate_cross_site(vm, cloud.sites[1])


def test_unknown_vm_not_managed(cloud, env):
    outside = make_site(env, "other")
    vm = outside.veem.submit(make_desc())
    with pytest.raises(PlacementError):
        cloud.site_of(vm)


def test_shutdown_via_federation(cloud, env):
    vm = cloud.submit(make_desc())
    env.run(until=vm.on_running)

    def do(env):
        yield cloud.shutdown(vm)

    env.process(do(env))
    env.run()
    assert vm.state is VMState.STOPPED


def test_duplicate_site_rejected(cloud, env):
    with pytest.raises(ValueError):
        cloud.add_site(make_site(env, "london"))


def test_wan_bandwidth_validation(env):
    with pytest.raises(ValueError):
        FederatedCloud(env, wan_bandwidth_mb_per_s=0)
