"""Property-based tests for the solver (Hypothesis).

Two contracts:

1. **Differential completeness** — on any instance the greedy
   :class:`~repro.cloud.placement.Placer` manages to place in full, the
   solver must also find a solution (the solver strictly dominates the
   fast path: it only ever runs *after* greedy failed, so it may never be
   the reason an admissible service is refused). And every
   :class:`~repro.solver.Solution` must pass the model's independent
   ``validate_assignment`` oracle: no oversubscription, no constraint
   violations.

2. **What-if purity** — ``ControlPlane.what_if`` never mutates any site:
   admission ledgers, headroom and host free-capacity fingerprints are
   identical before and after arbitrary probes.

Generation notes: anti-affinity pairs are installed symmetrically and
affinity edges only point at alphabetically-earlier components (placed
first by the greedy run) so the final greedy state is a model witness —
the live one-directional / placement-order semantics would otherwise let
greedy "succeed" into states the joint model rejects, which is an
artefact of ordering, not a solver defect.
"""

import os

import pytest

hypothesis = pytest.importorskip("hypothesis")

#: Tier-1 default; CI's solver-fuzz step raises it for a harder sweep.
MAX_EXAMPLES = int(os.environ.get("SOLVER_FUZZ_EXAMPLES", "60"))

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cloud import (  # noqa: E402
    AntiAffinity,
    Affinity,
    CapacityError,
    ComponentCap,
    Host,
    Placer,
    PlacementError,
    VirtualMachine,
)
from repro.cloud.vm import DeploymentDescriptor  # noqa: E402
from repro.control import ControlPlane  # noqa: E402
from repro.core.manifest import ManifestBuilder  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.solver import (  # noqa: E402
    SearchBudget,
    Solution,
    Unsolved,
    encode_items,
    snapshot_hosts,
    solve,
)
from repro.solver.encode import ItemSpec, compile_constraints  # noqa: E402

COMPONENTS = ("a", "b", "c")


@st.composite
def instances(draw):
    """A random placement instance: hosts, items, live constraints."""
    hosts = draw(st.lists(
        st.tuples(st.sampled_from((2.0, 4.0, 8.0)),
                  st.sampled_from((2048.0, 4096.0, 8192.0))),
        min_size=1, max_size=4))
    items = draw(st.lists(
        st.tuples(st.sampled_from(COMPONENTS),
                  st.sampled_from((1.0, 2.0, 3.0)),
                  st.sampled_from((512.0, 1024.0, 2048.0))),
        min_size=1, max_size=8))
    # Anchors must precede dependents in greedy placement order; sorting
    # by component name makes every edge (later -> earlier) a DAG edge
    # whose anchor is fully placed first.
    items.sort(key=lambda t: t[0])
    constraints = []
    if draw(st.booleans()):
        x, y = draw(st.sampled_from(
            [("a", "b"), ("a", "c"), ("b", "c")]))
        constraints += [AntiAffinity(x, y), AntiAffinity(y, x)]
    if draw(st.booleans()):
        dep, anchor = draw(st.sampled_from(
            [("b", "a"), ("c", "a"), ("c", "b")]))
        constraints.append(Affinity(dep, anchor))
    if draw(st.booleans()):
        constraints.append(ComponentCap(draw(st.sampled_from(COMPONENTS)),
                                        draw(st.integers(1, 2))))
    return hosts, items, constraints


def run_greedy(env, host_shapes, item_rows, constraints):
    """The live fast path: place items one at a time, commit each pick."""
    hosts = [Host(env, f"h{i}", cpu_cores=cpu, memory_mb=mem)
             for i, (cpu, mem) in enumerate(host_shapes)]
    placer = Placer(constraints=constraints)
    for k, (comp, cpu, mem) in enumerate(item_rows):
        d = DeploymentDescriptor(
            name=f"{comp}-{k}", cpu=cpu, memory_mb=mem,
            disk_source="img", service_id="svc", component_id=comp)
        try:
            target = placer.select(hosts, d)
        except (CapacityError, PlacementError):
            return False
        target.reserve(VirtualMachine(env, d.name, d))
    return True


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(instances())
def test_solver_dominates_greedy_and_never_violates(instance):
    host_shapes, item_rows, constraints = instance
    env = Environment()
    # Model the pristine pool (snapshot before greedy mutates anything).
    views = snapshot_hosts(
        [Host(env, f"h{i}", cpu_cores=cpu, memory_mb=mem)
         for i, (cpu, mem) in enumerate(host_shapes)])
    model = encode_items(
        [ItemSpec(name=f"{comp}-{k}", component=comp, service_id="svc",
                  cpu=cpu, memory_mb=mem)
         for k, (comp, cpu, mem) in enumerate(item_rows)],
        views, compile_constraints(constraints))
    out = solve(model, SearchBudget(max_nodes=50_000))

    if isinstance(out, Solution):
        assert model.validate_assignment(out.assignment) == [], \
            model.validate_assignment(out.assignment)

    greedy_ok = run_greedy(env, host_shapes, item_rows, constraints)
    if greedy_ok and not (isinstance(out, Unsolved) and out.exhausted):
        assert isinstance(out, Solution), (
            f"greedy placed all {len(item_rows)} items but the solver "
            f"said {out.explanation.render()}")


@st.composite
def manifests(draw):
    n = draw(st.integers(1, 3))
    b = ManifestBuilder(f"svc-{n}")
    names = []
    for k in range(n):
        name = f"comp{k}"
        names.append(name)
        count = draw(st.integers(1, 2))
        b.component(name, image_mb=64,
                    cpu=draw(st.sampled_from((1, 2, 4))),
                    memory_mb=draw(st.sampled_from((512, 1024, 4096))),
                    initial=count, minimum=count, maximum=count)
    if len(names) >= 2 and draw(st.booleans()):
        b.colocate(names[0], names[1])
    return b.build()


@settings(max_examples=max(10, MAX_EXAMPLES // 3), deadline=None)
@given(st.lists(manifests(), min_size=1, max_size=3))
def test_what_if_is_pure(probe_manifests):
    env = Environment()
    control = ControlPlane(env)
    control.add_site("near", _veem(env, "near", [(4.0, 8192.0)] * 2))
    control.add_site("far", _veem(env, "far", [(8.0, 16384.0)]))
    control.register_tenant("acme")
    # Occupy some capacity so probes run against a non-trivial ledger.
    seed = ManifestBuilder("seed")
    seed.component("app", image_mb=64, cpu=2, memory_mb=2048)
    control.submit("acme", seed.build())
    env.run(until=300)

    before = _fingerprint(control)
    for manifest in probe_manifests:
        control.what_if(manifest, tenant="acme")
        control.what_if(manifest, exact=False)
    assert _fingerprint(control) == before


def _veem(env, name, shapes):
    from repro.cloud import VEEM, ImageRepository
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    repo.add("img", 64, href="img")
    veem = VEEM(env, name=name, repository=repo)
    for i, (cpu, mem) in enumerate(shapes):
        veem.add_host(Host(env, f"{name}-h{i}", cpu_cores=cpu,
                           memory_mb=mem))
    return veem


def _fingerprint(control):
    return [
        (s.name, s.headroom,
         s.admission.committed_plan.hosts_for_ceiling,
         len(s.admission.admitted),
         tuple((h.cpu_free, h.memory_free) for h in s.site.veem.hosts))
        for s in control.sites
    ]
