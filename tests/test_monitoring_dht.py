"""Tests for the consistent-hashing DHT and the information model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring import DHTError, DHTRing


@pytest.fixture
def ring():
    ring = DHTRing(vnodes=16)
    for i in range(4):
        ring.join(f"node-{i}")
    return ring


def test_put_get_delete(ring):
    ring.put("/probe/p1/name", "queuesize")
    assert ring.get("/probe/p1/name") == "queuesize"
    assert "/probe/p1/name" in ring
    assert ring.delete("/probe/p1/name")
    assert not ring.delete("/probe/p1/name")
    assert ring.get("/probe/p1/name", "default") == "default"


def test_same_key_routes_to_same_node(ring):
    owner1 = ring.owner_of("/probe/p1/name")
    owner2 = ring.owner_of("/probe/p1/name")
    assert owner1 is owner2


def test_keys_distributed_across_nodes(ring):
    for i in range(400):
        ring.put(f"/schema/probe-{i}/size", i)
    dist = ring.load_distribution()
    assert len(ring) == 400
    # All 4 nodes should own a share; with 16 vnodes the imbalance is modest.
    assert all(count > 0 for count in dist.values())
    assert ring.imbalance() < 3.0


def test_join_hands_over_keys(ring):
    for i in range(200):
        ring.put(f"/k/{i}", i)
    ring.join("node-new")
    # Every key still readable, and the new node owns some of them.
    assert all(ring.get(f"/k/{i}") == i for i in range(200))
    assert len(ring.node("node-new").store) > 0
    assert len(ring) == 200


def test_leave_rehomes_keys(ring):
    for i in range(200):
        ring.put(f"/k/{i}", i)
    victim_keys = len(ring.node("node-0").store)
    assert victim_keys > 0
    ring.leave("node-0")
    assert all(ring.get(f"/k/{i}") == i for i in range(200))
    assert len(ring) == 200
    with pytest.raises(DHTError):
        ring.node("node-0")


def test_duplicate_join_rejected(ring):
    with pytest.raises(DHTError):
        ring.join("node-0")


def test_leave_unknown_rejected(ring):
    with pytest.raises(DHTError):
        ring.leave("ghost")


def test_empty_ring_rejects_routing():
    ring = DHTRing()
    with pytest.raises(DHTError):
        ring.owner_of("key")


def test_last_node_with_keys_cannot_leave():
    ring = DHTRing()
    ring.join("only")
    ring.put("/k", 1)
    with pytest.raises(DHTError):
        ring.leave("only")


def test_vnodes_validation():
    with pytest.raises(DHTError):
        DHTRing(vnodes=0)


def test_keys_with_prefix(ring):
    ring.put("/schema/p1/0/name", "a")
    ring.put("/schema/p1/1/name", "b")
    ring.put("/schema/p2/0/name", "c")
    assert ring.keys_with_prefix("/schema/p1/") == [
        "/schema/p1/0/name", "/schema/p1/1/name",
    ]


def test_imbalance_empty_ring_is_balanced(ring):
    assert ring.imbalance() == 1.0


@given(keys=st.lists(st.text(min_size=1, max_size=30), min_size=1,
                     max_size=60, unique=True),
       joins=st.integers(min_value=0, max_value=3),
       leaves=st.integers(min_value=0, max_value=2))
@settings(max_examples=60)
def test_membership_churn_never_loses_keys(keys, joins, leaves):
    """Property: any sequence of joins/leaves preserves every stored key."""
    ring = DHTRing(vnodes=8)
    for i in range(4):
        ring.join(f"base-{i}")
    for i, key in enumerate(keys):
        ring.put(key, i)
    for j in range(joins):
        ring.join(f"extra-{j}")
    for l in range(leaves):
        ring.leave(f"base-{l}")
    for i, key in enumerate(keys):
        assert ring.get(key) == i
    assert len(ring) == len(keys)
