"""Tests for adaptive monitoring-rate control (§5.2 'Adaptability')."""

import pytest

from repro.monitoring import (
    HIGH,
    LOW,
    AdaptiveRateController,
    AttributeType,
    DataSource,
    MulticastChannel,
    Probe,
    ProbeAttribute,
)
from repro.sim import Environment


def make_probe(name, qname, rate):
    return Probe(
        name=name, qualified_name=qname,
        attributes=[ProbeAttribute("v", AttributeType.INTEGER)],
        collector=lambda: (1,), data_rate_s=rate,
    )


def setup(env, budget=50.0, **controller_kw):
    net = MulticastChannel(env)
    ds = DataSource(env, "ds", "svc", net)
    controller = AdaptiveRateController(
        env, net, budget_bytes_per_s=budget, check_period_s=60,
        **controller_kw)
    return net, ds, controller


def test_validation():
    env = Environment()
    net = MulticastChannel(env)
    with pytest.raises(ValueError):
        AdaptiveRateController(env, net, budget_bytes_per_s=0)
    with pytest.raises(ValueError):
        AdaptiveRateController(env, net, check_period_s=0)
    with pytest.raises(ValueError):
        AdaptiveRateController(env, net, throttle_factor=1.0)
    with pytest.raises(ValueError):
        AdaptiveRateController(env, net, restore_fraction=1.5)


def test_manage_unknown_probe_rejected():
    env = Environment()
    net, ds, controller = setup(env)
    with pytest.raises(KeyError):
        controller.manage(ds, "ghost")


def test_over_budget_probe_is_throttled():
    env = Environment()
    net, ds, controller = setup(env, budget=10.0)  # tiny budget
    ds.add_probe(make_probe("chatty", "uk.ucl.a.b", rate=1.0))
    controller.manage_all(ds)
    controller.start()
    env.run(until=121)
    assert controller.throttle_events >= 1
    assert "chatty" in controller.throttled_probes
    # The probe now runs at the stretched period.
    assert ds.probes["chatty"].data_rate_s == pytest.approx(4.0)
    rec = controller.trace.last(kind="probe.throttled")
    assert rec.details["probe"] == "chatty"


def test_low_priority_throttled_before_high():
    env = Environment()
    net, ds, controller = setup(env, budget=10.0)
    ds.add_probe(make_probe("critical", "uk.ucl.crit.kpi", rate=1.0))
    ds.add_probe(make_probe("debugging", "uk.ucl.debug.kpi", rate=1.0))
    controller.manage(ds, "critical", priority=HIGH)
    controller.manage(ds, "debugging", priority=LOW)
    controller.start()
    env.run(until=61)
    assert controller.throttled_probes == ["debugging"]
    assert ds.probes["critical"].data_rate_s == 1.0


def test_restore_when_traffic_subsides():
    env = Environment()
    net, ds, controller = setup(env, budget=10.0)
    probe = ds.add_probe(make_probe("chatty", "uk.ucl.a.b", rate=1.0))
    controller.manage_all(ds)
    controller.start()
    env.run(until=61)
    assert controller.throttled_probes == ["chatty"]
    # Turn the probe off entirely: traffic collapses → restore.
    probe.turn_off()
    env.run(until=241)
    assert controller.throttled_probes == []
    assert ds.probes["chatty"].data_rate_s == 1.0
    assert controller.restore_events >= 1


def test_within_budget_probe_untouched():
    env = Environment()
    net, ds, controller = setup(env, budget=1e9)
    ds.add_probe(make_probe("calm", "uk.ucl.a.b", rate=30.0))
    controller.manage_all(ds)
    controller.start()
    env.run(until=301)
    assert controller.throttle_events == 0
    assert ds.probes["calm"].data_rate_s == 30.0


def test_hysteresis_prevents_flapping():
    """Traffic hovering between restore and budget thresholds must neither
    throttle nor restore."""
    env = Environment()
    net, ds, controller = setup(env, budget=1000.0, restore_fraction=0.01)
    ds.add_probe(make_probe("steady", "uk.ucl.a.b", rate=1.0))
    controller.manage_all(ds)
    controller.start()
    env.run(until=301)
    # ~40-50 B/s: below budget, above 1% of budget → no action ever.
    assert controller.throttle_events == 0
    assert controller.restore_events == 0


def test_stop_halts_control():
    env = Environment()
    net, ds, controller = setup(env, budget=10.0)
    ds.add_probe(make_probe("chatty", "uk.ucl.a.b", rate=1.0))
    controller.manage_all(ds)
    controller.start()
    controller.stop()
    env.run(until=300)
    assert controller.throttle_events == 0
