"""Tests for the observability layer: spans, metrics, exporters, auditor.

Covers the span lifecycle semantics (nesting, out-of-order close rejection,
orphan detection), the flat-``emit()`` backward-compatibility guarantee, the
indexed-vs-linear TraceLog query equivalence, the unified metrics registry,
the exporters, and the end-to-end causal chain from a KPI publication down
to the VEE it caused — including the §4.2.3 time-constraint audit.
"""

import json
import random

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricError,
    MetricsRegistry,
    TimeConstraintAuditor,
    chrome_trace,
    export_jsonl,
    prometheus_text,
    render_span_tree,
)
from repro.sim import Environment, SpanError, TimeSeries, TraceLog
from repro.sim.tracing import TraceSubscription


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    c = reg.counter("layer.comp.events")
    c.inc()
    c.inc(2)
    assert c.value == 3
    with pytest.raises(MetricError):
        c.inc(-1)

    g = reg.gauge("layer.comp.depth")
    g.set(5)
    g.inc()
    g.dec(3)
    assert g.value == 3

    h = reg.histogram("layer.comp.latency_s")
    for v in (3.0, 1.0, 2.0, 4.0, 5.0):
        h.observe(v)
    assert h.count == 5
    assert h.percentile(0.5) == 3.0
    assert h.percentile(1.0) == 5.0
    summary = h.summary()
    assert summary["min"] == 1.0 and summary["max"] == 5.0
    assert summary["p99"] == 5.0
    with pytest.raises(MetricError):
        h.observe(float("nan"))


def test_histogram_percentile_edge_cases():
    h = Histogram("layer.comp.latency_s")
    # empty: quantiles are None, summary is the zero shape
    assert h.percentile(0.0) is None and h.percentile(1.0) is None
    assert h.mean is None
    assert h.summary() == {"count": 0, "sum": 0.0, "min": None, "max": None,
                           "p50": None, "p95": None, "p99": None}
    with pytest.raises(MetricError):
        h.percentile(1.5)
    with pytest.raises(MetricError):
        h.percentile(-0.1)
    # single sample: every quantile is that sample
    h.observe(7.0)
    assert h.percentile(0.0) == 7.0
    assert h.percentile(0.5) == 7.0
    assert h.percentile(1.0) == 7.0
    assert h.summary()["min"] == h.summary()["max"] == 7.0
    # q=0 clamps to the first rank, q=1 to the last
    h.observe(1.0)
    assert h.percentile(0.0) == 1.0
    assert h.percentile(1.0) == 7.0


def test_histogram_quantiles_exact_after_unsorted_merge():
    """A merged tail arrives in the remote arrival order; quantile reads
    must re-sort lazily instead of trusting a stale sorted cache."""
    h = Histogram("layer.comp.latency_s")
    h.observe(5.0)
    assert h.percentile(0.5) == 5.0      # builds the sorted cache
    h.merge((1.0, 9.0, 3.0))             # unsorted tail invalidates it
    assert h._values == [5.0, 1.0, 9.0, 3.0]
    assert h.percentile(0.5) == 3.0
    assert h.percentile(1.0) == 9.0
    assert h.summary()["min"] == 1.0 and h.summary()["max"] == 9.0
    assert h.sum == 18.0
    h.merge(())                          # empty merge: no-op
    assert h.count == 4


def test_metric_name_validation():
    reg = MetricsRegistry()
    for bad in ("flat", "two.segments", "Upper.case.name", "a.b.c-d"):
        with pytest.raises(MetricError):
            reg.counter(bad)
    assert isinstance(reg.counter("a.b.c"), Counter)


def test_registry_get_or_create_shares_and_checks_kind():
    reg = MetricsRegistry()
    a = reg.counter("x.y.z", service="s1")
    b = reg.counter("x.y.z", service="s1")
    other = reg.counter("x.y.z", service="s2")
    assert a is b and a is not other
    with pytest.raises(MetricError):
        reg.gauge("x.y.z", service="s1")


def test_registry_views_replace_but_never_shadow_owned():
    reg = MetricsRegistry()
    reg.register_view("a.b.view", lambda: 1)
    reg.register_view("a.b.view", lambda: 2)   # replace is fine
    assert reg.value("a.b.view") == 2
    reg.counter("a.b.owned").inc(5)
    with pytest.raises(MetricError):
        reg.register_view("a.b.owned", lambda: 0)
    assert reg.value("a.b.owned") == 5


def test_registry_collect_and_as_dict():
    reg = MetricsRegistry()
    reg.counter("b.b.n", site="s").inc(2)
    reg.histogram("a.a.h").observe(1.5)
    rows = list(reg.collect())
    assert [r[0] for r in rows] == ["a.a.h", "b.b.n"]   # name-sorted
    assert rows[0][2] == "histogram" and rows[0][3]["count"] == 1
    flat = reg.as_dict()
    assert flat["b.b.n{site=s}"] == 2.0


def test_environment_metrics_is_lazy_and_cached():
    env = Environment()
    assert env._metrics is None          # no registry until first touch
    reg = env.metrics
    assert env.metrics is reg


def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.counter("control.plane.admitted", plane="p1").inc(3)
    reg.histogram("cloud.veem.provisioning_s").observe(2.0)
    text = prometheus_text(reg)
    assert "# TYPE control_plane_admitted counter" in text
    assert 'control_plane_admitted{plane="p1"} 3' in text
    assert "# TYPE cloud_veem_provisioning_s summary" in text
    assert "cloud_veem_provisioning_s_count 1" in text
    assert 'cloud_veem_provisioning_s{quantile="0.5"} 2' in text


def test_prometheus_label_values_are_escaped():
    reg = MetricsRegistry()
    reg.counter("a.b.c", path='C:\\tmp', note='say "hi"\nthere').inc()
    text = prometheus_text(reg)
    assert r'path="C:\\tmp"' in text
    assert r'note="say \"hi\"\nthere"' in text
    assert "\n\n" not in text            # no raw newline inside a sample


# ---------------------------------------------------------------------------
# Span semantics
# ---------------------------------------------------------------------------

def test_span_scope_nesting_and_record_attribution():
    env = Environment()
    log = TraceLog(env)
    with log.span_scope("outer", "a") as outer:
        rec_outer = log.emit("outer", "note")
        with log.span_scope("inner", "b") as inner:
            rec_inner = log.emit("inner", "note")
    assert inner.parent_id == outer.span_id
    assert rec_outer.span_id == outer.span_id
    assert rec_inner.span_id == inner.span_id
    assert outer.closed and inner.closed
    assert log.children(outer) == [inner]
    assert log.ancestors(inner) == [outer]
    assert log.is_ancestor(outer, inner)
    assert not log.is_ancestor(inner, outer)
    assert log.span_records(inner) == [rec_inner]


def test_explicit_parent_crosses_process_boundaries():
    env = Environment()
    log = TraceLog(env)
    root = log.span("control", "request")
    child = log.span("veem", "vm.deploy", parent=root)
    grandchild = log.span("host", "boot", parent=child.span_id)
    assert log.is_ancestor(root, grandchild)
    assert [s.span_id for s in log.ancestors(grandchild)] == \
        [child.span_id, root.span_id]


def test_double_close_rejected():
    env = Environment()
    log = TraceLog(env)
    sp = log.span("s", "k")
    log.close_span(sp)
    with pytest.raises(SpanError):
        log.close_span(sp)


def test_out_of_order_close_rejected():
    env = Environment()
    log = TraceLog(env)
    with log.span_scope("outer", "a") as outer:
        with log.span_scope("inner", "b"):
            with pytest.raises(SpanError):
                log.close_span(outer)   # outer still encloses inner
    assert outer.closed     # scope exit still closed it normally


def test_span_scope_error_status():
    env = Environment()
    log = TraceLog(env)
    with pytest.raises(RuntimeError):
        with log.span_scope("s", "k") as sp:
            raise RuntimeError("boom")
    assert sp.closed and sp.status == "error"
    assert log.current_span is None     # scope unwound


def test_orphan_spans_surface_at_end():
    env = Environment()
    log = TraceLog(env)
    done = log.span("s", "finished")
    log.close_span(done)
    orphan = log.span("s", "never.closed")
    assert log.open_spans() == [orphan]
    assert orphan.duration is None


def test_activate_makes_span_ambient_without_closing():
    env = Environment()
    log = TraceLog(env)
    sp = log.span("s", "k")
    with log.activate(sp):
        assert log.current_span is sp
        rec = log.emit("s", "work")
    assert rec.span_id == sp.span_id
    assert not sp.closed


def test_ambient_scope_shared_across_trace_logs():
    """Causality is a property of the environment, not of one log: a span
    activated through one log parents spans and records in another."""
    env = Environment()
    control_log = TraceLog(env)
    veem_log = TraceLog(env)
    request = control_log.span("control", "request")
    with control_log.activate(request):
        deploy = veem_log.span("veem", "vm.deploy")
        rec = veem_log.emit("veem", "vm.submit")
    assert deploy.parent_id == request.span_id
    assert rec.span_id == request.span_id


def test_flat_emit_json_is_byte_identical_to_seed_format():
    """Records emitted outside any span must serialise exactly as before
    spans existed — no span_id key, same key order."""
    env = Environment()
    log = TraceLog(env)
    rec = log.emit("veem", "vm.deploy", vm="vm-1", host="h0")
    seed_form = json.dumps(
        {"time": 0.0, "source": "veem", "kind": "vm.deploy",
         "details": {"vm": "vm-1", "host": "h0"}},
        sort_keys=True)
    assert rec.to_json() == seed_form
    assert rec.span_id is None


def test_trace_subscription_cancel_and_unsubscribe():
    env = Environment()
    log = TraceLog(env)
    seen = []
    handle = log.subscribe(seen.append)
    assert isinstance(handle, TraceSubscription)
    log.emit("s", "one")
    handle.cancel()
    handle.cancel()                       # idempotent
    log.emit("s", "two")
    assert [r.kind for r in seen] == ["one"]
    # unsubscribing an unknown callable is a no-op
    log.unsubscribe(lambda r: None)


# ---------------------------------------------------------------------------
# Indexed queries vs. the linear reference
# ---------------------------------------------------------------------------

def _linear_query(log, source=None, kind=None,
                  since=float("-inf"), until=float("inf")):
    """The seed's O(n) scan, kept as the oracle."""
    return [r for r in log.records
            if (source is None or r.source == source)
            and (kind is None or r.kind == kind)
            and since <= r.time <= until]


def test_indexed_query_matches_linear_reference_randomized():
    rng = random.Random(20260805)
    env = Environment()
    log = TraceLog(env)
    sources = ["veem", "control", "lifecycle", "rule-engine"]
    kinds = ["a", "b", "c"]

    def writer(env):
        for i in range(400):
            log.emit(rng.choice(sources), rng.choice(kinds), i=i)
            if rng.random() < 0.5:
                yield env.timeout(rng.choice([0.0, 0.5, 1.0]))

    env.process(writer(env))
    # Interleave writes and queries: run in chunks so indices are
    # repeatedly refreshed mid-stream, then more records arrive.
    for until in (5, 20, 80, None):
        env.run(until=until)
        for _ in range(30):
            source = rng.choice(sources + [None])
            kind = rng.choice(kinds + [None])
            lo = rng.uniform(-1, env.now + 1)
            hi = lo + rng.uniform(0, env.now)
            window = rng.random() < 0.7
            kwargs = dict(source=source, kind=kind)
            if window:
                kwargs.update(since=lo, until=hi)
            assert log.query(**kwargs) == _linear_query(log, **kwargs)
    assert log.first(source="veem") == (_linear_query(log, source="veem")
                                        or [None])[0]
    linear = _linear_query(log, kind="c")
    assert log.last(kind="c") == (linear[-1] if linear else None)


# ---------------------------------------------------------------------------
# TimeSeries.sample drift
# ---------------------------------------------------------------------------

def test_time_series_sample_no_float_drift_at_1e6_steps():
    ts = TimeSeries("x", initial=1.0)
    period = 0.001
    n = 1_000_000
    samples = ts.sample(0.0, n * period, period)
    assert len(samples) == n + 1
    # Every grid point is exact to one rounding: start + i*period, not an
    # accumulated sum (which drifts by whole samples at this scale).
    for i in (1, 999, 500_000, n):
        assert samples[i][0] == i * period
    accumulated = 0.0
    for _ in range(n):
        accumulated += period
    # the naive accumulation this guards against really does drift
    assert abs(accumulated - n * period) > 1e-8
    assert abs(samples[-1][0] - 1000.0) < 1e-9


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------

def _small_trace():
    env = Environment()
    log = TraceLog(env)

    def proc(env):
        with log.span_scope("veem", "vm.deploy", vm="vm-1"):
            log.emit("veem", "vm.submit", vm="vm-1")
        yield env.timeout(5)
        log.span("veem", "vm.shutdown", vm="vm-1")   # left open

    env.process(proc(env))
    env.run()
    return env, log


def test_export_jsonl_round_trips():
    _env, log = _small_trace()
    text = export_jsonl(log)
    rows = [json.loads(line) for line in text.splitlines()]
    records = [r for r in rows if r.get("record") != "span"]
    spans = [r for r in rows if r.get("record") == "span"]
    assert len(records) == 1 and records[0]["kind"] == "vm.submit"
    assert records[0]["span_id"] == spans[0]["span_id"]
    assert {s["kind"] for s in spans} == {"vm.deploy", "vm.shutdown"}


def test_chrome_trace_structure():
    env, log = _small_trace()
    doc = chrome_trace(log)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 2 and len(instants) == 1
    assert meta and meta[0]["args"]["name"] == "veem"
    deploy = next(e for e in complete if e["name"] == "vm.deploy")
    assert deploy["ts"] == 0.0 and deploy["dur"] == 0.0
    assert deploy["args"]["status"] == "ok"
    # the open span is drawn from its start up to the current clock
    shutdown = next(e for e in complete if e["name"] == "vm.shutdown")
    assert shutdown["args"]["status"] == "open"
    assert shutdown["ts"] == pytest.approx(5e6)     # opened at t=5, in µs
    assert shutdown["dur"] == pytest.approx((env.now - 5.0) * 1e6)
    json.dumps(doc)     # must be serialisable as-is


def test_render_span_tree_indents_by_causality():
    env = Environment()
    log = TraceLog(env)
    with log.span_scope("control", "request") as root:
        log.span_scope("veem", "vm.deploy").__enter__()  # nested + open
    text = render_span_tree(log)
    lines = text.splitlines()
    assert lines[0].startswith(f"#{root.span_id} control:request")
    assert lines[1].startswith("  #") and "veem:vm.deploy" in lines[1]
    only = render_span_tree(log, root=root.span_id)
    assert only.splitlines()[0] == lines[0]


# ---------------------------------------------------------------------------
# The §4.2.3 time-constraint auditor
# ---------------------------------------------------------------------------

def _firing_trace(action_delay, constraint=10.0):
    """A hand-built causal chain: kpi.publish → rule.firing → vm.deploy
    with the deploy invoked ``action_delay`` after the measurement."""
    env = Environment()
    log = TraceLog(env)

    def proc(env):
        kpi = log.span("monitoring", "kpi.publish", kpi="load")
        log.close_span(kpi)
        yield env.timeout(action_delay)
        firing = log.span("rule-engine", "rule.firing", parent=kpi,
                          rule="up", service="svc",
                          time_constraint_s=constraint)
        with log.activate(firing):
            deploy = log.span("veem", "vm.deploy", vm="vm-1")
            log.emit("rule-engine", "elasticity.action",
                     rule="up", operation="deployVM")
        log.close_span(deploy)
        log.close_span(firing, "fired")

    env.process(proc(env))
    env.run()
    return log


def test_auditor_passes_inside_window():
    report = TimeConstraintAuditor(_firing_trace(4.0)).audit()
    assert report.ok
    (finding,) = report.findings
    assert finding.rule == "up"
    assert finding.enabled_at == 0.0
    assert len(finding.invocations) == 2     # child span + action record
    assert {w for w, _, _ in finding.invocations} == \
        {"veem:vm.deploy", "action:deployVM"}
    assert "PASS" in report.render()


def test_auditor_flags_late_invocation():
    report = TimeConstraintAuditor(_firing_trace(11.0)).audit()
    assert not report.ok
    (finding,) = report.violations
    for _what, at, lateness in finding.violations:
        assert at == 11.0 and lateness == pytest.approx(1.0)
    rendered = report.render()
    assert "FAIL" in rendered and "LATE by 1.000s" in rendered


def test_auditor_boundary_invocation_is_on_time():
    report = TimeConstraintAuditor(_firing_trace(10.0)).audit()
    assert report.ok


def test_auditor_skips_firings_without_constraint():
    env = Environment()
    log = TraceLog(env)
    log.span("rule-engine", "rule.firing", rule="r")     # no constraint
    report = TimeConstraintAuditor(log).audit()
    assert report.findings == []
    assert "no rule firings" in report.render()


# ---------------------------------------------------------------------------
# End-to-end causal chain through the real stack
# ---------------------------------------------------------------------------

def _elastic_stack():
    from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
    from repro.core.manifest import ManifestBuilder
    from repro.core.service_manager import ServiceManager
    from repro.monitoring import MonitoringAgent

    env = Environment()
    veem = VEEM(env, repository=ImageRepository(bandwidth_mb_per_s=1000))
    timings = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)
    for i in range(4):
        veem.add_host(Host(env, f"h{i}", cpu_cores=8, memory_mb=16384,
                           timings=timings))
    sm = ServiceManager(env, veem)
    b = ManifestBuilder("elastic")
    b.component("web", image_mb=128, cpu=1, memory_mb=1024,
                initial=1, minimum=1, maximum=3)
    b.kpi("LB", "web", "demo.web.load", frequency_s=5, default=0)
    b.rule("up", "@demo.web.load > 80", "deployVM(web)",
           time_constraint_ms=30_000)
    service = sm.deploy(b.build())
    env.run(until=service.deployment)
    load = {"value": 0}
    agent = MonitoringAgent(env, service_id=service.service_id,
                            component="LB", network=sm.network,
                            trace=sm.trace)
    agent.expose("demo.web.load", lambda: load["value"], frequency_s=5)
    return env, sm, service, agent, load


def test_e2e_kpi_span_is_ancestor_of_deploy_span():
    env, sm, service, agent, load = _elastic_stack()
    trace = sm.trace
    load["value"] = 100
    env.run(until=env.now + 60)
    agent.stop()
    assert service.instance_count("web") > 1     # it scaled
    deploys = [s for s in trace.find_spans(kind="vm.deploy")
               if s.details.get("service") == service.service_id
               and s.details.get("component") == "web"
               and any(a.kind == "rule.firing"
                       for a in trace.ancestors(s))]   # the elasticity ones
    assert deploys, "no rule-caused vm.deploy spans"
    for deploy in deploys:
        kinds = [s.kind for s in trace.ancestors(deploy)]
        # measurement above the firing above the deploy
        assert kinds.index("rule.firing") < kinds.index("kpi.publish")
    report = TimeConstraintAuditor(trace).audit()
    assert report.findings and report.ok


def test_e2e_service_span_closes_and_undeploy_nests():
    env, sm, service, agent, load = _elastic_stack()
    trace = sm.trace
    assert service.span.closed and service.span.status == "ok"
    assert service.span.kind == "service.deploy"
    # the initial web VM's deploy span nests under the service span
    initial = [s for s in trace.find_spans(kind="vm.deploy")
               if s.parent_id == service.span.span_id]
    assert initial
    agent.stop()
    env.run(until=sm.undeploy(service))
    term = service.lifecycle.term_span
    assert term is not None and term.closed and term.status == "ok"
    assert term.parent_id == service.span.span_id
    # no orphans: every span opened for this service is closed
    leaked = [s for s in trace.open_spans()
              if s.details.get("service") == service.service_id]
    assert leaked == []


def test_e2e_per_service_trace_listener_detaches_on_undeploy():
    env, sm, service, agent, load = _elastic_stack()
    agent.stop()
    env.run(until=sm.undeploy(service))
    counted = service.trace_record_count
    assert counted > 0
    sm.trace.emit("veem", "late", service=service.service_id)
    assert service.trace_record_count == counted    # no longer counted
    # last service undeployed -> its keyed listener entry fully detached
    assert sm.trace._keyed == {}
    assert sm.trace._listeners == []


def test_e2e_metrics_registry_sees_every_layer():
    env, sm, service, agent, load = _elastic_stack()
    load["value"] = 100
    env.run(until=env.now + 60)
    agent.stop()
    metrics = env.metrics
    sid = service.service_id
    assert metrics.value("core.rules.firings", service=sid) >= 1
    assert metrics.value("core.lifecycle.scale_ups", service=sid) >= 1
    assert metrics.value("core.lifecycle.active_instances",
                         service=sid) == service.instance_count("web")
    assert metrics.value("cloud.veem.submitted", site="veem") >= 2
    hist = metrics.get("cloud.veem.provisioning_s", site="veem")
    assert isinstance(hist, Histogram) and hist.count >= 2
    assert metrics.value("cloud.placement.selections", site="veem") >= 2
    # fabric views exist (fabric label is instance-scoped)
    assert "monitoring.fabric.packets_published" in metrics
    text = prometheus_text(metrics)
    assert "core_rules_firings" in text


def test_compat_counter_views_match_legacy_attributes():
    """The pre-registry attribute names must still read correctly."""
    env, sm, service, agent, load = _elastic_stack()
    load["value"] = 100
    env.run(until=env.now + 40)
    agent.stop()
    interp = service.interpreter
    assert env.metrics.value("core.rules.evaluations",
                             service=service.service_id) == \
        interp.evaluations
    assert env.metrics.value("core.rules.firings",
                             service=service.service_id) == \
        len(interp.firings)
