"""Tests for the cross-domain monitoring relay (§5.2 'Federation')."""

import pytest

from repro.monitoring import (
    AttributeType,
    DataSource,
    MeasurementStore,
    MonitoringRelay,
    MulticastChannel,
    Probe,
    ProbeAttribute,
    PubSubBroker,
)
from repro.sim import Environment


def emit_probe(env, net, service="svc-1", qname="uk.ucl.remote.kpi",
               rate=10.0):
    ds = DataSource(env, "ds", service, net)
    ds.add_probe(Probe(
        name="p", qualified_name=qname,
        attributes=[ProbeAttribute("v", AttributeType.INTEGER)],
        collector=lambda: (7,), data_rate_s=rate))
    return ds


def test_relay_forwards_with_latency():
    env = Environment()
    site_a, site_b = MulticastChannel(env), MulticastChannel(env)
    relay = MonitoringRelay(env, source=site_b, target=site_a,
                            wan_latency_s=0.5)
    local_store = MeasurementStore()
    local_store.subscribe_to(site_a)
    emit_probe(env, site_b)  # produced on the remote domain
    env.run(until=10.4)
    assert local_store.notifications == 0  # still in flight
    env.run(until=10.6)
    assert local_store.notifications == 1
    assert local_store.value("svc-1", "uk.ucl.remote.kpi") == 7
    assert relay.forwarded == 1


def test_relay_filters_by_service():
    env = Environment()
    site_a, site_b = MulticastChannel(env), MulticastChannel(env)
    MonitoringRelay(env, source=site_b, target=site_a,
                    service_ids={"managed-svc"})
    store = MeasurementStore()
    store.subscribe_to(site_a)
    emit_probe(env, site_b, service="managed-svc", qname="a.b")
    emit_probe(env, site_b, service="other-svc", qname="c.d")
    env.run(until=15)
    assert store.known_names("managed-svc") == ["a.b"]
    assert store.known_names("other-svc") == []


def test_bidirectional_bridge_suppresses_echo():
    env = Environment()
    site_a, site_b = MulticastChannel(env), MulticastChannel(env)
    ab, ba = MonitoringRelay.bridge(env, site_a, site_b, wan_latency_s=0.1)
    store_a, store_b = MeasurementStore(), MeasurementStore()
    store_a.subscribe_to(site_a)
    store_b.subscribe_to(site_b)
    emit_probe(env, site_a, qname="a.b", rate=10)
    env.run(until=35)
    # Each of the 3 events seen exactly once per site — no ping-pong.
    assert store_a.notifications == 3
    assert store_b.notifications == 3
    assert ba.suppressed == 3
    assert ab.forwarded == 3


def test_relay_validation():
    env = Environment()
    net = MulticastChannel(env)
    with pytest.raises(ValueError):
        MonitoringRelay(env, source=net, target=net)
    other = MulticastChannel(env)
    with pytest.raises(ValueError):
        MonitoringRelay(env, source=net, target=other, wan_latency_s=-1)


def test_relay_stop():
    env = Environment()
    site_a, site_b = MulticastChannel(env), MulticastChannel(env)
    relay = MonitoringRelay(env, source=site_b, target=site_a)
    store = MeasurementStore()
    store.subscribe_to(site_a)
    emit_probe(env, site_b)
    env.run(until=15)
    assert store.notifications == 1
    relay.stop()
    env.run(until=60)
    assert store.notifications == 1


def test_rule_engine_consumes_relayed_remote_kpis():
    """End to end: a component on a remote site drives rules at the managing
    site — 'any virtual resource which reside on another domain is monitored
    correctly'."""
    from repro.core.manifest import ElasticityRule
    from repro.core.service_manager import RuleInterpreter

    env = Environment()
    managing, remote = PubSubBroker(env), PubSubBroker(env)
    MonitoringRelay(env, source=remote, target=managing,
                    service_ids={"svc-1"}, wan_latency_s=0.3)

    calls = []
    interp = RuleInterpreter(env, "svc-1",
                             executor=lambda a, r: calls.append(env.now) or True)
    interp.install(ElasticityRule.from_text(
        "up", "@uk.ucl.remote.kpi > 4", "deployVM(x)",
        defaults={"uk.ucl.remote.kpi": 0}, cooldown_s=1e9))
    interp.subscribe_to(managing)
    interp.start()
    emit_probe(env, remote)  # publishes 7 every 10 s on the remote fabric
    env.run(until=30)
    assert len(calls) == 1
