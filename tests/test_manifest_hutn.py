"""Tests for the human-readable (HUTN-style) concrete syntax."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manifest import (
    HutnSyntaxError,
    ManifestBuilder,
    manifest_from_text,
    manifest_from_xml,
    manifest_to_text,
    manifest_to_xml,
)
from tests.test_manifest_xml import paper_manifest


def test_paper_manifest_round_trip():
    m1 = paper_manifest()
    assert manifest_from_text(manifest_to_text(m1)) == m1


def test_sla_and_rules_round_trip():
    b = ManifestBuilder("svc")
    b.component("web", image_mb=500, initial=1, minimum=1, maximum=4,
                customisation={"db host": 'quoted "value"',
                               "path": "a\\b"})
    b.kpi("LB", "web", "app.sessions", default=0)
    b.rule("up", "(@app.sessions > 100) && (mean(@app.sessions, 60) > 50)",
           ["deployVM(web)", "notify()"], time_constraint_ms=2500,
           cooldown_s=42)
    b.slo("fast", "@app.sessions < 10000", evaluation_period_s=15,
          target_compliance=0.99, assessment_window_s=900,
          penalty_per_breach=12.5)
    m1 = b.build()
    m2 = manifest_from_text(manifest_to_text(m1))
    assert m2 == m1
    rule = m2.elasticity_rules[0]
    assert rule.cooldown_s == 42
    assert len(rule.actions) == 2
    assert m2.sla.objective("fast").penalty_per_breach == 12.5


def test_text_and_xml_syntaxes_describe_same_model():
    """Two concrete syntaxes, one abstract syntax — the §4.2 point."""
    m = paper_manifest()
    via_text = manifest_from_text(manifest_to_text(m))
    via_xml = manifest_from_xml(manifest_to_xml(m))
    assert via_text == via_xml == m


def test_comments_and_blank_lines_ignored():
    text = """
# service definition
service demo {    # trailing comment

  file f at "http://x/f" size 10
  disk d from f
  system a {
    # hardware
    cpu 2
    memory 512
    disks d
    instances 1..1 initial 1
  }
}
"""
    m = manifest_from_text(text)
    assert m.service_name == "demo"
    assert m.system("a").hardware.cpu == 2


def test_not_replicable_and_nowait():
    text = """
service demo {
  file f at "http://x/f" size 10
  disk d from f
  system ci {
    cpu 1
    memory 512
    disks d
    instances 1..1 initial 1
    not-replicable
  }
  startup {
    ci order 0 nowait
  }
}
"""
    m = manifest_from_text(text)
    assert m.system("ci").replicable is False
    assert m.startup[0].wait_for_guest is False


def test_site_placement_forms():
    text = """
service demo {
  file f at "http://x/f" size 10
  disk d from f
  system a {
    cpu 1
    memory 512
    disks d
    instances 1..1 initial 1
  }
  placement {
    site a favour eu-west avoid offshore trusted
    site * avoid bad-site
  }
}
"""
    m = manifest_from_text(text)
    sp1, sp2 = m.placement.site_placements
    assert sp1.system_id == "a"
    assert sp1.favour_sites == ("eu-west",)
    assert sp1.avoid_sites == ("offshore",)
    assert sp1.require_trusted
    assert sp2.system_id is None
    assert sp2.avoid_sites == ("bad-site",)


@pytest.mark.parametrize("text, match", [
    ("network x {", "expected 'service"),
    ("service s {\n  bogus thing\n}", "unknown declaration"),
    ("service s {\n  file f size 10\n}", "expected 'file"),
    ("service s {\n  system a {\n    warp 9\n  }\n}",
     "unknown system attribute"),
    ("service s {\n  rule r within 100 {\n    do deployVM(x)\n  }\n}",
     "lacks a 'when'"),
    ("service s {\n  slo q period 1 target 0.9 window 10 penalty 1 {\n  }\n}",
     "lacks a 'must'"),
    ("service s {\n", "unexpected end of input"),
    ("service s {\n  system a\n}", "expected '{'"),
])
def test_malformed_text_rejected(text, match):
    with pytest.raises(HutnSyntaxError, match=match):
        manifest_from_text(text)


@given(
    seed=st.integers(0, 10_000),
    n_components=st.integers(1, 4),
    n_networks=st.integers(0, 2),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_generated_manifest_text_round_trip(seed, n_components, n_networks,
                                            data):
    b = ManifestBuilder(f"svc-{seed}")
    networks = [f"net{i}" for i in range(n_networks)]
    for net in networks:
        b.network(net, public=data.draw(st.booleans()),
                  description=data.draw(st.sampled_from(
                      ["", "plain", 'with "quotes"', "back\\slash"])))
    for i in range(n_components):
        maximum = data.draw(st.integers(1, 8))
        initial = data.draw(st.integers(0, maximum))
        b.component(
            f"comp{i}",
            image_mb=data.draw(st.floats(1, 10_000)),
            cpu=data.draw(st.floats(0.5, 8)),
            memory_mb=data.draw(st.floats(128, 16_384)),
            networks=data.draw(st.lists(st.sampled_from(networks),
                                        unique=True) if networks
                               else st.just([])),
            initial=initial,
            minimum=data.draw(st.integers(0, initial)),
            maximum=maximum,
            startup_order=data.draw(st.integers(0, 3)),
            customisation={
                data.draw(st.sampled_from(["k1", "key two", 'k"3'])):
                data.draw(st.sampled_from(["v", "v v", '"v"', "${ip.x.y}"]))
                for _ in range(data.draw(st.integers(0, 2)))
            },
        )
    m1 = b.build(validate=False)
    m2 = manifest_from_text(manifest_to_text(m1))
    assert m2 == m1
