"""Tests for the §4.2.3 code generation: generated source must run."""

import pytest

from repro.core.codegen import generate_agent_stub, generate_validation_script
from repro.core.manifest import ManifestBuilder
from repro.monitoring import MeasurementStore, MulticastChannel
from repro.sim import Environment


def manifest():
    b = ManifestBuilder("gen-svc")
    b.component("GM", image_mb=100)
    b.component("exec", image_mb=100, initial=0, minimum=0, maximum=4)
    b.application("gen-app")
    b.kpi("GridMgmtService", "GM", "uk.ucl.condor.schedd.queuesize",
          frequency_s=30, units="jobs", default=0)
    b.kpi("GridMgmtService", "GM", "uk.ucl.condor.schedd.class-ad.count",
          frequency_s=60, type_name="long", default=0)
    b.kpi("Cluster", "exec", "uk.ucl.condor.exec.instances.size",
          frequency_s=30, default=0)
    b.rule("up", "@uk.ucl.condor.schedd.queuesize > 4", "deployVM(exec)")
    return b.build()


def exec_module(source):
    namespace = {}
    exec(compile(source, "<generated>", "exec"), namespace)
    return namespace


# ---------------------------------------------------------------------------
# Agent stub generation
# ---------------------------------------------------------------------------

def test_stub_source_is_valid_python():
    source = generate_agent_stub(manifest(), "GridMgmtService")
    module = exec_module(source)
    assert "GridMgmtServiceAgentStub" in module


def test_stub_mentions_every_kpi():
    source = generate_agent_stub(manifest(), "GridMgmtService")
    assert "uk.ucl.condor.schedd.queuesize" in source
    assert "uk.ucl.condor.schedd.class-ad.count" in source
    assert "collect_queuesize" in source
    # hyphen in the last segment becomes a safe identifier
    assert "collect_count" in source


def test_stub_unimplemented_probe_raises():
    source = generate_agent_stub(manifest(), "GridMgmtService")
    module = exec_module(source)
    env = Environment()
    stub = module["GridMgmtServiceAgentStub"](
        env, "svc-1", MulticastChannel(env), start=False)
    with pytest.raises(NotImplementedError):
        stub.collect_queuesize()


def test_stub_publishes_after_override():
    """The provider's only job: override collect_*; everything else works."""
    source = generate_agent_stub(manifest(), "GridMgmtService")
    module = exec_module(source)
    env = Environment()
    network = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(network)

    class Wired(module["GridMgmtServiceAgentStub"]):
        def collect_queuesize(self):
            return 7

        def collect_count(self):
            return 2**40

    Wired(env, "svc-1", network)
    env.run(until=61)
    assert store.value("svc-1", "uk.ucl.condor.schedd.queuesize") == 7
    assert store.value("svc-1",
                       "uk.ucl.condor.schedd.class-ad.count") == 2**40


def test_stub_respects_declared_frequencies():
    source = generate_agent_stub(manifest(), "GridMgmtService")
    module = exec_module(source)
    env = Environment()
    network = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(network)

    class Wired(module["GridMgmtServiceAgentStub"]):
        def collect_queuesize(self):
            return 1

        def collect_count(self):
            return 1

    Wired(env, "svc-1", network)
    env.run(until=125)
    # queuesize every 30 s → 4 events; count every 60 s → 2 events.
    assert store.notifications == 6


def test_stub_stop():
    source = generate_agent_stub(manifest(), "GridMgmtService")
    module = exec_module(source)
    env = Environment()
    network = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(network)

    class Wired(module["GridMgmtServiceAgentStub"]):
        def collect_queuesize(self):
            return 1

        def collect_count(self):
            return 1

    stub = Wired(env, "svc-1", network)
    stub.stop()
    env.run(until=300)
    assert store.notifications == 0


def test_stub_unknown_component_rejected():
    with pytest.raises(KeyError):
        generate_agent_stub(manifest(), "NoSuchComponent")
    b = ManifestBuilder("bare")
    b.component("a", image_mb=1)
    with pytest.raises(ValueError):
        generate_agent_stub(b.build(), "a")


# ---------------------------------------------------------------------------
# Validation-script generation
# ---------------------------------------------------------------------------

def test_validation_script_round_trips_manifest():
    source = generate_validation_script(manifest(), "svc-9")
    module = exec_module(source)
    assert module["MANIFEST"].service_name == "gen-svc"
    assert module["SERVICE_ID"] == "svc-9"


def test_validation_script_attach_and_report():
    from repro.monitoring import Measurement
    from repro.sim import TraceLog
    from repro.sim.tracing import TraceRecord

    source = generate_validation_script(manifest(), "svc-9")
    module = exec_module(source)
    env = Environment()
    network = MulticastChannel(env)
    instruments = module["attach"](network)

    # Feed one enabling event and a timely action record.
    network.publish(Measurement("uk.ucl.condor.schedd.queuesize",
                                "svc-9", "p", 0.0, (50,)))
    trace = TraceLog(env)
    trace.records.append(TraceRecord(
        1.0, "rule-engine", "elasticity.action",
        {"rule": "up", "service": "svc-9", "operation": "deployVM",
         "component_ref": "exec"}))
    text = module["report"](instruments, trace)
    assert "uk.ucl.condor.schedd.queuesize: 1 events" in text
    assert "violations: 0" in text
    assert "'enforced': 1" in text
