"""Tests for the Service Manager: parser, rule interpreter, lifecycle."""

import pytest

from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM, VMState
from repro.core.manifest import (
    ManifestBuilder,
    ManifestValidationError,
)
from repro.core.service_manager import (
    ManifestParser,
    RuleInterpreter,
    ScaleError,
    ServiceManager,
)
from repro.monitoring import (
    Measurement,
    MonitoringAgent,
)
from repro.sim import Environment

TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)


def make_veem(env, n_hosts=4):
    repo = ImageRepository(bandwidth_mb_per_s=1000)  # fast staging for tests
    veem = VEEM(env, repository=repo)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=8, memory_mb=16384,
                           timings=TIMINGS))
    return veem


def web_manifest(max_web=4):
    """A small elastic web service used across these tests."""
    b = ManifestBuilder("webshop")
    b.network("internal")
    b.component("db", image_mb=1000, cpu=2, memory_mb=4096,
                networks=["internal"], startup_order=0)
    b.component("web", image_mb=500, cpu=1, memory_mb=1024,
                networks=["internal"], startup_order=1,
                initial=1, minimum=1, maximum=max_web,
                customisation={"db_host": "${ip.internal.db}"})
    b.application("webshop-app")
    b.kpi("LoadBalancer", "web", "com.shop.lb.sessions", frequency_s=10,
          default=0)
    b.rule("up", "(@com.shop.lb.sessions / 100 > @instances.of.web) && "
                 "(@instances.of.web < 4)".replace("@instances.of.web",
                                                   "@com.shop.web.instances"),
           "deployVM(web)", time_constraint_ms=4000)
    b.kpi("Web", "web", "com.shop.web.instances", frequency_s=10, default=1)
    b.rule("down", "(@com.shop.lb.sessions == 0) && "
                   "(@com.shop.web.instances > 1)",
           "undeployVM(web)", time_constraint_ms=4000)
    return b.build()


# ---------------------------------------------------------------------------
# ManifestParser
# ---------------------------------------------------------------------------

def test_parser_assigns_service_ids():
    parser = ManifestParser()
    p1 = parser.parse(web_manifest())
    p2 = parser.parse(web_manifest())
    assert p1.service_id != p2.service_id
    p3 = parser.parse(web_manifest(), service_id="custom")
    assert p3.service_id == "custom"


def test_parser_rejects_invalid_manifest():
    b = ManifestBuilder("bad")
    b.component("a", image_mb=1, networks=["ghost"])
    with pytest.raises(ManifestValidationError):
        ManifestParser().parse(b.build(validate=False))


def test_parser_accepts_xml():
    from repro.core.manifest import manifest_to_xml
    xml = manifest_to_xml(web_manifest())
    parsed = ManifestParser().parse(xml)
    assert parsed.manifest.service_name == "webshop"


def test_descriptor_generation_matches_manifest():
    parsed = ManifestParser().parse(web_manifest())
    system = parsed.manifest.system("web")
    d0 = parsed.descriptor_for(system, 0)
    d1 = parsed.descriptor_for(system, 1)
    assert d0.name == "web" and d1.name == "web-1"
    assert d0.memory_mb == 1024 and d0.cpu == 1
    assert d0.disk_source == parsed.manifest.image_href(system)
    assert d0.component_id == "web"
    assert d0.service_id == parsed.service_id


def test_parser_resolves_action_targets():
    parsed = ManifestParser().parse(web_manifest())
    assert parsed.resolve_action_target("web") == "web"
    assert parsed.resolve_action_target("com.shop.web.ref") == "web"
    assert parsed.resolve_action_target("ghost") is None


def test_placement_constraints_derived():
    b = ManifestBuilder("svc")
    b.component("ci", image_mb=1).component("db", image_mb=1)
    b.component("di", image_mb=1, initial=1, minimum=1, maximum=4)
    b.kpi("C", "di", "a.b", default=0)
    b.rule("r", "@a.b > 1", "deployVM(di)")
    b.colocate("ci", "db").anti_colocate("di", "db").per_host_cap("di", 2)
    parsed = ManifestParser().parse(b.build())
    kinds = [type(c).__name__ for c in parsed.placement_constraints()]
    assert kinds == ["Affinity", "AntiAffinity", "ComponentCap"]


# ---------------------------------------------------------------------------
# RuleInterpreter semantics
# ---------------------------------------------------------------------------

def make_interpreter(env, rules, executor=None, defaults=None):
    calls = []

    def default_executor(action, rule):
        calls.append((env.now, rule.name, action.operation.value))
        return True

    interp = RuleInterpreter(
        env, "svc-1", executor=executor or default_executor,
        kpi_defaults=defaults or {},
    )
    for rule in rules:
        interp.install(rule)
    return interp, calls


def measurement(qname, value, t=0.0):
    return Measurement(qname, "svc-1", "probe-x", t, (value,))


def test_rule_fires_when_condition_holds():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "@a.b > 4", "deployVM(x)",
                                    defaults={"a.b": 0})
    interp, calls = make_interpreter(env, [rule])
    interp.notify(measurement("a.b", 10))
    fired = interp.evaluate_rules()
    assert len(fired) == 1 and fired[0].rule == "up"
    assert calls == [(0.0, "up", "deployVM")]


def test_rule_uses_default_before_first_measurement():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "@a.b > 4", "deployVM(x)",
                                    defaults={"a.b": 0})
    interp, calls = make_interpreter(env, [rule])
    assert interp.evaluate_rules() == []  # default 0 → condition false
    assert calls == []


def test_rule_without_default_or_record_logs_error():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "@a.b > 4", "deployVM(x)")
    interp, calls = make_interpreter(env, [rule])
    interp.evaluate_rules()
    assert calls == []
    assert interp.trace.last(kind="rule.error") is not None


def test_latest_value_wins():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "@a.b > 4", "deployVM(x)",
                                    defaults={"a.b": 0})
    interp, calls = make_interpreter(env, [rule])
    interp.notify(measurement("a.b", 10, t=0))
    interp.notify(measurement("a.b", 1, t=1))
    assert interp.evaluate_rules() == []


def test_cooldown_prevents_duplicate_response():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "@a.b > 4", "deployVM(x)",
                                    defaults={"a.b": 0},
                                    time_constraint_ms=5000)
    interp, calls = make_interpreter(env, [rule])
    interp.notify(measurement("a.b", 10))

    def drive(env):
        interp.evaluate_rules()      # fires at t=0
        interp.evaluate_rules()      # within cooldown: suppressed
        yield env.timeout(5)
        interp.evaluate_rules()      # cooldown over: fires again


    env.process(drive(env))
    env.run()
    assert [c[0] for c in calls] == [0.0, 5.0]


def test_failed_action_does_not_start_cooldown():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "@a.b > 4", "deployVM(x)",
                                    defaults={"a.b": 0})
    attempts = []

    def refusing_executor(action, r):
        attempts.append(env.now)
        return False

    interp, _ = make_interpreter(env, [rule], executor=refusing_executor)
    interp.notify(measurement("a.b", 10))
    interp.evaluate_rules()
    interp.evaluate_rules()
    assert len(attempts) == 2  # no cooldown after refusals
    assert interp.firings == []


def test_events_for_other_services_ignored():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "@a.b > 4", "deployVM(x)",
                                    defaults={"a.b": 0})
    interp, calls = make_interpreter(env, [rule])
    interp.notify(Measurement("a.b", "OTHER-svc", "p", 0.0, (10,)))
    assert interp.evaluate_rules() == []


def test_periodic_loop_evaluates():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "@a.b > 4", "deployVM(x)",
                                    defaults={"a.b": 0},
                                    time_constraint_ms=10_000)
    interp, calls = make_interpreter(env, [rule])
    assert interp.eval_period_s == 5.0  # half the tightest time constraint
    interp.notify(measurement("a.b", 10))
    interp.start()
    env.run(until=21)
    # Fires at t=5, cooldown 10 s → next at t=15.
    assert [c[0] for c in calls] == [5.0, 15.0]
    interp.stop()
    env.run(until=100)
    assert len(calls) == 2


def test_install_duplicate_and_uninstall():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "1 > 0", "notify()")
    interp, calls = make_interpreter(env, [rule])
    with pytest.raises(ValueError):
        interp.install(rule)
    interp.uninstall("up")
    with pytest.raises(ValueError):
        interp.uninstall("up")
    assert interp.rules == []


def test_trace_records_elasticity_actions():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    rule = ElasticityRule.from_text("up", "@a.b > 4", "deployVM(x)",
                                    defaults={"a.b": 0})
    interp, _ = make_interpreter(env, [rule])
    interp.notify(measurement("a.b", 10))
    interp.evaluate_rules()
    rec = interp.trace.last(kind="elasticity.action")
    assert rec.details["rule"] == "up"
    assert rec.details["operation"] == "deployVM"


# ---------------------------------------------------------------------------
# End-to-end: ServiceManager deployment + elasticity
# ---------------------------------------------------------------------------

def test_deploy_service_brings_up_initial_instances():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest())
    env.run(until=service.deployment)
    assert service.instance_count("db") == 1
    assert service.instance_count("web") == 1
    db_vm = service.lifecycle.components["db"].vms[0]
    web_vm = service.lifecycle.components["web"].vms[0]
    assert db_vm.state is VMState.RUNNING
    # Startup order: web submitted only after db was running.
    assert web_vm.submitted_at >= db_vm.running_at


def test_customisation_placeholder_resolved_to_db_ip():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest())
    env.run(until=service.deployment)
    db_vm = service.lifecycle.components["db"].vms[0]
    web_vm = service.lifecycle.components["web"].vms[0]
    assert web_vm.descriptor.customisation["db_host"] == \
        db_vm.ip_addresses["internal"]


def test_elasticity_scales_up_on_sessions_kpi():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest())
    env.run(until=service.deployment)

    sessions = {"count": 0}
    agent = MonitoringAgent(env, service_id=service.service_id,
                            component="LoadBalancer", network=sm.network)
    agent.expose("com.shop.lb.sessions", lambda: sessions["count"],
                 frequency_s=10)
    agent.expose("com.shop.web.instances",
                 lambda: service.instance_count("web"), frequency_s=10)

    sessions["count"] = 350  # wants ceil-ish 350/100 → up to 4 instances
    env.run(until=env.now + 120)
    assert service.instance_count("web") == 4  # capped at max
    # Scale back down when sessions drop to zero.
    sessions["count"] = 0
    env.run(until=env.now + 200)
    assert service.instance_count("web") == 1  # floor at min


def test_scale_bounds_enforced():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest(max_web=2))
    env.run(until=service.deployment)
    lifecycle = service.lifecycle
    lifecycle.scale_up("web")
    with pytest.raises(ScaleError):
        lifecycle.scale_up("web")
    lifecycle.scale_down("web")
    with pytest.raises(ScaleError):
        lifecycle.scale_down("web")  # at minimum 1


def test_non_replicable_component_cannot_scale():
    b = ManifestBuilder("svc")
    b.component("ci", image_mb=100, replicable=False)
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(b.build())
    env.run(until=service.deployment)
    with pytest.raises(ScaleError):
        service.lifecycle.scale_up("ci")


def test_undeploy_stops_everything_in_reverse_order():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest())
    env.run(until=service.deployment)
    web_vm = service.lifecycle.components["web"].vms[0]
    db_vm = service.lifecycle.components["db"].vms[0]
    env.run(until=sm.undeploy(service))
    assert web_vm.state is VMState.STOPPED
    assert db_vm.state is VMState.STOPPED
    assert db_vm.stopped_at >= web_vm.stopped_at  # reverse startup order
    assert service.instance_count("web") == 0


def test_undeploy_releases_monitoring_subscription():
    """Undeployed services must not leak routing state in the fabric."""
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest())
    env.run(until=service.deployment)
    assert sm.network.subscription_count == 1  # the rule interpreter
    env.run(until=sm.undeploy(service))
    assert sm.network.subscription_count == 0
    # late measurements for the dead service are dropped, not delivered
    before = service.interpreter.store.notifications
    sm.network.publish(Measurement("com.shop.lb.sessions",
                                   service.service_id, "p-9", env.now, (5,)))
    assert service.interpreter.store.notifications == before


def test_undeploy_is_idempotent():
    """A second undeploy is a no-op returning the same termination process
    — no double-termination, subscriptions stay released."""
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest())
    env.run(until=service.deployment)
    first = sm.undeploy(service)
    again = sm.undeploy(service)
    assert again is first
    env.run(until=first)
    assert service.instance_count("web") == 0
    assert sm.network.subscription_count == 0
    # still idempotent after termination has completed
    assert sm.undeploy(service) is first
    assert service.instance_count("web") == 0


def test_undeploy_hooks_fire_once_with_termination():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest())
    env.run(until=service.deployment)
    seen = []
    sm.on_undeploy.append(lambda svc, term: seen.append((svc, term)))
    termination = sm.undeploy(service)
    sm.undeploy(service)        # repeat call must not re-fire hooks
    assert seen == [(service, termination)]


def test_deploy_attributes_tenant_through_accounting():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest(), tenant="acme")
    env.run(until=service.deployment)
    assert service.tenant == "acme"
    assert service.lifecycle.accountant.tenant == "acme"
    # direct deploys stay unattributed
    other = sm.deploy(web_manifest())
    env.run(until=other.deployment)
    assert other.tenant is None and other.lifecycle.accountant.tenant is None


def test_accounting_tracks_instances():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest())
    env.run(until=service.deployment)
    t0 = env.now
    service.lifecycle.scale_up("web")
    env.run(until=t0 + 100)
    usage = service.lifecycle.accountant.usage("web", t0, t0 + 100)
    assert usage.peak_instances == 2
    assert 1.0 < usage.mean_instances <= 2.0
    assert usage.instance_seconds == pytest.approx(
        usage.mean_instances * 100)


def test_constraints_hold_after_deployment():
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(web_manifest())
    env.run(until=service.deployment)
    report = service.check_constraints()
    assert report.ok, [str(v) for v in report.violations]
    assert "association" in report.checked


def test_reconfigure_action_parsing():
    from repro.core.service_manager.manager import _parse_resize_args
    assert _parse_resize_args(("cpu=2", "memory_mb=4096")) == {
        "cpu": 2.0, "memory_mb": 4096.0}
    assert _parse_resize_args(("bogus",)) == {}
    assert _parse_resize_args(("cpu=notanumber",)) == {}
    assert _parse_resize_args(("disk=50",)) == {}


def test_reconfigure_through_rule_action():
    b = ManifestBuilder("svc")
    b.component("db", image_mb=100, cpu=1, memory_mb=1024)
    b.kpi("DB", "db", "db.load.level", default=0)
    b.rule("boost", "@db.load.level > 90", "reconfigureVM(db, cpu=2)",
           cooldown_s=1e9)
    env = Environment()
    veem = make_veem(env)
    sm = ServiceManager(env, veem)
    service = sm.deploy(b.build())
    env.run(until=service.deployment)
    service.interpreter.notify(
        Measurement("db.load.level", service.service_id, "p", env.now, (95,)))
    service.interpreter.evaluate_rules()
    db_vm = service.lifecycle.components["db"].vms[0]
    assert db_vm.descriptor.cpu == 2


def test_builtin_time_kpis():
    """§4.2.1: "the current time can be introduced as a monitorable
    parameter if necessary" — rules can gate on simulated wall time."""
    from repro.core.manifest import ElasticityRule
    env = Environment(initial_time=6 * 3600)  # 06:00
    calls = []
    rule = ElasticityRule.from_text(
        "business-hours-only",
        "(@system.time.timeofday >= 32400) && "    # 09:00
        "(@system.time.timeofday < 61200) && "     # 17:00
        "(@q.size > 4)",
        "deployVM(x)", defaults={"q.size": 0}, cooldown_s=1e9)
    interp = RuleInterpreter(
        env, "svc-1", executor=lambda a, r: calls.append(env.now) or True)
    interp.install(rule)
    interp.notify(Measurement("q.size", "svc-1", "p", env.now, (50,)))

    def drive(env):
        interp.evaluate_rules()          # 06:00 → outside window
        yield env.timeout(4 * 3600)
        interp.evaluate_rules()          # 10:00 → fires
        yield env.timeout(9 * 3600)
        interp.evaluate_rules()          # 19:00 → outside window

    env.process(drive(env))
    env.run()
    assert len(calls) == 1
    assert calls[0] == 10 * 3600


def test_builtin_time_can_be_shadowed_by_measurement():
    from repro.core.manifest import ElasticityRule
    env = Environment()
    calls = []
    rule = ElasticityRule.from_text(
        "r", "@system.time.now > 100", "notify()", cooldown_s=1e9)
    interp = RuleInterpreter(
        env, "svc-1", executor=lambda a, r: calls.append(1) or True)
    interp.install(rule)
    # An application publishing under the built-in name takes precedence.
    interp.notify(Measurement("system.time.now", "svc-1", "p", 0.0, (999,)))
    interp.evaluate_rules()
    assert calls == [1]
