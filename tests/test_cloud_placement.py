"""Unit tests for placement policies and constraints."""

import pytest

from repro.cloud import (
    Affinity,
    AntiAffinity,
    AttributeRequirement,
    BestFit,
    CapacityError,
    ComponentCap,
    DeploymentDescriptor,
    FirstFit,
    Host,
    Placer,
    PlacementError,
    RoundRobin,
    VirtualMachine,
    WorstFit,
)
from repro.sim import Environment


def make_desc(component, service="svc", cpu=1.0, mem=1024.0, name=None):
    return DeploymentDescriptor(
        name=name or component, memory_mb=mem, cpu=cpu,
        disk_source="http://sm/images/base",
        service_id=service, component_id=component,
    )


def place(host, component, service="svc", cpu=1.0, mem=1024.0):
    env = host.env
    vm = VirtualMachine(env, f"{component}-{len(host.vms)}",
                        make_desc(component, service, cpu, mem))
    host.reserve(vm)
    return vm


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def hosts(env):
    return [Host(env, f"h{i}", cpu_cores=4, memory_mb=8192) for i in range(3)]


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

def test_first_fit_takes_configured_order(hosts):
    placer = Placer(policy=FirstFit())
    assert placer.select(hosts, make_desc("a")) is hosts[0]


def test_best_fit_packs_tightest(hosts):
    place(hosts[1], "x", mem=6000)  # h1 has least free memory
    placer = Placer(policy=BestFit())
    assert placer.select(hosts, make_desc("a", mem=1000)) is hosts[1]


def test_worst_fit_spreads(hosts):
    place(hosts[0], "x", mem=2000)
    place(hosts[1], "x", mem=4000)
    placer = Placer(policy=WorstFit())
    assert placer.select(hosts, make_desc("a")) is hosts[2]


def test_round_robin_rotates(hosts):
    placer = Placer(policy=RoundRobin())
    picks = [placer.select(hosts, make_desc("a")).name for _ in range(4)]
    assert picks == ["h0", "h1", "h2", "h0"]


def test_capacity_filter_skips_full_hosts(hosts):
    place(hosts[0], "big", cpu=4, mem=8192)
    placer = Placer(policy=FirstFit())
    assert placer.select(hosts, make_desc("a")) is hosts[1]


def test_no_feasible_host_raises(env):
    tiny = Host(env, "tiny", cpu_cores=1, memory_mb=512)
    placer = Placer()
    with pytest.raises(PlacementError, match="no feasible host"):
        placer.select([tiny], make_desc("a", mem=1024))


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------

def test_affinity_binds_to_anchor_host(hosts):
    place(hosts[2], "dbms")
    placer = Placer(policy=FirstFit(),
                    constraints=[Affinity("central", "dbms")])
    assert placer.select(hosts, make_desc("central")) is hosts[2]


def test_affinity_unanchored_allows_any_host(hosts):
    placer = Placer(constraints=[Affinity("central", "dbms")])
    # No dbms anywhere yet — the first component may go anywhere.
    assert placer.select(hosts, make_desc("central")) is hosts[0]


def test_affinity_ignores_other_services(hosts):
    place(hosts[2], "dbms", service="other-svc")
    placer = Placer(constraints=[Affinity("central", "dbms")])
    # Anchor belongs to a different service: not an anchor for ours.
    assert placer.select(hosts, make_desc("central", service="svc")) is hosts[0]


def test_affinity_does_not_constrain_other_components(hosts):
    place(hosts[2], "dbms")
    placer = Placer(constraints=[Affinity("central", "dbms")])
    assert placer.select(hosts, make_desc("web")) is hosts[0]


def test_anti_affinity_excludes_shared_host(hosts):
    place(hosts[0], "dbms")
    placer = Placer(constraints=[AntiAffinity("replica", "dbms")])
    assert placer.select(hosts, make_desc("replica")) is hosts[1]


def test_anti_affinity_can_make_placement_infeasible(env):
    host = Host(env, "only", cpu_cores=8, memory_mb=16384)
    place(host, "dbms")
    placer = Placer(constraints=[AntiAffinity("replica", "dbms")])
    with pytest.raises(PlacementError):
        placer.select([host], make_desc("replica"))


def test_attribute_requirement(hosts):
    hosts[1].attributes["zone"] = "secure"
    placer = Placer(constraints=[
        AttributeRequirement("dbms", "zone", "secure"),
    ])
    assert placer.select(hosts, make_desc("dbms")) is hosts[1]
    # Other components don't care about the attribute.
    assert placer.select(hosts, make_desc("web")) is hosts[0]


def test_component_cap_limits_per_host(hosts):
    # Paper setup: ≤ 4 Condor exec VMs per host.
    cap = ComponentCap("exec", 2)
    placer = Placer(constraints=[cap])
    place(hosts[0], "exec")
    place(hosts[0], "exec")
    assert placer.select(hosts, make_desc("exec")) is hosts[1]


def test_component_cap_validation():
    with pytest.raises(ValueError):
        ComponentCap("exec", 0)


def test_component_cap_counts_only_same_service(hosts):
    cap = ComponentCap("exec", 1)
    placer = Placer(constraints=[cap])
    place(hosts[0], "exec", service="other")
    # Different service's exec instance doesn't count toward our cap.
    assert placer.select(hosts, make_desc("exec", service="svc")) is hosts[0]


def test_constraints_compose(hosts):
    """Paper-style stack: co-locate CI with DBMS, cap exec at 4/host."""
    placer = Placer(constraints=[
        Affinity("central", "dbms"),
        ComponentCap("exec", 4),
    ])
    place(hosts[1], "dbms")
    assert placer.select(hosts, make_desc("central")) is hosts[1]
    for _ in range(4):
        target = placer.select(hosts, make_desc("exec"))
        place(target, "exec")
    # First four execs land on h0 (first fit), the fifth must move on.
    assert len(hosts[0].vms_of_component("exec")) == 4
    assert placer.select(hosts, make_desc("exec")) is not hosts[0]


# ---------------------------------------------------------------------------
# FirstFit fast-path edge cases
# ---------------------------------------------------------------------------

def test_empty_host_list_is_a_capacity_error(env):
    placer = Placer()
    with pytest.raises(CapacityError, match="0 host"):
        placer.select([], make_desc("a"))
    assert placer.capacity_failures == 1 and placer.selections == 0
    # Same verdict off the fast path (constraints present).
    constrained = Placer(constraints=[AntiAffinity("a", "b")])
    with pytest.raises(CapacityError):
        constrained.select([], make_desc("a"))


def test_zero_free_capacity_hosts_are_skipped(env):
    full = Host(env, "full", cpu_cores=1, memory_mb=512)
    place(full, "filler", cpu=1, mem=512)
    spare = Host(env, "spare", cpu_cores=1, memory_mb=512)
    placer = Placer()
    assert placer.select([full, spare], make_desc("a", cpu=1, mem=512)) \
        is spare
    with pytest.raises(CapacityError):
        placer.select([full], make_desc("b", cpu=1, mem=512))


def test_anti_affinity_group_larger_than_host_count(hosts):
    # 3 hosts, 4 mutually anti-affine replicas: the fourth is infeasible
    # (a constraint failure, not a capacity failure — capacity exists).
    placer = Placer(constraints=[AntiAffinity("replica", "replica")])
    for _ in range(len(hosts)):
        place(placer.select(hosts, make_desc("replica")), "replica")
    with pytest.raises(PlacementError):
        placer.select(hosts, make_desc("replica"))
    assert placer.constraint_failures == 1
    assert placer.capacity_failures == 0


def test_release_then_reuse_of_freed_slot(env):
    host = Host(env, "h", cpu_cores=2, memory_mb=2048)
    placer = Placer()
    blocker = place(host, "a", cpu=2, mem=2048)
    with pytest.raises(CapacityError):
        placer.select([host], make_desc("b", cpu=1, mem=1024))
    host.release(blocker)
    assert placer.select([host], make_desc("b", cpu=1, mem=1024)) is host
    assert placer.capacity_failures == 1 and placer.selections == 1


# ---------------------------------------------------------------------------
# Host pins (descriptor.placement["host"], the solver-rescue mechanism)
# ---------------------------------------------------------------------------

def test_pinned_descriptor_goes_to_the_named_host(hosts):
    placer = Placer()
    d = make_desc("a")
    d.placement["host"] = "h2"
    assert placer.select(hosts, d) is hosts[2]
    assert placer.selections == 1


def test_pinned_host_without_room_is_a_capacity_error(hosts):
    place(hosts[2], "big", cpu=4, mem=8192)
    placer = Placer()
    d = make_desc("a")
    d.placement["host"] = "h2"
    with pytest.raises(CapacityError, match="pinned host"):
        placer.select(hosts, d)
    assert placer.capacity_failures == 1


def test_pinned_unknown_host_is_a_placement_error(hosts):
    placer = Placer()
    d = make_desc("a")
    d.placement["host"] = "nope"
    with pytest.raises(PlacementError, match="not in the pool"):
        placer.select(hosts, d)


def test_pin_bypasses_constraint_filtering(hosts):
    # The pinning caller (the solver) validated the joint assignment; the
    # placer only re-checks capacity, so a pin can land where the greedy
    # filter would have refused.
    place(hosts[0], "dbms")
    placer = Placer(constraints=[AntiAffinity("replica", "dbms")])
    d = make_desc("replica")
    d.placement["host"] = "h0"
    assert placer.select(hosts, d) is hosts[0]


def test_feasible_returns_all_candidates(hosts):
    placer = Placer()
    assert placer.feasible(hosts, make_desc("a")) == hosts
    place(hosts[0], "big", cpu=4, mem=8192)
    assert placer.feasible(hosts, make_desc("a")) == hosts[1:]


def test_describe_strings():
    assert "central" in Affinity("central", "dbms").describe()
    assert "exec" in ComponentCap("exec", 4).describe()
    assert "zone" in AttributeRequirement("c", "zone", "eu").describe()
    assert "dbms" in AntiAffinity("r", "dbms").describe()
