"""Integration tests: probes, data sources, distribution, consumers, agents,
information model."""

import pytest

from repro.monitoring import (
    AggregatingKPI,
    AttributeType,
    InformationModel,
    Measurement,
    MeasurementJournal,
    MeasurementStore,
    MonitoringAgent,
    MulticastChannel,
    Probe,
    ProbeAttribute,
    PubSubBroker,
    DataSource,
)
from repro.sim import Environment


def make_probe(value_fn=lambda: (5,), rate=30.0, qname="uk.ucl.test.kpi"):
    return Probe(
        name="test-probe",
        qualified_name=qname,
        attributes=[ProbeAttribute("value", AttributeType.INTEGER, "units")],
        collector=value_fn,
        data_rate_s=rate,
    )


# ---------------------------------------------------------------------------
# Probe / DataSource mechanics
# ---------------------------------------------------------------------------

def test_probe_periodic_emission():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    ds = DataSource(env, "ds", "svc-1", net)
    ds.add_probe(make_probe(rate=30))
    env.run(until=95)
    # Emissions at t=30, 60, 90.
    assert store.notifications == 3
    assert store.value("svc-1", "uk.ucl.test.kpi") == 5


def test_probe_collector_values_change():
    env = Environment()
    net = MulticastChannel(env)
    journal = MeasurementJournal()
    journal.subscribe_to(net)
    counter = {"n": 0}

    def collect():
        counter["n"] += 1
        return (counter["n"],)

    ds = DataSource(env, "ds", "svc-1", net)
    ds.add_probe(make_probe(collect, rate=10))
    env.run(until=35)
    values = [m.value for m in journal.stream("svc-1", "uk.ucl.test.kpi")]
    assert values == [1, 2, 3]
    seqnos = [m.seqno for m in journal.stream("svc-1", "uk.ucl.test.kpi")]
    assert seqnos == [1, 2, 3]


def test_probe_returning_none_skips_interval():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    calls = {"n": 0}

    def collect():
        calls["n"] += 1
        return (calls["n"],) if calls["n"] % 2 == 0 else None

    ds = DataSource(env, "ds", "svc-1", net)
    ds.add_probe(make_probe(collect, rate=10))
    env.run(until=45)
    assert calls["n"] == 4
    assert store.notifications == 2


def test_probe_off_suppresses_emission():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    ds = DataSource(env, "ds", "svc-1", net)
    probe = ds.add_probe(make_probe(rate=10))
    env.run(until=25)
    assert store.notifications == 2
    probe.turn_off()
    env.run(until=55)
    assert store.notifications == 2
    probe.turn_on()
    env.run(until=65)
    assert store.notifications == 3


def test_stop_probe_halts_loop():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    ds = DataSource(env, "ds", "svc-1", net)
    ds.add_probe(make_probe(rate=10))
    env.run(until=25)
    ds.stop_probe("test-probe")
    env.run(until=100)
    assert store.notifications == 2
    # Restart works.
    ds.start_probe("test-probe")
    env.run(until=115)
    assert store.notifications == 3


def test_set_data_rate_changes_period():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    ds = DataSource(env, "ds", "svc-1", net)
    ds.add_probe(make_probe(rate=10))
    env.run(until=25)
    assert store.notifications == 2  # t=10, 20
    ds.set_data_rate("test-probe", 5)
    # The in-flight interval (started at t=20) still uses the old rate and
    # fires at t=30; subsequent intervals use the new 5 s period.
    env.run(until=41)
    assert store.notifications == 5  # + t=30, 35, 40
    with pytest.raises(ValueError):
        ds.set_data_rate("test-probe", 0)


def test_emit_now_bypasses_schedule():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    ds = DataSource(env, "ds", "svc-1", net)
    probe = ds.add_probe(make_probe(rate=1000), start=False)
    m = ds.emit_now("test-probe")
    assert m is not None and store.notifications == 1
    probe.turn_off()
    assert ds.emit_now("test-probe") is None


def test_duplicate_probe_name_rejected():
    env = Environment()
    ds = DataSource(env, "ds", "svc-1", MulticastChannel(env))
    ds.add_probe(make_probe())
    with pytest.raises(ValueError):
        ds.add_probe(make_probe())


def test_probe_validation():
    with pytest.raises(ValueError):
        make_probe(rate=0)
    with pytest.raises(ValueError):
        Probe(name="", qualified_name="a.b", attributes=[], collector=lambda: (1,))


# ---------------------------------------------------------------------------
# Distribution frameworks
# ---------------------------------------------------------------------------

def _emit(env, net, qname="uk.ucl.a.b", service="svc-1"):
    ds = DataSource(env, "ds", service, net)
    ds.add_probe(make_probe(qname=qname, rate=10))
    return ds


def test_multicast_delivers_to_all_members():
    env = Environment()
    net = MulticastChannel(env)
    s1, s2 = MeasurementStore(), MeasurementStore()
    s1.subscribe_to(net)
    s2.subscribe_to(net)
    _emit(env, net)
    env.run(until=15)
    assert s1.notifications == s2.notifications == 1


def test_multicast_filters_at_consumer_but_counts_delivery():
    env = Environment()
    net = MulticastChannel(env)
    matched, unmatched = MeasurementStore(), MeasurementStore()
    matched.subscribe_to(net, qualified_name="uk.ucl.*")
    unmatched.subscribe_to(net, qualified_name="com.sap.*")
    _emit(env, net)
    env.run(until=15)
    assert matched.notifications == 1
    assert unmatched.notifications == 0
    # Both members received the packet at the network level.
    assert net.bytes_delivered == 2 * net.bytes_published


def test_pubsub_only_delivers_matches():
    env = Environment()
    net = PubSubBroker(env)
    matched, unmatched = MeasurementStore(), MeasurementStore()
    matched.subscribe_to(net, qualified_name="uk.ucl.*")
    unmatched.subscribe_to(net, qualified_name="com.sap.*")
    _emit(env, net)
    env.run(until=15)
    assert matched.notifications == 1
    assert unmatched.notifications == 0
    assert net.bytes_delivered == net.bytes_published  # one match only


def test_service_id_filtering():
    env = Environment()
    net = PubSubBroker(env)
    mine, other = MeasurementStore(), MeasurementStore()
    mine.subscribe_to(net, service_id="svc-1")
    other.subscribe_to(net, service_id="svc-2")
    _emit(env, net, service="svc-1")
    env.run(until=15)
    assert mine.notifications == 1
    assert other.notifications == 0


def test_distribution_latency_delays_delivery():
    env = Environment()
    net = MulticastChannel(env, latency_s=5.0)
    store = MeasurementStore()
    store.subscribe_to(net)
    _emit(env, net)
    env.run(until=12)
    assert store.notifications == 0  # sent at t=10, arrives at t=15
    env.run(until=16)
    assert store.notifications == 1


def test_negative_latency_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        MulticastChannel(env, latency_s=-1)


# ---------------------------------------------------------------------------
# Unsubscribe / subscription lifecycle
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("factory", [MulticastChannel, PubSubBroker])
def test_unsubscribe_stops_delivery(factory):
    env = Environment()
    net = factory(env)
    store = MeasurementStore()
    sub = store.subscribe_to(net)
    assert net.subscription_count == 1
    ds = _emit(env, net)
    env.run(until=15)
    assert store.notifications == 1
    net.unsubscribe(sub)
    assert net.subscription_count == 0
    assert not sub.active
    env.run(until=45)
    assert store.notifications == 1  # no deliveries after teardown
    net.unsubscribe(sub)  # idempotent


def test_subscription_cancel_shorthand():
    env = Environment()
    net = PubSubBroker(env)
    store = MeasurementStore()
    sub = store.subscribe_to(net)
    sub.cancel()
    sub.cancel()
    assert net.subscription_count == 0


def test_unsubscribe_foreign_subscription_rejected():
    env = Environment()
    net_a, net_b = PubSubBroker(env), PubSubBroker(env)
    sub = net_a.subscribe(lambda m: None)
    with pytest.raises(ValueError):
        net_b.unsubscribe(sub)


def test_route_cache_invalidated_by_subscription_churn():
    env = Environment()
    net = PubSubBroker(env)
    first, late = MeasurementStore(), MeasurementStore()
    first.subscribe_to(net, qualified_name="uk.ucl.a.b")
    ds = _emit(env, net)
    env.run(until=15)
    assert first.notifications == 1
    # the route for this header is now cached; a later subscriber must
    # still be seen by the next packet
    late.subscribe_to(net, qualified_name="uk.ucl.*")
    env.run(until=25)
    assert first.notifications == 2
    assert late.notifications == 1


def test_relay_stop_releases_subscription():
    from repro.monitoring import MonitoringRelay
    env = Environment()
    site_a, site_b = MulticastChannel(env), MulticastChannel(env)
    relay = MonitoringRelay(env, source=site_a, target=site_b)
    assert site_a.subscription_count == 1
    relay.stop()
    assert site_a.subscription_count == 0


# ---------------------------------------------------------------------------
# Lazy decode and delivery batching
# ---------------------------------------------------------------------------

def test_broker_skips_decode_when_nobody_matches():
    env = Environment()
    net = PubSubBroker(env)
    other = MeasurementStore()
    other.subscribe_to(net, qualified_name="com.sap.*")
    _emit(env, net)  # publishes uk.ucl.a.b
    env.run(until=15)
    assert other.notifications == 0
    assert net.packets_published == 1
    assert net.packets_decoded == 0  # routed away without materialising
    assert net.bytes_delivered == 0


def test_broker_decodes_once_for_many_subscribers():
    env = Environment()
    net = PubSubBroker(env)
    stores = [MeasurementStore() for _ in range(5)]
    for s in stores:
        s.subscribe_to(net, qualified_name="uk.ucl.*")
    _emit(env, net)
    env.run(until=15)
    assert all(s.notifications == 1 for s in stores)
    assert net.packets_decoded == 1  # shared by all five consumers


def test_multicast_counts_bytes_without_decoding_unmatched():
    env = Environment()
    net = MulticastChannel(env)
    other = MeasurementStore()
    other.subscribe_to(net, qualified_name="com.sap.*")
    _emit(env, net)
    env.run(until=15)
    assert other.notifications == 0
    assert net.bytes_delivered == net.bytes_published  # traversed the wire
    assert net.packets_decoded == 0                    # but never decoded


def test_same_instant_packets_share_one_delivery_event():
    env = Environment()
    net = PubSubBroker(env, latency_s=2.0)
    store = MeasurementStore()
    store.subscribe_to(net)
    ms = [Measurement("uk.ucl.a.b", "svc-1", "p-1", 0.0, (i,), seqno=i)
          for i in range(50)]
    for m in ms:
        net.publish(m)
    env.run(until=1.5)
    assert store.notifications == 0  # still in flight
    env.run(until=2.5)
    assert store.notifications == 50
    assert net.delivery_events == 1  # coalesced, not one process per packet


def test_delayed_batches_preserve_order_across_instants():
    env = Environment()
    net = PubSubBroker(env, latency_s=1.0)
    seen = []
    net.subscribe(lambda m: seen.append((env.now, m.seqno)))

    def producer(env):
        for i in range(3):
            net.publish(Measurement("uk.ucl.a.b", "svc-1", "p-1",
                                    env.now, (i,), seqno=i))
            net.publish(Measurement("uk.ucl.a.b", "svc-1", "p-1",
                                    env.now, (i,), seqno=100 + i))
            yield env.timeout(5)

    env.process(producer(env))
    env.run()
    assert seen == [(1.0, 0), (1.0, 100), (6.0, 1), (6.0, 101),
                    (11.0, 2), (11.0, 102)]
    assert net.delivery_events == 3


def test_publish_many_batches_delivery():
    env = Environment()
    net = PubSubBroker(env, latency_s=3.0)
    store = MeasurementStore()
    store.subscribe_to(net)
    ms = [Measurement("uk.ucl.a.b", "svc-1", "p-1", 0.0, (i,), seqno=i)
          for i in range(10)]
    net.publish_many(ms)
    assert net.packets_published == 10
    env.run()
    assert store.notifications == 10
    assert net.delivery_events == 1


def test_publish_many_packet_alignment_checked():
    env = Environment()
    net = PubSubBroker(env)
    m = Measurement("uk.ucl.a.b", "svc-1", "p-1", 0.0, (1,))
    with pytest.raises(ValueError):
        net.publish_many([m], packets=[])


def test_datasource_emit_all_now_publishes_batch():
    env = Environment()
    net = PubSubBroker(env, latency_s=1.0)
    store = MeasurementStore()
    store.subscribe_to(net)
    ds = DataSource(env, "ds", "svc-1", net)
    values = {"a.b.x": 1, "a.b.y": 2, "a.b.z": 3}
    for qname, v in values.items():
        probe = Probe(
            name=qname, qualified_name=qname,
            attributes=[ProbeAttribute("v", AttributeType.INTEGER)],
            collector=(lambda v=v: (v,)),
        )
        ds.add_probe(probe, start=False)
    ds.probes["a.b.y"].turn_off()
    emitted = ds.emit_all_now()
    assert [m.qualified_name for m in emitted] == ["a.b.x", "a.b.z"]
    env.run()
    assert store.notifications == 2
    assert net.delivery_events == 1
    assert store.value("svc-1", "a.b.z") == 3


def test_probe_emission_packets_byte_identical_to_reference_codec():
    from repro.monitoring import decode_measurement, encode_measurement

    env = Environment()
    captured = []

    class CapturingBroker(PubSubBroker):
        def publish(self, measurement, *, packet=None):
            captured.append((measurement, packet))
            super().publish(measurement, packet=packet)

    net = CapturingBroker(env)
    ds = DataSource(env, "ds", "svc-1", net)
    ds.add_probe(make_probe(rate=10))
    env.run(until=35)
    assert len(captured) == 3
    for measurement, packet in captured:
        assert packet == encode_measurement(measurement)
        assert decode_measurement(packet) == measurement


# ---------------------------------------------------------------------------
# MeasurementStore / Journal semantics
# ---------------------------------------------------------------------------

def test_store_latest_value_semantics():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    counter = {"n": 0}

    def collect():
        counter["n"] += 10
        return (counter["n"],)

    ds = DataSource(env, "ds", "svc-1", net)
    ds.add_probe(make_probe(collect, rate=10))
    env.run(until=35)
    assert store.value("svc-1", "uk.ucl.test.kpi") == 30
    assert store.value("svc-1", "uk.ucl.missing.kpi", default=-1) == -1
    assert store.age("svc-1", "uk.ucl.test.kpi", env.now) == pytest.approx(5.0)
    assert store.age("svc-1", "uk.ucl.missing.kpi", env.now) is None
    assert store.known_names("svc-1") == ["uk.ucl.test.kpi"]


def test_store_listener_fires_per_notification():
    store = MeasurementStore()
    seen = []
    store.add_listener(lambda m: seen.append(m.value))
    from repro.monitoring import Measurement
    store.notify(Measurement("a.b", "svc", "p", 0.0, (1,)))
    store.notify(Measurement("a.b", "svc", "p", 1.0, (2,)))
    assert seen == [1, 2]


def test_journal_window_statistics():
    env = Environment()
    net = MulticastChannel(env)
    journal = MeasurementJournal()
    journal.subscribe_to(net)
    values = iter([4, 8, 6, 2])

    ds = DataSource(env, "ds", "svc-1", net)
    ds.add_probe(make_probe(lambda: (next(values),), rate=10))
    env.run(until=45)
    assert journal.window_mean("svc-1", "uk.ucl.test.kpi", 0, 45) == 5.0
    assert journal.window_max("svc-1", "uk.ucl.test.kpi", 0, 25) == 8
    assert journal.window_min("svc-1", "uk.ucl.test.kpi", 15, 45) == 2
    assert journal.window_mean("svc-1", "uk.ucl.test.kpi", 100, 200) is None
    assert len(journal) == 4


def test_journal_gap_detection():
    from repro.monitoring import Measurement
    journal = MeasurementJournal()
    for t in (0, 30, 60, 200, 230):
        journal.notify(Measurement("a.b", "svc", "p", float(t), (1,)))
    gaps = journal.gaps_exceeding("svc", "a.b", max_gap_s=60)
    assert gaps == [(60.0, 200.0)]


# ---------------------------------------------------------------------------
# Information model integration
# ---------------------------------------------------------------------------

def test_infomodel_registration_and_elaboration():
    env = Environment()
    net = MulticastChannel(env)
    im = InformationModel()
    journal = MeasurementJournal()
    journal.subscribe_to(net)
    ds = DataSource(env, "ds", "svc-1", net, infomodel=im)
    probe = ds.add_probe(make_probe(lambda: (7,), rate=10))
    env.run(until=15)

    assert im.probe_name(probe.probe_id) == "test-probe"
    assert im.datasource_of(probe.probe_id) == ds.datasource_id
    state = im.probe_state(probe.probe_id)
    assert state["on"] is True and state["active"] is True
    assert state["datarate"] == 10

    (m,) = list(journal)
    elaborated = im.elaborate(m)
    assert len(elaborated) == 1
    assert elaborated[0].name == "value"
    assert elaborated[0].units == "units"
    assert elaborated[0].value == 7


def test_infomodel_state_tracks_probe_lifecycle():
    env = Environment()
    net = MulticastChannel(env)
    im = InformationModel()
    ds = DataSource(env, "ds", "svc-1", net, infomodel=im)
    probe = ds.add_probe(make_probe())
    ds.stop_probe("test-probe")
    assert im.probe_state(probe.probe_id)["active"] is False


def test_infomodel_unregister_removes_keys():
    env = Environment()
    net = MulticastChannel(env)
    im = InformationModel()
    ds = DataSource(env, "ds", "svc-1", net, infomodel=im)
    probe = ds.add_probe(make_probe())
    assert im.known_probes() == [probe.probe_id]
    im.unregister_probe(probe)
    assert im.known_probes() == []
    assert im.schema_of(probe.probe_id) is None


def test_infomodel_elaborate_unknown_probe_raises():
    from repro.monitoring import Measurement
    im = InformationModel()
    m = Measurement("a.b", "svc", "ghost-probe", 0.0, (1,))
    with pytest.raises(KeyError):
        im.elaborate(m)


def test_infomodel_elaborate_value_count_mismatch():
    from repro.monitoring import Measurement
    env = Environment()
    net = MulticastChannel(env)
    im = InformationModel()
    ds = DataSource(env, "ds", "svc-1", net, infomodel=im)
    probe = ds.add_probe(make_probe())
    bad = Measurement("a.b", "svc", probe.probe_id, 0.0, (1, 2, 3))
    with pytest.raises(ValueError):
        im.elaborate(bad)


# ---------------------------------------------------------------------------
# Monitoring agents
# ---------------------------------------------------------------------------

def test_agent_exposes_kpi_under_qualified_name():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    queue = {"size": 12}
    agent = MonitoringAgent(env, service_id="svc-1", component="GridMgmt",
                            network=net)
    agent.expose("uk.ucl.condor.schedd.queuesize",
                 lambda: queue["size"], frequency_s=30, units="jobs")
    env.run(until=35)
    assert store.value("svc-1", "uk.ucl.condor.schedd.queuesize") == 12
    queue["size"] = 20
    env.run(until=65)
    assert store.value("svc-1", "uk.ucl.condor.schedd.queuesize") == 20


def test_agent_coerces_to_declared_type():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    agent = MonitoringAgent(env, service_id="svc", component="c", network=net)
    agent.expose("a.b.count", lambda: 7.9, frequency_s=10,
                 type=AttributeType.INTEGER)
    env.run(until=15)
    assert store.value("svc", "a.b.count") == 7


def test_agent_aggregation_smooths_fluctuations():
    env = Environment()
    net = MulticastChannel(env)
    journal = MeasurementJournal()
    journal.subscribe_to(net)
    values = iter([0, 100, 0, 100])
    agent = MonitoringAgent(env, service_id="svc", component="c", network=net)
    agent.expose("a.b.load", lambda: next(values), frequency_s=10,
                 type=AttributeType.DOUBLE, aggregate="mean", window=4)
    env.run(until=45)
    published = [m.value for m in journal.stream("svc", "a.b.load")]
    assert published == [0.0, 50.0, pytest.approx(100 / 3), 50.0]


def test_agent_stop_halts_all_probes():
    env = Environment()
    net = MulticastChannel(env)
    store = MeasurementStore()
    store.subscribe_to(net)
    agent = MonitoringAgent(env, service_id="svc", component="c", network=net)
    agent.expose("a.b.x", lambda: 1, frequency_s=10)
    agent.expose("a.b.y", lambda: 2, frequency_s=10)
    env.run(until=15)
    assert store.notifications == 2
    agent.stop()
    env.run(until=100)
    assert store.notifications == 2


def test_aggregating_kpi_operations():
    raw = iter([1, 5, 3])
    agg = AggregatingKPI(lambda: next(raw), operation="max", window=2)
    assert agg() == 1
    assert agg() == 5
    assert agg() == 5  # window holds (5, 3)
    with pytest.raises(ValueError):
        AggregatingKPI(lambda: 1, operation="median")
    with pytest.raises(ValueError):
        AggregatingKPI(lambda: 1, window=0)


def test_aggregating_kpi_none_passthrough():
    agg = AggregatingKPI(lambda: None)
    assert agg() is None
