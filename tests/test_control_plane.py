"""Tests for the multi-tenant provisioning control plane (repro.control)."""

import pytest

from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
from repro.control import (
    Admitted,
    ControlPlane,
    Queued,
    Rejected,
    RequestState,
    RetryPolicy,
    TenantQuota,
    TenantUsage,
)
from repro.core.manifest import ManifestBuilder
from repro.sim import Environment

TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)


def make_veem(env, n_hosts=4, cpu=4, memory_mb=8192):
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=cpu, memory_mb=memory_mb,
                           timings=TIMINGS))
    return veem


def host_filler(name, *, instances=1, maximum=None, **placement):
    """A service whose every instance fills exactly one default host."""
    b = ManifestBuilder(name)
    b.component("app", image_mb=256, cpu=4, memory_mb=8192,
                initial=instances, minimum=instances,
                maximum=maximum or instances)
    if placement:
        b.site_placement("app", **placement)
    return b.build()


def drain_all(env, horizon=10_000):
    env.run(until=horizon)


# ---------------------------------------------------------------------------
# Typed outcomes and hard screens
# ---------------------------------------------------------------------------

def test_submit_returns_typed_outcomes():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 1))
    control.register_tenant("acme")
    first = control.submit("acme", host_filler("svc-a"))
    second = control.submit("acme", host_filler("svc-b"))
    assert isinstance(first, Admitted) and first.site == "s"
    assert first.request.state is RequestState.DEPLOYING
    assert first.request.decided.triggered
    assert isinstance(second, Queued)
    assert second.position == 1 and second.depth == 1
    assert second.request.state is RequestState.QUEUED
    assert not second.request.decided.triggered
    drain_all(env)
    assert first.request.state is RequestState.ACTIVE


def test_unknown_tenant_is_an_error():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 1))
    with pytest.raises(KeyError, match="unknown tenant"):
        control.submit("ghost", host_filler("svc"))


def test_quota_that_can_never_fit_rejects_outright():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 8))
    control.register_tenant("small", quota=TenantQuota(max_instances=2))
    out = control.submit("small", host_filler("big", instances=4))
    assert isinstance(out, Rejected) and "quota" in out.reason
    assert out.request.state is RequestState.REJECTED
    assert out.request.decided.triggered
    # nothing was reserved
    assert control.tenants["small"].usage.services == 0
    assert control.sites[0].headroom == 8


def test_worst_case_beyond_every_pool_rejects_outright():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s1", make_veem(env, 2))
    control.add_site("s2", make_veem(env, 3))
    control.register_tenant("acme")
    out = control.submit("acme", host_filler("huge", instances=4))
    assert isinstance(out, Rejected) and "capacity" in out.reason
    # an elastic ceiling counts, not just the floor
    out = control.submit("acme", host_filler("elastic", maximum=6))
    assert isinstance(out, Rejected) and "capacity" in out.reason
    # ... but a ceiling that fits the bigger site queues/admits normally
    assert isinstance(control.submit("acme", host_filler("ok", maximum=3)),
                      Admitted)


def test_instance_larger_than_host_type_rejects_outright():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 4))
    control.register_tenant("acme")
    big = (ManifestBuilder("oversized")
           .component("app", image_mb=64, cpu=16, memory_mb=4096).build())
    out = control.submit("acme", big)
    assert isinstance(out, Rejected) and "capacity" in out.reason


def test_backpressure_sheds_beyond_max_queue_depth():
    env = Environment()
    control = ControlPlane(env, max_queue_depth=2)
    control.add_site("s", make_veem(env, 1))
    control.register_tenant("acme")
    assert isinstance(control.submit("acme", host_filler("a")), Admitted)
    assert isinstance(control.submit("acme", host_filler("b")), Queued)
    assert isinstance(control.submit("acme", host_filler("c")), Queued)
    shed = control.submit("acme", host_filler("d"))
    assert isinstance(shed, Rejected) and "backpressure" in shed.reason
    assert control.counters["rejected"] == 1
    assert control.queue_depth == 2


# ---------------------------------------------------------------------------
# Queue draining, fairness, quotas under contention
# ---------------------------------------------------------------------------

def test_release_drains_queue_fifo_within_tenant():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 1))
    control.register_tenant("acme")
    first = control.submit("acme", host_filler("a"))
    q1 = control.submit("acme", host_filler("b"))
    q2 = control.submit("acme", host_filler("c"))
    drain_all(env, 100)
    control.release(first.request)
    drain_all(env, 200)
    # b (queued first) got the slot; c still waits
    assert q1.request.state is RequestState.ACTIVE
    assert q2.request.state is RequestState.QUEUED
    assert first.request.state is RequestState.RELEASED
    assert q1.request.wait_time and q1.request.wait_time > 0


def test_weighted_round_robin_split_of_freed_capacity():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 3))
    control.register_tenant("filler")
    control.register_tenant("light", weight=1)
    control.register_tenant("heavy", weight=2)
    filler = control.submit("filler", host_filler("wall", instances=3))
    light = [control.submit("light", host_filler(f"l{i}")) for i in range(3)]
    heavy = [control.submit("heavy", host_filler(f"h{i}")) for i in range(3)]
    assert all(isinstance(o, Queued) for o in light + heavy)
    drain_all(env, 100)
    control.release(filler.request)
    drain_all(env, 200)
    # 3 hosts freed at once: one WRR cycle grants light 1, heavy 2.
    assert [o.request.state for o in light] == [
        RequestState.ACTIVE, RequestState.QUEUED, RequestState.QUEUED]
    assert [o.request.state for o in heavy] == [
        RequestState.ACTIVE, RequestState.ACTIVE, RequestState.QUEUED]


def test_blocked_tenant_does_not_stall_others():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 3))
    control.register_tenant("bulky")
    control.register_tenant("nimble")
    wall = control.submit("bulky", host_filler("wall", instances=2))
    big = control.submit("bulky", host_filler("big", instances=2))
    small = control.submit("nimble", host_filler("small"))
    # bulky's 2-host head cannot fit the 1 free host; nimble's 1-host can.
    assert isinstance(wall, Admitted)
    assert isinstance(big, Queued)
    assert isinstance(small, Admitted)


def test_quota_holds_a_tenant_back_while_others_drain():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 4))
    control.register_tenant("capped", quota=TenantQuota(max_services=1))
    control.register_tenant("free")
    held = control.submit("capped", host_filler("c0"))
    over = control.submit("capped", host_filler("c1"))
    assert isinstance(held, Admitted)
    assert isinstance(over, Queued)     # fits capacity, blocked by quota
    other = control.submit("free", host_filler("f0"))
    assert isinstance(other, Admitted)  # quota block is per-tenant only
    drain_all(env, 100)
    control.release(held.request)
    drain_all(env, 200)
    assert over.request.state is RequestState.ACTIVE
    assert control.tenants["capped"].usage.services == 1


# ---------------------------------------------------------------------------
# Federated site selection
# ---------------------------------------------------------------------------

def test_selection_prefers_site_with_most_headroom():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("small", make_veem(env, 1))
    control.add_site("large", make_veem(env, 3))
    control.register_tenant("acme")
    sites = [control.submit("acme", host_filler(f"s{i}")).site
             for i in range(4)]
    # headroom ranking spreads load: large(3) first, then ties resolve to
    # registration order.
    assert sites == ["large", "large", "small", "large"]


def test_selection_honours_favour_avoid_and_trust():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("shady", make_veem(env, 4),
                     attributes={"trusted": False})
    control.add_site("home", make_veem(env, 2))
    control.add_site("partner", make_veem(env, 2))
    control.register_tenant("acme")
    favoured = control.submit(
        "acme", host_filler("f", favour=["partner"]))
    assert favoured.site == "partner"
    trusted_only = control.submit(
        "acme", host_filler("t", require_trusted=True))
    assert trusted_only.site in ("home", "partner")
    avoided = control.submit(
        "acme", host_filler("a", avoid=["shady", "home"]))
    assert avoided.site == "partner"
    # with every eligible site excluded the request can never fit
    nowhere = control.submit(
        "acme", host_filler("n", avoid=["shady", "home", "partner"]))
    assert isinstance(nowhere, Rejected) and "capacity" in nowhere.reason


# ---------------------------------------------------------------------------
# Retry with backoff (transient deploy failures)
# ---------------------------------------------------------------------------

def overdeclared_plane(env, retry=None):
    """A site whose admission controller *believes* in 2 hosts while only 1
    exists — admitted deployments can then fail with CapacityError, which is
    exactly the transient window the retry loop is for."""
    control = ControlPlane(env, retry=retry or RetryPolicy(
        max_attempts=3, initial_backoff_s=5.0))
    control.add_site("s", make_veem(env, 1), pool_hosts=2)
    control.register_tenant("acme")
    return control


def test_transient_deploy_failure_retries_then_succeeds():
    env = Environment()
    control = overdeclared_plane(
        env, retry=RetryPolicy(max_attempts=5, initial_backoff_s=5.0))
    first = control.submit("acme", host_filler("a"))
    second = control.submit("acme", host_filler("b"))
    assert isinstance(first, Admitted) and isinstance(second, Admitted)
    drain_all(env, 12)      # first is active; second has failed at least once
    control.release(first.request)
    drain_all(env, 10_000)
    assert second.request.state is RequestState.ACTIVE
    assert second.request.attempts > 1
    assert control.counters["retried"] >= 1
    retries = control.trace.query(source="control", kind="request.retry")
    assert retries and retries[0].details["request"] == "req-2"


def test_retries_exhausted_rejects_and_returns_reservation():
    env = Environment()
    control = overdeclared_plane(
        env, retry=RetryPolicy(max_attempts=2, initial_backoff_s=1.0))
    first = control.submit("acme", host_filler("a"))
    doomed = control.submit("acme", host_filler("b"))
    assert isinstance(doomed, Admitted)
    drain_all(env)          # never release: retries exhaust
    assert first.request.state is RequestState.ACTIVE
    assert doomed.request.state is RequestState.REJECTED
    assert "deploy failed after 2 attempt" in doomed.request.reason
    # reservation returned: quota usage and admission back to just `first`
    assert control.tenants["acme"].usage.services == 1
    assert control.sites[0].admission.admitted == [first.request.manifest]


# ---------------------------------------------------------------------------
# Capacity release paths and observability
# ---------------------------------------------------------------------------

def test_direct_manager_undeploy_still_frees_control_plane_capacity():
    """Capacity accounting hooks the ServiceManager, so an undeploy issued
    below the control plane cannot leak the reservation."""
    env = Environment()
    control = ControlPlane(env)
    site = control.add_site("s", make_veem(env, 1))
    control.register_tenant("acme")
    first = control.submit("acme", host_filler("a"))
    waiting = control.submit("acme", host_filler("b"))
    drain_all(env, 100)
    site.manager.undeploy(first.request.service)        # not control.release
    drain_all(env, 200)
    assert first.request.state is RequestState.RELEASED
    assert waiting.request.state is RequestState.ACTIVE


def test_release_requires_an_active_request():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 1))
    control.register_tenant("acme")
    out = control.submit("acme", host_filler("a"))
    with pytest.raises(ValueError, match="not active"):
        control.release(out.request)    # still DEPLOYING
    drain_all(env, 100)
    control.release(out.request)
    drain_all(env, 200)
    with pytest.raises(ValueError, match="not active"):
        control.release(out.request)    # already RELEASED


def test_counters_series_and_trace_tell_the_story():
    env = Environment()
    control = ControlPlane(env, max_queue_depth=1)
    control.add_site("s", make_veem(env, 1))
    control.register_tenant("acme")
    first = control.submit("acme", host_filler("a"))
    control.submit("acme", host_filler("b"))
    control.submit("acme", host_filler("c"))            # shed
    drain_all(env, 100)
    control.release(first.request)
    drain_all(env, 1_000)
    assert control.counters == {
        "submitted": 3, "admitted": 2, "queued": 1, "rejected": 1,
        "retried": 0, "released": 1}
    assert control.queue_depth == 0
    depth = control.series["queue.depth"]
    assert depth.maximum() == 1 and depth.current == 0
    waits = control.series["queue.wait_s"]
    assert waits.current > 0            # the drained request waited
    kinds = {r.kind for r in control.trace.query(source="control")}
    assert {"request.submitted", "request.queued", "request.admitted",
            "request.rejected", "request.active",
            "request.released"} <= kinds
    stats = control.stats()
    assert stats["tenants"]["acme"] == {
        "services": 1, "instances": 1, "queued": 0}


def test_tenant_services_are_attributed():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 4))
    control.register_tenant("acme")
    control.register_tenant("globex")
    control.submit("acme", host_filler("a"))
    control.submit("globex", host_filler("g"))
    drain_all(env, 100)
    acme = control.tenant_services("acme")
    assert [s.tenant for s in acme] == ["acme"]
    assert acme[0].lifecycle.accountant.tenant == "acme"
    assert len(control.tenant_services("globex")) == 1


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------

def test_tenant_usage_guards_against_double_release():
    from repro.cloud.capacity import demand_envelope
    usage = TenantUsage()
    envelope = demand_envelope(host_filler("x"))
    usage.add(envelope)
    usage.remove(envelope)
    with pytest.raises(ValueError, match="negative"):
        usage.remove(envelope)


def test_retry_policy_backoff_schedule():
    policy = RetryPolicy(max_attempts=5, initial_backoff_s=2.0,
                         multiplier=3.0, max_backoff_s=10.0)
    assert [policy.backoff(a) for a in (1, 2, 3, 4)] == [2.0, 6.0, 10.0, 10.0]
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        policy.backoff(0)


def test_duplicate_registration_is_refused():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, 1))
    with pytest.raises(ValueError, match="duplicate site"):
        control.add_site("s", make_veem(env, 1))
    control.register_tenant("acme")
    with pytest.raises(ValueError, match="duplicate tenant"):
        control.register_tenant("acme")


# ---------------------------------------------------------------------------
# Pinned submissions (the shard-replay path)
# ---------------------------------------------------------------------------

def test_pinned_submit_admits_on_the_named_site():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("a", make_veem(env, 1))
    control.add_site("b", make_veem(env, 4))
    control.register_tenant("acme")
    out = control.submit("acme", host_filler("svc"), site="a")
    assert isinstance(out, Admitted) and out.site == "a"
    drain_all(env)
    assert out.request.state is RequestState.ACTIVE


def test_pinned_submit_rejects_instead_of_queueing():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("a", make_veem(env, 1))
    control.register_tenant("acme")
    assert isinstance(control.submit("acme", host_filler("first"),
                                     site="a"), Admitted)
    out = control.submit("acme", host_filler("second"), site="a")
    assert isinstance(out, Rejected)
    assert "cannot admit" in out.reason
    assert control.queue_depth == 0


def test_pinned_submit_respects_site_eligibility():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("a", make_veem(env, 2))
    control.register_tenant("acme")
    manifest = host_filler("svc", avoid=("a",))
    out = control.submit("acme", manifest, site="a")
    assert isinstance(out, Rejected)
    assert "not eligible" in out.reason


def test_pinned_submit_respects_tenant_quota():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("a", make_veem(env, 4))
    control.register_tenant("acme", quota=TenantQuota(max_services=1))
    assert isinstance(control.submit("acme", host_filler("first"),
                                     site="a"), Admitted)
    out = control.submit("acme", host_filler("second"), site="a")
    assert isinstance(out, Rejected)
    assert "quota" in out.reason


def test_pinned_submit_unknown_site_is_an_error():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("a", make_veem(env, 2))
    control.register_tenant("acme")
    with pytest.raises(KeyError):
        control.submit("acme", host_filler("svc"), site="nope")
