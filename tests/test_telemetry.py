"""§17 telemetry pipeline: snapshot/merge machinery, flight recorder,
sim-time profiler, and the epoch-report protocol extensions."""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scale import ScaleConfig, run_scale
from repro.obs import (
    FlightRecorder,
    MetricError,
    MetricsRegistry,
    SimProfiler,
    SnapshotCursor,
    TimeConstraintAuditor,
    canonical_view,
    dump_flight,
)
from repro.obs.audit import audit_violation_strings
from repro.sim import Environment, EpochReport, SimError, TraceLog


# ---------------------------------------------------------------------------
# SnapshotCursor: incremental, compact, picklable
# ---------------------------------------------------------------------------

def test_cursor_counter_deltas_only():
    reg = MetricsRegistry()
    cur = SnapshotCursor()
    reg.counter("a.b.c").inc(3)
    snap = cur.snapshot(reg)
    assert snap == {("a.b.c", ()): ("counter", 3.0)}
    # unchanged counter does not ship again
    assert cur.snapshot(reg) == {}
    reg.counter("a.b.c").inc(2)
    assert cur.snapshot(reg) == {("a.b.c", ()): ("counter", 2.0)}


def test_cursor_gauge_ships_finals_on_change():
    reg = MetricsRegistry()
    cur = SnapshotCursor()
    g = reg.gauge("a.b.g", site="s0")
    g.set(7.0)
    key = ("a.b.g", (("site", "s0"),))
    assert cur.snapshot(reg) == {key: ("gauge", 7.0)}
    assert cur.snapshot(reg) == {}
    g.set(7.0)                       # same value: still nothing to ship
    assert cur.snapshot(reg) == {}
    g.dec(2.0)
    assert cur.snapshot(reg) == {key: ("gauge", 5.0)}


def test_cursor_histogram_ships_tails_in_order():
    reg = MetricsRegistry()
    cur = SnapshotCursor()
    h = reg.histogram("a.b.h")
    for v in (5.0, 1.0, 3.0):
        h.observe(v)
    assert cur.snapshot(reg)[("a.b.h", ())] == ("histogram", (5.0, 1.0, 3.0))
    # a percentile read between snapshots must NOT reshuffle the tail
    assert h.percentile(0.5) == 3.0
    h.observe(2.0)
    h.observe(4.0)
    assert cur.snapshot(reg)[("a.b.h", ())] == ("histogram", (2.0, 4.0))


def test_cursor_skips_views_and_empties():
    reg = MetricsRegistry()
    reg.register_view("a.b.view", lambda: 42.0)
    reg.counter("a.b.zero")          # created but never incremented
    reg.histogram("a.b.empty")
    cur = SnapshotCursor()
    assert cur.snapshot(reg) == {}


def test_cursor_baseline_discard_excludes_replay():
    reg = MetricsRegistry()
    reg.counter("a.b.c").inc(100)    # "pinned replay" increments
    cur = SnapshotCursor()
    cur.snapshot(reg)                # baseline, discarded
    reg.counter("a.b.c").inc(5)
    assert cur.snapshot(reg) == {("a.b.c", ()): ("counter", 5.0)}


def test_snapshot_payload_is_picklable():
    reg = MetricsRegistry()
    reg.counter("a.b.c", site="s1").inc()
    reg.histogram("a.b.h").observe(1.5)
    snap = SnapshotCursor().snapshot(reg)
    assert pickle.loads(pickle.dumps(snap)) == snap


# ---------------------------------------------------------------------------
# MetricsRegistry.merge_snapshot
# ---------------------------------------------------------------------------

def test_merge_snapshot_folds_all_kinds():
    src, dst = MetricsRegistry(), MetricsRegistry()
    src.counter("a.b.c").inc(3)
    src.gauge("a.b.g").set(9.0)
    src.histogram("a.b.h", site="s0").observe(2.5)
    dst.counter("a.b.c").inc(4)      # pre-existing value adds up
    dst.merge_snapshot(SnapshotCursor().snapshot(src))
    assert dst.counter("a.b.c").value == 7.0
    assert dst.gauge("a.b.g").value == 9.0
    assert dst.histogram("a.b.h", site="s0").count == 1
    assert dst.histogram("a.b.h", site="s0").sum == 2.5


def test_merge_snapshot_kind_conflict_raises():
    src, dst = MetricsRegistry(), MetricsRegistry()
    src.counter("a.b.c").inc()
    dst.gauge("a.b.c")
    with pytest.raises(MetricError, match="already registered"):
        dst.merge_snapshot(SnapshotCursor().snapshot(src))
    with pytest.raises(MetricError, match="unknown snapshot kind"):
        dst.merge_snapshot({("a.b.x", ()): ("sketch", 1.0)})


def test_histogram_merge_keeps_order_and_sum():
    a = MetricsRegistry().histogram("a.b.h")
    for v in (0.1, 0.2, 0.3):
        a.observe(v)
    b = MetricsRegistry().histogram("a.b.h")
    b.merge(a._values)
    assert b._values == [0.1, 0.2, 0.3]
    assert b.sum == a.sum            # bit-identical: same fold order
    assert b.percentile(1.0) == 0.3


# ---------------------------------------------------------------------------
# canonical_view
# ---------------------------------------------------------------------------

def test_canonical_view_strips_plane_and_sums():
    reg = MetricsRegistry()
    reg.counter("c.p.admitted", plane="plane1").inc(3)
    reg.counter("c.p.admitted", plane="plane9").inc(4)
    reg.counter("c.p.zero", plane="plane1")            # dropped: zero
    reg.register_view("c.p.depth", lambda: 5.0)        # dropped: view
    reg.histogram("c.p.empty")                         # dropped: empty
    reg.histogram("c.p.wait", plane="plane2").observe(1.0)
    reg.gauge("c.p.level", site="s0").set(2.0)
    view = canonical_view(reg)
    assert view == {
        "c.p.admitted": 7.0,
        "c.p.level{site=s0}": 2.0,
        "c.p.wait": reg.histogram("c.p.wait", plane="plane2").summary(),
    }


def test_canonical_view_is_deterministic_under_plane_renumbering():
    def build(plane):
        reg = MetricsRegistry()
        reg.counter("c.p.admitted", plane=plane).inc(2)
        reg.histogram("c.p.wait", plane=plane).observe(3.5)
        return canonical_view(reg)
    assert build("plane1") == build("plane42")


# ---------------------------------------------------------------------------
# Property: merged worker snapshots == the single-process registry
# ---------------------------------------------------------------------------

#: Disjoint name pools per kind — same (name, labels) key as two kinds is
#: a registration error, not a merge case.
_NAMES = {"counter": ("w.x.ca", "w.x.cb", "w.x.cc"),
          "gauge": ("w.x.ga", "w.x.gb"),
          "hist": ("w.x.ha", "w.x.hb")}

_op = st.sampled_from(("counter", "gauge", "hist")).flatmap(
    lambda kind: st.tuples(
        st.integers(min_value=0, max_value=2),        # worker
        st.just(kind),
        st.sampled_from(_NAMES[kind]),
        st.integers(min_value=1, max_value=100),      # int-valued: exact
    ))


def _apply(reg, worker, kind, name, value):
    if kind == "counter":
        # shared across workers: float addition of small ints is exact,
        # so any merge order reproduces the oracle total
        reg.counter(name).inc(float(value))
    elif kind == "gauge":
        reg.gauge(name, shard=f"w{worker}").set(float(value))
    else:
        # per-worker instruments, like the harness's site-labelled ones:
        # shipped tails replay in the owner's observation order
        reg.histogram(name, shard=f"w{worker}").observe(float(value))


@settings(max_examples=60, deadline=None)
@given(pre=st.lists(_op, max_size=10), ops=st.lists(_op, max_size=40),
       epochs=st.integers(min_value=1, max_value=4))
def test_merged_view_equals_single_process_view(pre, ops, epochs):
    oracle = MetricsRegistry()
    coordinator = MetricsRegistry()
    workers = [MetricsRegistry() for _ in range(3)]
    # "admission planning": the coordinator and the oracle both run it;
    # every worker replays it, then baselines it away
    for op in pre:
        _apply(oracle, *op)
        _apply(coordinator, *op)
        for reg in workers:
            _apply(reg, *op)
    cursors = [SnapshotCursor() for _ in workers]
    for cur, reg in zip(cursors, workers):
        cur.snapshot(reg)
    # the run: ops interleave globally (oracle order) and restrict to a
    # per-worker subsequence (shard order), with epoch barriers between
    chunk = max(1, len(ops) // epochs)
    for start in range(0, len(ops) or 1, chunk):
        for op in ops[start:start + chunk]:
            _apply(oracle, *op)
            _apply(workers[op[0]], *op)
        for cur, reg in zip(cursors, workers):
            coordinator.merge_snapshot(cur.snapshot(reg))
    assert canonical_view(coordinator) == canonical_view(oracle)


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

def _trace_env():
    env = Environment()
    return env, TraceLog(env)


def test_flight_recorder_keeps_last_n():
    env, trace = _trace_env()
    rec = FlightRecorder(trace, capacity=4)
    for i in range(10):
        trace.emit("test", "tick", seq=i)
    snap = rec.snapshot()
    assert [r["details"]["seq"] for r in snap] == [6, 7, 8, 9]
    assert rec.seen == 10
    with pytest.raises(ValueError):
        FlightRecorder(trace, capacity=0)


def test_flight_recorder_snapshot_is_portable():
    env, trace = _trace_env()
    rec = FlightRecorder(trace, capacity=8)
    trace.emit("test", "obj", payload=object(), ok=True, level=1.5)
    snap = rec.snapshot()
    assert pickle.loads(pickle.dumps(snap)) == snap
    json.dumps(snap)                 # JSON-safe too
    details = snap[0]["details"]
    assert details["ok"] is True and details["level"] == 1.5
    assert isinstance(details["payload"], str)


def test_flight_recorder_dump_and_close(tmp_path):
    env, trace = _trace_env()
    rec = FlightRecorder(trace, capacity=4)
    trace.emit("test", "tick", seq=1)
    path = rec.dump(tmp_path / "f.jsonl", reason="unit test")
    lines = [json.loads(line) for line
             in open(path).read().splitlines()]
    assert lines[0]["record"] == "flight"
    assert lines[0]["reason"] == "unit test"
    assert lines[0]["captured"] == 1 and lines[0]["capacity"] == 4
    assert lines[1]["kind"] == "tick"
    rec.close()
    trace.emit("test", "tick", seq=2)
    assert len(rec.snapshot()) == 1  # unsubscribed: ring frozen


def test_dump_flight_module_function(tmp_path):
    path = dump_flight(tmp_path / "d.jsonl",
                       ({"time": 1.0, "kind": "x"},), reason="r")
    lines = open(path).read().splitlines()
    assert json.loads(lines[0])["captured"] == 1
    assert json.loads(lines[1]) == {"time": 1.0, "kind": "x"}


# ---------------------------------------------------------------------------
# Sim-time profiler
# ---------------------------------------------------------------------------

def test_profiler_refused_on_reference_kernel():
    env = Environment(reference=True)
    with pytest.raises(SimError, match="reference"):
        SimProfiler().attach(env)


def test_profiler_counts_every_dispatch():
    cfg = ScaleConfig(sites=2, services=8, hours=0.25, settle_s=120.0)
    profiler = SimProfiler()
    report = run_scale(cfg, profiler=profiler)
    assert profiler.total_events == report.events_processed
    assert profiler.total_wall_s > 0.0
    layers = {layer for layer, _kind in profiler.by_key}
    assert "sessions" in layers      # the session drivers
    text = profiler.render()
    assert "sim profile" in text and "events" in text


def test_profiler_does_not_change_outcomes():
    cfg = ScaleConfig(sites=2, services=8, hours=0.25, settle_s=120.0,
                      check_invariants=True)
    plain = run_scale(cfg)
    profiled = run_scale(cfg, profiler=SimProfiler())
    assert profiled.decision_outcomes() == plain.decision_outcomes()
    assert profiled.events_processed == plain.events_processed


def test_profiler_chrome_trace_shape():
    cfg = ScaleConfig(sites=2, services=8, hours=0.25)
    profiler = SimProfiler(bucket_s=300.0)
    run_scale(cfg, profiler=profiler)
    doc = profiler.chrome_trace()
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters and all(e["ts"] >= 0 for e in counters)
    assert doc["otherData"]["totals"]
    json.dumps(doc)                  # exportable


def test_profiler_rejected_under_sharding():
    cfg = ScaleConfig(sites=2, services=8, hours=0.25, procs=2)
    with pytest.raises(ValueError, match="procs=1"):
        run_scale(cfg, profiler=SimProfiler())


def test_profile_hook_clearable():
    env = Environment()
    seen = []
    env.profile(lambda e, cbs, w: seen.append(type(e).__name__))
    env.timeout(1.0)
    env.run()
    assert seen == ["Timeout"]
    env.profile(None)
    env.timeout(1.0)
    env.run()
    assert seen == ["Timeout"]       # hook removed


# ---------------------------------------------------------------------------
# Epoch-report protocol + incremental audit
# ---------------------------------------------------------------------------

def test_epoch_report_telemetry_defaults():
    report = EpochReport(shard=0, now=1.0)
    assert report.metrics is None and report.findings == ()
    assert pickle.loads(pickle.dumps(report)).findings == ()


def test_incremental_audit_is_exactly_once():
    """Per-epoch audits with a span-id cursor must union to the same
    findings as one end-of-run audit."""
    cfg = ScaleConfig(sites=2, services=8, hours=0.25, settle_s=120.0)
    # one full single-process run, then replay its trace in two cursor
    # chunks: the real worker advances the cursor between epochs; here
    # the same contract is checked on a finished trace split by span id.
    from repro.control import ControlPlane
    from repro.experiments.scale import (
        _draw_profiles, _scale_manifest, _start_session_driver,
        _submit_all, _attach_agent, _build_site_veem, _register_tenants,
        WARMUP_S)
    env = Environment()
    control = ControlPlane(env)
    veems = []
    for name in ("site-0", "site-1"):
        veem = _build_site_veem(env, cfg, name, control.trace)
        veems.append(veem)
        control.add_site(name, veem)
    _register_tenants(control, cfg)
    requests, *_ = _submit_all(control, cfg, _scale_manifest(cfg))
    states = [_start_session_driver(env, p, cfg)
              for p in _draw_profiles(cfg, requests)]
    env.run(until=WARMUP_S)
    site_by_name = {s.name: s for s in control.sites}
    for request, state in zip(requests, states):
        if request.service is not None:
            _attach_agent(env, cfg, site_by_name[request.site].manager,
                          request.service_id, state)
    auditor = TimeConstraintAuditor(control.trace)
    env.run(until=cfg.duration_s / 2)
    first = auditor.audit(min_span_id=0).findings
    cursor = max(control.trace.spans) + 1 if control.trace.spans else 0
    env.run(until=cfg.duration_s + cfg.settle_s)
    second = auditor.audit(min_span_id=cursor).findings
    full = auditor.audit().findings
    assert len(first) + len(second) == len(full)
    assert len(full) > 0             # the run actually fired rules
    assert (audit_violation_strings(first + second)
            == audit_violation_strings(full))
    ids = [f.firing_span_id for f in first + second]
    assert sorted(ids) == sorted(f.firing_span_id for f in full)
