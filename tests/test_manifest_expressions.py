"""Tests for the elasticity condition expression language."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manifest import (
    BinaryOp,
    BooleanOp,
    Comparison,
    ExpressionError,
    KPIRef,
    Literal,
    UnaryOp,
    parse_expression,
)


def bind(**values):
    """Bindings from keyword args with underscores for dots."""
    table = {k.replace("__", "."): v for k, v in values.items()}
    return lambda name: table.get(name)


# ---------------------------------------------------------------------------
# Evaluation semantics
# ---------------------------------------------------------------------------

def test_literal_and_arithmetic():
    expr = parse_expression("2 + 3 * 4")
    assert expr.evaluate(bind()) == 14


def test_precedence_and_parentheses():
    assert parse_expression("(2 + 3) * 4").evaluate(bind()) == 20
    assert parse_expression("10 - 4 - 3").evaluate(bind()) == 3  # left assoc
    assert parse_expression("12 / 2 / 3").evaluate(bind()) == 2


def test_unary_minus():
    assert parse_expression("-5 + 2").evaluate(bind()) == -3
    assert parse_expression("--5").evaluate(bind()) == 5


def test_comparison_yields_one_or_zero():
    """OCL semantics: 'then result = 1 else result = 0'."""
    assert parse_expression("5 > 4").evaluate(bind()) == 1.0
    assert parse_expression("5 < 4").evaluate(bind()) == 0.0
    assert parse_expression("5 >= 5").evaluate(bind()) == 1.0
    assert parse_expression("5 <= 4").evaluate(bind()) == 0.0
    assert parse_expression("5 == 5").evaluate(bind()) == 1.0
    assert parse_expression("5 != 5").evaluate(bind()) == 0.0


def test_boolean_operators():
    assert parse_expression("(1 > 0) && (2 > 1)").evaluate(bind()) == 1.0
    assert parse_expression("(1 > 0) && (2 < 1)").evaluate(bind()) == 0.0
    assert parse_expression("(1 < 0) || (2 > 1)").evaluate(bind()) == 1.0
    assert parse_expression("!(1 > 0)").evaluate(bind()) == 0.0
    assert parse_expression("!(1 < 0)").evaluate(bind()) == 1.0


def test_kpi_reference_reads_bindings():
    expr = parse_expression("@uk.ucl.condor.schedd.queuesize > 4")
    assert expr.evaluate(bind(uk__ucl__condor__schedd__queuesize=10)) == 1.0
    assert expr.evaluate(bind(uk__ucl__condor__schedd__queuesize=2)) == 0.0


def test_kpi_reference_default_fallback():
    expr = parse_expression("@a.b > 0", defaults={"a.b": 5})
    assert expr.evaluate(bind()) == 1.0  # no record → default 5


def test_kpi_reference_missing_without_default_raises():
    expr = parse_expression("@a.b > 0")
    with pytest.raises(ExpressionError, match="no monitoring record"):
        expr.evaluate(bind())


def test_division_by_zero_raises():
    expr = parse_expression("1 / @a.b", defaults={"a.b": 0})
    with pytest.raises(ExpressionError, match="division by zero"):
        expr.evaluate(bind())


def test_holds_predicate():
    assert parse_expression("1 > 0").holds(bind())
    assert not parse_expression("0 > 1").holds(bind())
    # Numeric top-level expressions fire when positive.
    assert parse_expression("3 - 1").holds(bind())
    assert not parse_expression("1 - 3").holds(bind())


def test_paper_rule_expression():
    """The exact §6.1.2 scale-up condition."""
    text = ("(@uk.ucl.condor.schedd.queuesize / "
            "(@uk.ucl.condor.exec.instances.size + 1) > 4) && "
            "(@uk.ucl.condor.exec.instances.size < 16)")
    expr = parse_expression(text)
    assert expr.kpi_references() == {
        "uk.ucl.condor.schedd.queuesize",
        "uk.ucl.condor.exec.instances.size",
    }
    # 200 queued, 2 instances → 200/3 > 4 and 2 < 16: fire.
    assert expr.holds(bind(uk__ucl__condor__schedd__queuesize=200,
                           uk__ucl__condor__exec__instances__size=2))
    # 200 queued but already 16 instances: hold off.
    assert not expr.holds(bind(uk__ucl__condor__schedd__queuesize=200,
                               uk__ucl__condor__exec__instances__size=16))
    # 8 queued, 2 instances → 8/3 < 4: hold off.
    assert not expr.holds(bind(uk__ucl__condor__schedd__queuesize=8,
                               uk__ucl__condor__exec__instances__size=2))


def test_no_short_circuit_surfaces_missing_kpis():
    expr = parse_expression("(0 > 1) && (@a.b > 0)")
    with pytest.raises(ExpressionError):
        expr.evaluate(bind())


# ---------------------------------------------------------------------------
# Parsing errors
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("text", [
    "", "   ", "1 +", "(1 > 0", "1 > 0)", "@singleword > 1", "1 ** 2",
    "&& 1", "1 2", "@ a.b", "foo > 1",
])
def test_malformed_expressions_rejected(text):
    with pytest.raises(ExpressionError):
        parse_expression(text)


def test_ast_node_validation():
    with pytest.raises(ExpressionError):
        UnaryOp("~", Literal(1))
    with pytest.raises(ExpressionError):
        BinaryOp("%", Literal(1), Literal(2))
    with pytest.raises(ExpressionError):
        Comparison("~=", Literal(1), Literal(2))
    with pytest.raises(ExpressionError):
        BooleanOp("XOR", Literal(1), Literal(2))
    with pytest.raises(ValueError):
        KPIRef("notdotted")


# ---------------------------------------------------------------------------
# Unparse round trip
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("text", [
    "1 + 2 * 3",
    "(@a.b / (@c.d + 1) > 4) && (@c.d < 16)",
    "!(@a.b == 0) || (@a.b >= 10)",
    "-3.5 + @x.y",
])
def test_unparse_round_trip(text):
    expr = parse_expression(text, defaults={"a.b": 0, "c.d": 0, "x.y": 0})
    reparsed = parse_expression(expr.unparse(),
                                defaults={"a.b": 0, "c.d": 0, "x.y": 0})
    bindings = bind(a__b=7, c__d=3, x__y=1.5)
    assert expr.evaluate(bindings) == reparsed.evaluate(bindings)


# ---------------------------------------------------------------------------
# Property-based: random expression trees survive unparse→parse→evaluate
# ---------------------------------------------------------------------------

_numbers = st.floats(min_value=0.1, max_value=1e6,
                     allow_nan=False, allow_infinity=False)


def _exprs(depth=3):
    base = st.one_of(
        _numbers.map(Literal),
        st.sampled_from(["a.b", "c.d", "e.f.g"]).map(
            lambda n: KPIRef(n, default=1.0)),
    )
    if depth == 0:
        return base
    sub = _exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: BinaryOp(*t)),
        st.tuples(st.sampled_from([">", "<", ">=", "<=", "==", "!="]),
                  sub, sub).map(lambda t: Comparison(*t)),
        st.tuples(st.sampled_from(["&&", "||"]), sub, sub).map(
            lambda t: BooleanOp(*t)),
        sub.map(lambda e: UnaryOp("!", e)),
    )


@given(expr=_exprs())
@settings(max_examples=200)
def test_unparse_parse_evaluate_identity(expr):
    bindings = bind(a__b=2.0, c__d=3.0, e__f__g=5.0)
    reparsed = parse_expression(
        expr.unparse(), defaults={"a.b": 1.0, "c.d": 1.0, "e.f.g": 1.0})
    assert reparsed.evaluate(bindings) == pytest.approx(
        expr.evaluate(bindings))
    assert reparsed.kpi_references() == expr.kpi_references()
