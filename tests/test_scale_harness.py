"""Tests for the federation scale harness (``python -m repro scale``)."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import ScaleConfig, ScaleReport, run_scale
from repro.experiments.scale import SESSIONS_KPI, verify_against_oracle
from repro.sim import read_peak_rss_kb

SRC = str(Path(__file__).resolve().parent.parent / "src")


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ValueError):
        ScaleConfig(sites=0)
    with pytest.raises(ValueError):
        ScaleConfig(services=0)
    with pytest.raises(ValueError):
        ScaleConfig(hours=0)
    with pytest.raises(ValueError):
        ScaleConfig(tenants=0)
    with pytest.raises(ValueError):
        ScaleConfig(elastic_fraction=1.5)


def test_config_pool_sizing_admits_whole_ceiling():
    cfg = ScaleConfig(sites=4, services=40)
    # 10 services/site, ceiling 2 instances each, 4 VMs/host -> 5 hosts + 1.
    assert cfg.services_per_site == 10
    assert cfg.hosts_per_site == 6
    assert cfg.duration_s == 3600.0


def test_config_rejects_vm_larger_than_host():
    with pytest.raises(ValueError):
        ScaleConfig(vm_cpu=8.0).hosts_per_site


# ---------------------------------------------------------------------------
# A small end-to-end run
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_report():
    return run_scale(ScaleConfig(sites=2, services=12, hours=0.5,
                                 tenants=3, random_seed=7))


def test_small_run_admits_everything(small_report):
    r = small_report
    assert r.admitted == 12
    assert r.queued == 0 and r.rejected == 0


def test_small_run_scales_the_fleet(small_report):
    # Some services burst past the scale-up threshold (elastic_fraction
    # 0.25, seed 7), so the peak fleet exceeds the initial one-VM-each.
    assert small_report.peak_vms > 12


def test_small_run_report_metrics(small_report):
    r = small_report
    assert r.events_processed > 0
    assert r.wall_s > 0
    assert r.events_per_sec > 0
    assert r.wall_s_per_sim_hour == pytest.approx(r.wall_s / 0.5)
    assert r.peak_rss_kb > 0
    assert r.rss_mb_per_1k_vms > 0
    assert r.peak_queue_depth >= 0


def test_small_run_render_mentions_all_headline_metrics(small_report):
    text = small_report.render()
    assert "events/sec" in text
    assert "wall-clock/sim-h" in text
    assert "per 1k VMs" in text
    assert "timer wheel" in text


# ---------------------------------------------------------------------------
# Wheel vs reference kernel on the full harness
# ---------------------------------------------------------------------------

def test_harness_is_kernel_invariant():
    """The same scale workload on the wheel and the heap oracle must agree
    on every simulation-visible outcome (wall-clock and RSS aside)."""
    cfg = dict(sites=2, services=10, hours=0.25, tenants=2, random_seed=11)
    wheel = run_scale(ScaleConfig(**cfg))
    heap = run_scale(ScaleConfig(reference=True, **cfg))
    assert wheel.reference is False and heap.reference is True
    for field in ("admitted", "queued", "rejected", "peak_vms",
                  "peak_queue_depth", "events_processed", "dead_skipped"):
        assert getattr(wheel, field) == getattr(heap, field), field


def test_same_seed_replays_identically():
    cfg = ScaleConfig(sites=2, services=8, hours=0.25, random_seed=3)
    a, b = run_scale(cfg), run_scale(cfg)
    assert a.events_processed == b.events_processed
    assert a.peak_vms == b.peak_vms
    assert a.peak_queue_depth == b.peak_queue_depth


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_scale_smoke():
    out = subprocess.run(
        [sys.executable, "-m", "repro", "scale", "--sites", "2",
         "--services", "8", "--hours", "0.25", "--seed", "5"],
        capture_output=True, text=True, env={"PYTHONPATH": SRC, "PATH": ""},
        check=True)
    assert "events/sec" in out.stdout
    assert "per 1k VMs" in out.stdout


def test_sessions_kpi_name_is_stable():
    # The manifest rules and the monitoring agents must agree on this name.
    assert SESSIONS_KPI == "scale.app.sessions"


# ---------------------------------------------------------------------------
# Sharded execution vs the single-process oracle
# ---------------------------------------------------------------------------

def test_sharded_run_matches_oracle_decision_for_decision():
    """`--procs 4` must reproduce the single-process oracle's admission
    outcomes, peak/final fleet sizes, and per-site fleets exactly."""
    cfg = ScaleConfig(sites=4, services=24, hours=0.5, tenants=3,
                      random_seed=7, procs=4, epoch_s=300.0)
    sharded, oracle, divergences = verify_against_oracle(cfg)
    assert divergences == []
    assert sharded.procs == 4 and oracle.procs == 1
    assert sharded.admitted == oracle.admitted
    assert sharded.queued == oracle.queued
    assert sharded.rejected == oracle.rejected
    assert sharded.peak_vms == oracle.peak_vms
    assert sharded.final_vms == oracle.final_vms
    assert sharded.site_fleets == oracle.site_fleets


def test_sharded_metrics_merge_matches_oracle():
    """Merged worker telemetry must reproduce the single-process registry
    exactly on the CI smoke shape: every counter total, gauge final and
    histogram summary in the canonical view, plus the §4.2.3 audit tallies
    — and the report's RSS must aggregate the worker processes."""
    cfg = ScaleConfig(sites=4, services=40, hours=0.5, tenants=4,
                      random_seed=7, procs=2, epoch_s=600.0,
                      check_invariants=True)
    sharded, oracle, divergences = verify_against_oracle(cfg)
    assert divergences == []
    assert sharded.metrics  # telemetry actually shipped
    assert sharded.metrics == oracle.metrics
    assert any(key.startswith("cloud.veem.submitted")
               for key in sharded.metrics)
    assert any(key.startswith("control.plane.queue_wait_s")
               for key in sharded.metrics)
    assert sharded.audit_findings == oracle.audit_findings
    assert sharded.audit_violations == oracle.audit_violations
    assert sharded.peak_rss_kb > read_peak_rss_kb()


def test_sharded_rss_aggregates_workers():
    """Peak RSS under --procs > 1 must include the worker processes, so
    it always exceeds a lone coordinator's footprint."""
    cfg = ScaleConfig(sites=2, services=8, hours=0.25, random_seed=3,
                      procs=2)
    report = run_scale(cfg)
    # coordinator + 2 interpreters: strictly more than any one process
    assert report.peak_rss_kb > read_peak_rss_kb()


def test_sharded_more_procs_than_sites():
    """Empty shards (procs > sites) must be harmless."""
    cfg = ScaleConfig(sites=2, services=8, hours=0.25, random_seed=3)
    single = run_scale(cfg)
    sharded = run_scale(ScaleConfig(sites=2, services=8, hours=0.25,
                                    random_seed=3, procs=3))
    assert sharded.decision_outcomes() == single.decision_outcomes()


def test_cli_scale_verify_oracle_smoke():
    out = subprocess.run(
        [sys.executable, "-m", "repro", "scale", "--sites", "2",
         "--services", "8", "--hours", "0.25", "--seed", "5",
         "--procs", "2", "--verify-oracle"],
        capture_output=True, text=True, env={"PYTHONPATH": SRC, "PATH": ""},
        check=True)
    assert "oracle agreement" in out.stdout
