"""Tests for the expression compile step (AST → flat closure).

The compiled path must be observationally identical to the reference
tree-walk (:meth:`Expression.interpret`): same values, same errors, same
evaluation order — compilation is allowed to be faster, never different.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manifest import (
    BinaryOp,
    BooleanOp,
    Comparison,
    ExpressionError,
    KPIRef,
    Literal,
    UnaryOp,
    parse_expression,
)


def bind(**values):
    table = {k.replace("__", "."): v for k, v in values.items()}
    return lambda name: table.get(name)


# ---------------------------------------------------------------------------
# Compiled vs interpreted equivalence
# ---------------------------------------------------------------------------

_numbers = st.floats(min_value=0.1, max_value=1e6,
                     allow_nan=False, allow_infinity=False)

# KPIRefs deliberately include undefaulted names and divisions so random
# trees exercise the error paths, not just the happy path.
_refs = st.one_of(
    st.sampled_from(["a.b", "c.d"]).map(lambda n: KPIRef(n, default=1.0)),
    st.sampled_from(["miss.ing", "e.f.g"]).map(lambda n: KPIRef(n)),
)


def _exprs(depth=3):
    base = st.one_of(_numbers.map(Literal), _refs)
    if depth == 0:
        return base
    sub = _exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "/"]), sub, sub).map(
            lambda t: BinaryOp(*t)),
        st.tuples(st.sampled_from([">", "<", ">=", "<=", "==", "!="]),
                  sub, sub).map(lambda t: Comparison(*t)),
        st.tuples(st.sampled_from(["&&", "||"]), sub, sub).map(
            lambda t: BooleanOp(*t)),
        sub.map(lambda e: UnaryOp("!", e)),
        sub.map(lambda e: UnaryOp("-", e)),
    )


def _outcome(fn, bindings):
    try:
        return ("value", fn(bindings))
    except ExpressionError as exc:
        return ("error", str(exc))


@given(expr=_exprs())
@settings(max_examples=300)
def test_compiled_matches_interpreted(expr):
    """Value-or-error equivalence over random trees and partial bindings."""
    for bindings in (
        bind(a__b=2.0, c__d=3.0, e__f__g=5.0, miss__ing=0.5),
        bind(a__b=2.0, c__d=0.0),   # undefaulted refs unbound → errors
        bind(),                      # only defaults resolvable
    ):
        interpreted = _outcome(expr.interpret, bindings)
        compiled = _outcome(expr.evaluate, bindings)
        if interpreted[0] == "value":
            assert compiled[0] == "value"
            assert compiled[1] == pytest.approx(interpreted[1], nan_ok=True)
        else:
            assert compiled == interpreted


def test_compile_is_cached():
    expr = parse_expression("@a.b > 4", defaults={"a.b": 0})
    assert expr.compile() is expr.compile()
    assert expr.evaluate(bind(a__b=9)) == 1.0


def test_constant_folding():
    fn = parse_expression("2 + 3 * 4").compile()
    assert fn.compiled_source == "lambda b: 14.0"
    assert fn(bind()) == 14.0


def test_constant_error_still_raises_every_call():
    expr = parse_expression("1 / (2 - 2)")
    for _ in range(2):
        with pytest.raises(ExpressionError, match="division by zero"):
            expr.evaluate(bind())


def test_partial_folding_inside_live_tree():
    expr = parse_expression("@a.b + (2 + 3)", defaults={"a.b": 0})
    assert "5.0" in expr.compile().compiled_source
    assert expr.evaluate(bind(a__b=1)) == 6.0


def test_short_circuit_only_when_operand_total():
    # Right side fully defaulted → provably total → native `and`.
    safe = parse_expression("(@a.b > 1) && (@c.d < 5)",
                            defaults={"a.b": 0, "c.d": 0})
    assert " and " in safe.compile().compiled_source
    # Right side lacks a default → may raise → both sides forced via `&`.
    unsafe = parse_expression("(@a.b > 1) && (@c.d < 5)",
                              defaults={"a.b": 0})
    assert " & " in unsafe.compile().compiled_source


def test_compiled_no_short_circuit_surfaces_missing_kpis():
    expr = parse_expression("(0 > 1) && (@a.b > 0)")
    with pytest.raises(ExpressionError, match="no monitoring record"):
        expr.evaluate(bind())
    expr = parse_expression("(2 > 1) || (@a.b > 0)")
    with pytest.raises(ExpressionError, match="no monitoring record"):
        expr.evaluate(bind())


def test_division_by_zero_same_message_both_paths():
    expr = parse_expression("@a.b / @c.d", defaults={"a.b": 1, "c.d": 0})
    bindings = bind()
    with pytest.raises(ExpressionError) as interpreted:
        expr.interpret(bindings)
    with pytest.raises(ExpressionError) as compiled:
        expr.evaluate(bindings)
    assert str(compiled.value) == str(interpreted.value)


def test_constant_divisor_is_inlined():
    fn = parse_expression("@a.b / 4", defaults={"a.b": 0}).compile()
    assert "_div" not in fn.compiled_source
    assert fn(bind(a__b=10)) == 2.5


# ---------------------------------------------------------------------------
# Well-typed errors from misbehaving bindings (never bare TypeError/KeyError)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("evaluate", [
    lambda e, b: e.interpret(b),
    lambda e, b: e.evaluate(b),
], ids=["interpreted", "compiled"])
def test_raising_bindings_become_expression_error(evaluate):
    expr = KPIRef("a.b", default=1.0)

    def key_error(name):
        raise KeyError(name)

    with pytest.raises(ExpressionError, match="a.b"):
        evaluate(expr, key_error)
    with pytest.raises(ExpressionError, match="a.b"):
        evaluate(expr, None)  # not even callable → TypeError inside


def test_walk_visits_every_node():
    expr = parse_expression("(@a.b + 1) > 2 && !(@c.d < 5)",
                            defaults={"a.b": 0, "c.d": 0})
    names = [type(node).__name__ for node in expr.walk()]
    assert names.count("KPIRef") == 2
    assert "BooleanOp" in names and "UnaryOp" in names
