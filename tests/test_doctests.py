"""Run the docstring examples shipped with the public API."""

import doctest

import pytest

import repro
import repro.core.manifest.builder
import repro.sim.kernel


@pytest.mark.parametrize("module", [
    repro,
    repro.core.manifest.builder,
    repro.sim.kernel,
])
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
