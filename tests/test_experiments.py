"""Integration tests for the evaluation harness (scaled-down workloads).

Full-size runs live in the benchmarks; here we verify the harness mechanics
and the qualitative shape of the results on small, fast workloads.
"""

import pytest

from repro.core.manifest import ensure_valid
from repro.experiments import (
    TestbedConfig,
    extract_series,
    polymorph_manifest,
    render_ascii_chart,
    render_run,
    run_dedicated,
    run_elastic,
    table3,
)
from repro.experiments.weekly import WeeklyConfig, run_week
from repro.grid import PolymorphSearchConfig

SMALL = PolymorphSearchConfig(
    seed_durations_s=(300.0, 450.0),
    refinements_per_seed=24,
    refinement_mean_s=60.0,
    setup_s=20, gather_s=20, generate_s=5,
)


@pytest.fixture(scope="module")
def small_runs():
    cfg = TestbedConfig()
    return run_dedicated(SMALL, cfg), run_elastic(SMALL, cfg)


def test_manifest_is_valid_and_matches_paper_structure():
    manifest = polymorph_manifest(TestbedConfig())
    ensure_valid(manifest)
    assert manifest.system("exec").instances.maximum == 16
    assert dict(manifest.placement.per_host_caps)["exec"] == 4
    rule_names = {r.name for r in manifest.elasticity_rules}
    assert rule_names == {"AdjustClusterSizeUp", "BootstrapCluster",
                          "AdjustClusterSizeDown"}
    up = next(r for r in manifest.elasticity_rules
              if r.name == "AdjustClusterSizeUp")
    assert up.trigger.time_constraint_ms == 5000
    assert "uk.ucl.condor.schedd.queuesize" in up.kpi_references()


def test_testbed_config_validation():
    with pytest.raises(ValueError):
        TestbedConfig(trigger_mode="psychic")
    with pytest.raises(ValueError):
        TestbedConfig(bootstrap_instances=0)


def test_dedicated_run_completes_all_jobs(small_runs):
    dedicated, _ = small_runs
    assert dedicated.jobs_completed == SMALL.total_jobs == 50
    assert dedicated.mean_nodes_run == 16
    assert dedicated.peak_nodes == 16
    assert dedicated.shutdown_time_s is None


def test_elastic_run_completes_all_jobs(small_runs):
    _, elastic = small_runs
    assert elastic.jobs_completed == SMALL.total_jobs
    assert elastic.peak_nodes <= 16


def test_elastic_slower_but_cheaper(small_runs):
    """The paper's hypothesis at small scale: modest extra runtime, real
    resource saving."""
    dedicated, elastic = small_runs
    t = table3(dedicated, elastic)
    assert t["extra_run_time"] > 0
    assert t["resource_usage_saving"] > 0.2
    assert t["cloud_mean_nodes_run"] < 16


def test_elastic_deallocates_completely(small_runs):
    _, elastic = small_runs
    assert elastic.shutdown_time_s is not None
    assert elastic.nodes_series.current == 0
    # Shutdown can trail the search end but never precede the run start.
    assert elastic.shutdown_time_s > 0


def test_elastic_scale_up_lag_visible(small_runs):
    """Fig. 11's 'small delay ... between increases in the number of jobs in
    queue, and the increase in Condor execution services'."""
    _, elastic = small_runs
    # Find the first big queue spike and the time instances reached 8.
    spike_t = next(t for t, v in elastic.queue_series.steps() if v >= 20)
    full_t = next(t for t, v in elastic.nodes_series.steps() if v >= 8)
    assert full_t > spike_t


def test_rule_firings_recorded(small_runs):
    _, elastic = small_runs
    stats = elastic.rule_firings
    assert stats["BootstrapCluster"]["firings"] >= 1
    assert stats["AdjustClusterSizeUp"]["firings"] >= 1
    assert stats["AdjustClusterSizeDown"]["firings"] >= 1


def test_runs_deterministic():
    cfg = TestbedConfig()
    a = run_elastic(SMALL, cfg)
    b = run_elastic(SMALL, cfg)
    assert a.turnaround_s == b.turnaround_s
    assert a.mean_nodes_run == b.mean_nodes_run


def test_prestaging_reduces_turnaround():
    cfg = TestbedConfig()
    baseline = run_elastic(SMALL, cfg)
    prestaged = run_elastic(SMALL, TestbedConfig(prestage_images=True))
    assert prestaged.turnaround_s < baseline.turnaround_s


def test_series_extraction_grid(small_runs):
    _, elastic = small_runs
    series = extract_series(elastic, period_s=30)
    assert len(series.times) == len(series.queued) == len(series.instances)
    assert series.times[0] == 0
    assert max(series.instances) <= 16
    rows = series.rows()
    assert rows[0][0] == 0


def test_render_run_text(small_runs):
    dedicated, elastic = small_runs
    text = render_run(elastic, width=40)
    assert "queued jobs" in text
    assert "execution instances" in text
    assert "█" in text
    with pytest.raises(ValueError):
        render_ascii_chart(elastic.queue_series, 10, 10)


def test_table3_arithmetic():
    dedicated = run_dedicated(SMALL, TestbedConfig())
    elastic = run_elastic(SMALL, TestbedConfig())
    t = table3(dedicated, elastic)
    assert t["resource_usage_saving"] == pytest.approx(
        1 - t["cloud_mean_nodes_run"] / t["dedicated_mean_nodes_run"])
    assert t["extra_run_time"] == pytest.approx(
        (t["cloud_turnaround_s"] - t["dedicated_turnaround_s"])
        / t["dedicated_turnaround_s"])


# ---------------------------------------------------------------------------
# Weekly harness (tiny week: two short days)
# ---------------------------------------------------------------------------

def test_weekly_config_validation():
    with pytest.raises(ValueError):
        WeeklyConfig(window_start_s=10 * 3600, window_end_s=8 * 3600)
    with pytest.raises(ValueError):
        WeeklyConfig(min_scale=0)
    with pytest.raises(ValueError):
        WeeklyConfig(idle_days=(9,))


def test_weekly_small_run_shape():
    cfg = WeeklyConfig(
        idle_days=(1, 2, 3, 5, 6),          # one active day besides day 0...
        window_start_s=6 * 3600.0,
        window_end_s=9 * 3600.0,            # short window: few searches
        base_workload=SMALL,
        min_scale=0.8, max_scale=1.2,
    )
    result = run_week(cfg)
    assert result.search_count >= 2
    assert all(s.day in (0, 4) for s in result.searches)
    # Cluster idle most of the week → saving dominated by idle time.
    assert result.saving > 0.9
    assert 0 < result.busy_fraction < 0.1
    assert result.elastic_node_seconds > 0
