"""Tests for measurements, qualified names and the XDR codec."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring import (
    AttributeType,
    CodecError,
    DataDictionary,
    Measurement,
    ProbeAttribute,
    decode_measurement,
    decode_value,
    encode_measurement,
    encode_value,
    naive_json_size,
    validate_qualified_name,
)


# ---------------------------------------------------------------------------
# Qualified names
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", [
    "uk.ucl.condor.schedd.queuesize",
    "com.sap.webdispatcher.kpis.sessions",
    "a.b",
    "x-1.y_2.z3",
])
def test_valid_qualified_names(name):
    assert validate_qualified_name(name) == name


@pytest.mark.parametrize("name", [
    "", "single", ".leading", "trailing.", "two..dots", "sp ace.x", None, 42,
])
def test_invalid_qualified_names(name):
    with pytest.raises((ValueError, TypeError)):
        validate_qualified_name(name)


# ---------------------------------------------------------------------------
# AttributeType
# ---------------------------------------------------------------------------

def test_type_inference():
    assert AttributeType.for_python_value(True) is AttributeType.BOOLEAN
    assert AttributeType.for_python_value(5) is AttributeType.INTEGER
    assert AttributeType.for_python_value(2**40) is AttributeType.LONG
    assert AttributeType.for_python_value(1.5) is AttributeType.DOUBLE
    assert AttributeType.for_python_value("x") is AttributeType.STRING
    with pytest.raises(TypeError):
        AttributeType.for_python_value([1, 2])


def test_type_accepts():
    assert AttributeType.INTEGER.accepts(5)
    assert not AttributeType.INTEGER.accepts(True)  # bool is not an int here
    assert AttributeType.DOUBLE.accepts(5)          # ints widen to double
    assert AttributeType.BOOLEAN.accepts(False)
    assert not AttributeType.STRING.accepts(5)


# ---------------------------------------------------------------------------
# DataDictionary
# ---------------------------------------------------------------------------

def test_dictionary_rejects_duplicates():
    attr = ProbeAttribute("q", AttributeType.INTEGER)
    with pytest.raises(ValueError):
        DataDictionary((attr, attr))


def test_dictionary_validate_values():
    d = DataDictionary((
        ProbeAttribute("count", AttributeType.INTEGER, "jobs"),
        ProbeAttribute("load", AttributeType.DOUBLE, "ratio"),
    ))
    d.validate_values((5, 0.7))
    with pytest.raises(ValueError):
        d.validate_values((5,))
    with pytest.raises(TypeError):
        d.validate_values(("five", 0.7))
    assert d.index_of("load") == 1
    with pytest.raises(KeyError):
        d.index_of("missing")


def test_probe_attribute_validation():
    with pytest.raises(ValueError):
        ProbeAttribute("", AttributeType.INTEGER)


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def make_measurement(**kw):
    kw.setdefault("qualified_name", "uk.ucl.condor.schedd.queuesize")
    kw.setdefault("service_id", "svc-1")
    kw.setdefault("probe_id", "probe-1")
    kw.setdefault("timestamp", 123.5)
    kw.setdefault("values", (7,))
    return Measurement(**kw)


def test_measurement_validation():
    with pytest.raises(ValueError):
        make_measurement(qualified_name="notdotted")
    with pytest.raises(ValueError):
        make_measurement(service_id="")
    with pytest.raises(ValueError):
        make_measurement(probe_id="")


def test_measurement_value_shorthand():
    assert make_measurement(values=(9, 2)).value == 9
    with pytest.raises(ValueError):
        _ = make_measurement(values=()).value


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("value", [0, 1, -1, 2**31 - 1, -(2**31), 2**62, True,
                                   False, 0.0, -3.25, "hello", "", "ünïcødé",
                                   "x" * 1000])
def test_value_round_trip(value):
    buf = encode_value(value)
    decoded, offset = decode_value(buf)
    assert decoded == value
    assert type(decoded) is type(value)
    assert offset == len(buf)


def test_string_padding_is_4_byte_aligned():
    for s in ("", "a", "ab", "abc", "abcd"):
        buf = encode_value(s)
        # tag byte + 4-byte length + padded body
        assert (len(buf) - 1) % 4 == 0


def test_float_single_precision_lossy_but_close():
    buf = encode_value(1.234567, AttributeType.FLOAT)
    decoded, _ = decode_value(buf)
    assert decoded == pytest.approx(1.234567, rel=1e-6)


def test_decode_errors():
    with pytest.raises(CodecError):
        decode_value(b"")
    with pytest.raises(CodecError):
        decode_value(b"\xff\x00\x00\x00\x00")  # unknown tag
    with pytest.raises(CodecError):
        decode_value(b"\x01\x00")  # truncated int
    truncated_string = encode_value("hello")[:-3]
    with pytest.raises(CodecError):
        decode_value(truncated_string)


def test_encode_type_mismatch():
    with pytest.raises(CodecError):
        encode_value("text", AttributeType.INTEGER)


# ---------------------------------------------------------------------------
# Measurement codec
# ---------------------------------------------------------------------------

def test_measurement_round_trip():
    m = make_measurement(values=(7, 0.5, "busy", True), seqno=42)
    out = decode_measurement(encode_measurement(m))
    assert out == m


def test_measurement_bad_magic():
    with pytest.raises(CodecError):
        decode_measurement(b"XXXX" + b"\x00" * 20)


def test_measurement_bad_version():
    buf = bytearray(encode_measurement(make_measurement()))
    buf[7] = 99
    with pytest.raises(CodecError):
        decode_measurement(bytes(buf))


def test_measurement_truncated():
    buf = encode_measurement(make_measurement())
    with pytest.raises(CodecError):
        decode_measurement(buf[: len(buf) - 2])


@given(
    values=st.lists(
        st.one_of(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.floats(allow_nan=False, allow_infinity=True, width=64),
            st.booleans(),
            st.text(max_size=50),
        ),
        max_size=8,
    ),
    seqno=st.integers(min_value=0, max_value=2**31),
    timestamp=st.floats(min_value=0, max_value=1e12),
)
@settings(max_examples=200)
def test_measurement_round_trip_property(values, seqno, timestamp):
    m = make_measurement(values=tuple(values), seqno=seqno,
                         timestamp=timestamp)
    out = decode_measurement(encode_measurement(m))
    assert out.qualified_name == m.qualified_name
    assert out.seqno == m.seqno
    assert out.timestamp == m.timestamp
    assert len(out.values) == len(m.values)
    for a, b in zip(out.values, m.values):
        if isinstance(b, float) and math.isnan(b):
            assert math.isnan(a)
        else:
            assert a == b


def test_xdr_smaller_than_naive_json():
    """The design claim behind §5.2.6: values-only XDR beats self-describing
    encodings because names/units live in the information model."""
    m = make_measurement(values=(12345, 0.875))
    xdr_size = len(encode_measurement(m))
    json_size = naive_json_size(
        m, ["queuesize", "utilisation"], ["jobs", "ratio"])
    assert xdr_size < json_size
