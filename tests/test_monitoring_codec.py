"""Tests for measurements, qualified names and the XDR codec."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring import (
    AttributeType,
    CodecError,
    DataDictionary,
    Measurement,
    PacketEncoder,
    ProbeAttribute,
    decode_measurement,
    decode_value,
    encode_measurement,
    encode_value,
    naive_json_size,
    peek_header,
    validate_qualified_name,
)


# ---------------------------------------------------------------------------
# Qualified names
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", [
    "uk.ucl.condor.schedd.queuesize",
    "com.sap.webdispatcher.kpis.sessions",
    "a.b",
    "x-1.y_2.z3",
])
def test_valid_qualified_names(name):
    assert validate_qualified_name(name) == name


@pytest.mark.parametrize("name", [
    "", "single", ".leading", "trailing.", "two..dots", "sp ace.x", None, 42,
])
def test_invalid_qualified_names(name):
    with pytest.raises((ValueError, TypeError)):
        validate_qualified_name(name)


# ---------------------------------------------------------------------------
# AttributeType
# ---------------------------------------------------------------------------

def test_type_inference():
    assert AttributeType.for_python_value(True) is AttributeType.BOOLEAN
    assert AttributeType.for_python_value(5) is AttributeType.INTEGER
    assert AttributeType.for_python_value(2**40) is AttributeType.LONG
    assert AttributeType.for_python_value(1.5) is AttributeType.DOUBLE
    assert AttributeType.for_python_value("x") is AttributeType.STRING
    with pytest.raises(TypeError):
        AttributeType.for_python_value([1, 2])


def test_type_accepts():
    assert AttributeType.INTEGER.accepts(5)
    assert not AttributeType.INTEGER.accepts(True)  # bool is not an int here
    assert AttributeType.DOUBLE.accepts(5)          # ints widen to double
    assert AttributeType.BOOLEAN.accepts(False)
    assert not AttributeType.STRING.accepts(5)


# ---------------------------------------------------------------------------
# DataDictionary
# ---------------------------------------------------------------------------

def test_dictionary_rejects_duplicates():
    attr = ProbeAttribute("q", AttributeType.INTEGER)
    with pytest.raises(ValueError):
        DataDictionary((attr, attr))


def test_dictionary_validate_values():
    d = DataDictionary((
        ProbeAttribute("count", AttributeType.INTEGER, "jobs"),
        ProbeAttribute("load", AttributeType.DOUBLE, "ratio"),
    ))
    d.validate_values((5, 0.7))
    with pytest.raises(ValueError):
        d.validate_values((5,))
    with pytest.raises(TypeError):
        d.validate_values(("five", 0.7))
    assert d.index_of("load") == 1
    with pytest.raises(KeyError):
        d.index_of("missing")


def test_probe_attribute_validation():
    with pytest.raises(ValueError):
        ProbeAttribute("", AttributeType.INTEGER)


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def make_measurement(**kw):
    kw.setdefault("qualified_name", "uk.ucl.condor.schedd.queuesize")
    kw.setdefault("service_id", "svc-1")
    kw.setdefault("probe_id", "probe-1")
    kw.setdefault("timestamp", 123.5)
    kw.setdefault("values", (7,))
    return Measurement(**kw)


def test_measurement_validation():
    with pytest.raises(ValueError):
        make_measurement(qualified_name="notdotted")
    with pytest.raises(ValueError):
        make_measurement(service_id="")
    with pytest.raises(ValueError):
        make_measurement(probe_id="")


def test_measurement_value_shorthand():
    assert make_measurement(values=(9, 2)).value == 9
    with pytest.raises(ValueError):
        _ = make_measurement(values=()).value


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("value", [0, 1, -1, 2**31 - 1, -(2**31), 2**62, True,
                                   False, 0.0, -3.25, "hello", "", "ünïcødé",
                                   "x" * 1000])
def test_value_round_trip(value):
    buf = encode_value(value)
    decoded, offset = decode_value(buf)
    assert decoded == value
    assert type(decoded) is type(value)
    assert offset == len(buf)


def test_string_padding_is_4_byte_aligned():
    for s in ("", "a", "ab", "abc", "abcd"):
        buf = encode_value(s)
        # tag byte + 4-byte length + padded body
        assert (len(buf) - 1) % 4 == 0


def test_float_single_precision_lossy_but_close():
    buf = encode_value(1.234567, AttributeType.FLOAT)
    decoded, _ = decode_value(buf)
    assert decoded == pytest.approx(1.234567, rel=1e-6)


def test_decode_errors():
    with pytest.raises(CodecError):
        decode_value(b"")
    with pytest.raises(CodecError):
        decode_value(b"\xff\x00\x00\x00\x00")  # unknown tag
    with pytest.raises(CodecError):
        decode_value(b"\x01\x00")  # truncated int
    truncated_string = encode_value("hello")[:-3]
    with pytest.raises(CodecError):
        decode_value(truncated_string)


def test_encode_type_mismatch():
    with pytest.raises(CodecError):
        encode_value("text", AttributeType.INTEGER)


# ---------------------------------------------------------------------------
# Measurement codec
# ---------------------------------------------------------------------------

def test_measurement_round_trip():
    m = make_measurement(values=(7, 0.5, "busy", True), seqno=42)
    out = decode_measurement(encode_measurement(m))
    assert out == m


def test_measurement_bad_magic():
    with pytest.raises(CodecError):
        decode_measurement(b"XXXX" + b"\x00" * 20)


def test_measurement_bad_version():
    buf = bytearray(encode_measurement(make_measurement()))
    buf[7] = 99
    with pytest.raises(CodecError):
        decode_measurement(bytes(buf))


def test_measurement_truncated():
    buf = encode_measurement(make_measurement())
    with pytest.raises(CodecError):
        decode_measurement(buf[: len(buf) - 2])


@given(
    values=st.lists(
        st.one_of(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.floats(allow_nan=False, allow_infinity=True, width=64),
            st.booleans(),
            st.text(max_size=50),
        ),
        max_size=8,
    ),
    seqno=st.integers(min_value=0, max_value=2**31),
    timestamp=st.floats(min_value=0, max_value=1e12),
)
@settings(max_examples=200)
def test_measurement_round_trip_property(values, seqno, timestamp):
    m = make_measurement(values=tuple(values), seqno=seqno,
                         timestamp=timestamp)
    out = decode_measurement(encode_measurement(m))
    assert out.qualified_name == m.qualified_name
    assert out.seqno == m.seqno
    assert out.timestamp == m.timestamp
    assert len(out.values) == len(m.values)
    for a, b in zip(out.values, m.values):
        if isinstance(b, float) and math.isnan(b):
            assert math.isnan(a)
        else:
            assert a == b


# ---------------------------------------------------------------------------
# Header peek
# ---------------------------------------------------------------------------

def test_peek_header_matches_full_decode():
    m = make_measurement(values=(7, 0.5, "busy", True), seqno=42)
    buf = encode_measurement(m)
    header = peek_header(buf)
    assert header.qualified_name == m.qualified_name
    assert header.service_id == m.service_id
    # body_offset points at the probe id value
    probe_id, _ = decode_value(buf, header.body_offset)
    assert probe_id == m.probe_id


def test_peek_header_bad_magic():
    with pytest.raises(CodecError):
        peek_header(b"XXXX" + b"\x00" * 20)


def test_peek_header_bad_version():
    buf = bytearray(encode_measurement(make_measurement()))
    buf[7] = 99
    with pytest.raises(CodecError):
        peek_header(bytes(buf))


def test_peek_header_truncated():
    buf = encode_measurement(make_measurement())
    with pytest.raises(CodecError):
        peek_header(buf[:6])


# ---------------------------------------------------------------------------
# Cached-prefix PacketEncoder
# ---------------------------------------------------------------------------

def test_packet_encoder_byte_identical():
    m = make_measurement(values=(7, 0.5, "büsy", True), seqno=42)
    enc = PacketEncoder(m.qualified_name, m.service_id, m.probe_id)
    assert enc.encode(m) == encode_measurement(m)
    # steady state: only per-packet fields change, prefix is reused
    m2 = make_measurement(values=(8, -1.25, "", False), seqno=43,
                          timestamp=999.0)
    assert enc.encode(m2) == encode_measurement(m2)


def test_packet_encoder_rejects_identity_mismatch():
    m = make_measurement()
    enc = PacketEncoder(m.qualified_name, m.service_id, m.probe_id)
    stranger = make_measurement(probe_id="probe-other")
    with pytest.raises(CodecError):
        enc.encode(stranger)


@given(
    values=st.lists(
        st.one_of(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.floats(allow_nan=False, allow_infinity=True, width=64),
            st.booleans(),
            st.text(max_size=40),  # includes non-ASCII and non-BMP chars
        ),
        max_size=8,
    ),
    seqno=st.integers(min_value=0, max_value=2**31),
    timestamp=st.floats(min_value=0, max_value=1e12),
)
@settings(max_examples=150)
def test_packet_encoder_byte_identical_property(values, seqno, timestamp):
    m = make_measurement(values=tuple(values), seqno=seqno,
                         timestamp=timestamp)
    enc = PacketEncoder(m.qualified_name, m.service_id, m.probe_id)
    assert enc.encode(m) == encode_measurement(m)


# ---------------------------------------------------------------------------
# Truncation / corruption fuzz: malformed wire data must always surface as
# CodecError, never struct.error / IndexError / UnicodeDecodeError.
# ---------------------------------------------------------------------------

@given(
    values=st.lists(
        st.one_of(
            st.integers(min_value=-(2**62), max_value=2**62),
            st.floats(allow_nan=False, width=64),
            st.booleans(),
            st.text(max_size=12),
        ),
        max_size=4,
    ),
)
@settings(max_examples=60, deadline=None)
def test_every_strict_prefix_raises_codec_error(values):
    buf = encode_measurement(make_measurement(values=tuple(values)))
    assert decode_measurement(buf).values == tuple(values)
    for cut in range(len(buf)):
        with pytest.raises(CodecError):
            decode_measurement(buf[:cut])


@given(
    text=st.text(min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_every_strict_prefix_of_value_raises_codec_error(text):
    buf = encode_value(text)
    for cut in range(len(buf)):
        with pytest.raises(CodecError):
            decode_value(buf[:cut])


def test_peek_header_on_prefixes_never_leaks_raw_errors():
    buf = encode_measurement(make_measurement())
    header = peek_header(buf)
    for cut in range(len(buf)):
        try:
            peeked = peek_header(buf[:cut])
        except CodecError:
            continue  # too short to route — acceptable
        # long enough to carry the routing fields: must agree with the whole
        assert (peeked.qualified_name, peeked.service_id) == (
            header.qualified_name, header.service_id)


@given(junk=st.binary(max_size=80))
@settings(max_examples=200)
def test_decode_random_bytes_raises_only_codec_error(junk):
    for decoder in (decode_measurement, peek_header):
        try:
            decoder(junk)
        except CodecError:
            pass
    try:
        decode_value(junk)
    except CodecError:
        pass


def test_invalid_utf8_string_body_is_codec_error():
    buf = bytearray(encode_value("abcd"))
    buf[-4:] = b"\xff\xfe\xfd\xfc"  # clobber the 4-byte body
    with pytest.raises(CodecError):
        decode_value(bytes(buf))


def test_non_bmp_string_round_trip():
    value = "violin \U0001d11e and bulb \U0001f4a1"
    decoded, offset = decode_value(encode_value(value))
    assert decoded == value
    assert offset == len(encode_value(value))


def test_xdr_smaller_than_naive_json():
    """The design claim behind §5.2.6: values-only XDR beats self-describing
    encodings because names/units live in the information model."""
    m = make_measurement(values=(12345, 0.875))
    xdr_size = len(encode_measurement(m))
    json_size = naive_json_size(
        m, ["queuesize", "utilisation"], ["jobs", "ratio"])
    assert xdr_size < json_size
