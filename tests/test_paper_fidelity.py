"""Fidelity: the concrete syntax printed in the paper parses as-is.

§6.1.2 prints the evaluation manifest's elasticity rule and application
description verbatim. Those snippets (wrapped in an envelope, with XML
entities escaped and the ovf namespace declared — the minimum to make them
well-formed XML at all) must parse into the expected abstract syntax.
"""

import pytest

from repro.core.manifest import manifest_from_xml, parse_action

# The two snippets exactly as printed in §6.1.2, embedded in an envelope.
PAPER_XML = """
<Envelope name="polymorphGridService"
          xmlns:ovf="http://schemas.dmtf.org/ovf/envelope/1">
  <References>
    <File id="GM-image" href="http://sm.internal/images/GM" size="4096"/>
    <File id="exec-image" href="http://sm.internal/images/exec" size="2048"/>
  </References>
  <DiskSection>
    <Disk diskId="GM-disk" fileRef="GM-image"/>
    <Disk diskId="exec-disk" fileRef="exec-image"/>
  </DiskSection>
  <VirtualSystem id="GM">
    <VirtualHardwareSection>
      <CPU>4</CPU>
      <Memory unit="MB">8192</Memory>
    </VirtualHardwareSection>
    <DiskRef diskId="GM-disk"/>
  </VirtualSystem>
  <VirtualSystem id="exec">
    <VirtualHardwareSection>
      <CPU>1</CPU>
      <Memory unit="MB">2048</Memory>
    </VirtualHardwareSection>
    <DiskRef diskId="exec-disk"/>
    <ElasticityBounds initial="0" min="0" max="16"/>
  </VirtualSystem>

  <ApplicationDescription name="polymorphGridApp">
    <Component name="GridMgmtService" ovf:id="GM">
      <KeyPerformanceIndicator category="Agent" type="int" default="0">
        <Frequency unit="s">30</Frequency>
        <QName>uk.ucl.condor.schedd.queuesize</QName>
      </KeyPerformanceIndicator>
    </Component>
    <Component name="Cluster" ovf:id="exec">
      <KeyPerformanceIndicator category="Agent" type="int" default="0">
        <Frequency unit="s">30</Frequency>
        <QName>uk.ucl.condor.exec.instances.size</QName>
      </KeyPerformanceIndicator>
    </Component>
  </ApplicationDescription>

  <ElasticityRule name="AdjustClusterSizeUp">
    <Trigger>
      <TimeConstraint unit="ms">5000</TimeConstraint>
      <Expression>
        (@uk.ucl.condor.schedd.queuesize /
        (@uk.ucl.condor.exec.instances.size + 1) &gt; 4) &amp;&amp;
        (@uk.ucl.condor.exec.instances.size &lt; 16)
      </Expression>
    </Trigger>
    <Action run="deployVM(uk.ucl.condor.exec.ref)"/>
  </ElasticityRule>
</Envelope>
"""


@pytest.fixture(scope="module")
def manifest():
    return manifest_from_xml(PAPER_XML)


def test_namespaced_ovf_id_accepted(manifest):
    comp = manifest.application.component("GridMgmtService")
    assert comp.ovf_id == "GM"


def test_paper_kpi_declaration(manifest):
    kpi = manifest.application.kpi("uk.ucl.condor.schedd.queuesize")
    assert kpi.frequency_s == 30
    assert kpi.type_name == "int"
    assert kpi.category == "Agent"


def test_paper_rule_semantics(manifest):
    rule = manifest.elasticity_rules[0]
    assert rule.name == "AdjustClusterSizeUp"
    assert rule.trigger.time_constraint_ms == 5000
    action = rule.actions[0]
    assert action.unparse() == "deployVM(uk.ucl.condor.exec.ref)"

    # Evaluate the exact printed condition with the §6 scenario values.
    def bindings(values):
        return lambda name: values.get(name)

    expr = rule.trigger.expression
    # 200 queued jobs, 2 instances: 200/3 > 4 and 2 < 16 → fire.
    assert expr.holds(bindings({
        "uk.ucl.condor.schedd.queuesize": 200,
        "uk.ucl.condor.exec.instances.size": 2}))
    # Cluster full: hold off.
    assert not expr.holds(bindings({
        "uk.ucl.condor.schedd.queuesize": 200,
        "uk.ucl.condor.exec.instances.size": 16}))
    # Exactly at the paper's "more than 4 idle jobs" boundary: 4 jobs per
    # instance+1 is NOT more than 4 → hold off.
    assert not expr.holds(bindings({
        "uk.ucl.condor.schedd.queuesize": 8,
        "uk.ucl.condor.exec.instances.size": 1}))


def test_paper_elastic_bounds(manifest):
    system = manifest.system("exec")
    assert system.instances.minimum == 0
    assert system.instances.maximum == 16
    assert system.instances.elastic


def test_paper_action_grammar():
    action = parse_action("deployVM(uk.ucl.condor.exec.ref)")
    assert action.operation.value == "deployVM"
    assert action.component_ref == "uk.ucl.condor.exec.ref"
