"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimError,
    StopProcess,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0


def test_timeout_advances_clock():
    env = Environment()
    observed = []

    def proc(env):
        yield env.timeout(5)
        observed.append(env.now)
        yield env.timeout(2.5)
        observed.append(env.now)

    env.process(proc(env))
    env.run()
    assert observed == [5.0, 7.5]


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_delivers_value():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1, value="payload")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=25)
    assert env.now == 25.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=50)
    with pytest.raises(ValueError):
        env.run(until=10)


def test_process_join_returns_value():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(3)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        results.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert results == [(3.0, 42)]


def test_stop_process_value():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise StopProcess("early")
        yield env.timeout(100)  # pragma: no cover

    proc = env.process(child(env))
    env.run()
    assert proc.value == "early"
    assert env.now == 1.0


def test_events_fire_in_time_order_with_fifo_ties():
    env = Environment()
    order = []

    def maker(env, tag, delay):
        yield env.timeout(delay)
        order.append(tag)

    env.process(maker(env, "a", 5))
    env.process(maker(env, "b", 5))
    env.process(maker(env, "c", 1))
    env.run()
    assert order == ["c", "a", "b"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    done = []
    gate = env.event()

    def waiter(env):
        value = yield gate
        done.append((env.now, value))

    def opener(env):
        yield env.timeout(4)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert done == [(4.0, "open")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimError):
        ev.succeed()


def test_event_fail_raises_in_waiter():
    env = Environment()
    seen = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            seen.append(str(exc))

    gate = env.event()

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert seen == ["boom"]


def test_unhandled_process_exception_propagates_to_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(bad(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    seen = []

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            seen.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(7)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert seen == [(7.0, "wake up")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def resilient(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            trace.append(("interrupted", env.now))
        yield env.timeout(5)
        trace.append(("done", env.now))

    def interrupter(env, victim):
        yield env.timeout(10)
        victim.interrupt()

    victim = env.process(resilient(env))
    env.process(interrupter(env, victim))
    env.run()
    assert trace == [("interrupted", 10.0), ("done", 15.0)]


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="fast")
        t2 = env.timeout(10, value="slow")
        fired = yield AnyOf(env, [t1, t2])
        results.append((env.now, sorted(fired.values())))

    env.process(proc(env))
    env.run()
    assert results == [(5.0, ["fast"])]


def test_all_of_waits_for_all():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5, value="a")
        t2 = env.timeout(10, value="b")
        fired = yield AllOf(env, [t1, t2])
        results.append((env.now, sorted(fired.values())))

    env.process(proc(env))
    env.run()
    assert results == [(10.0, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def proc(env):
        yield env.all_of([])
        results.append(env.now)

    env.process(proc(env))
    env.run()
    assert results == [0.0]


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "answer"

    p = env.process(proc(env))
    assert env.run(until=p) == "answer"
    assert env.now == 3.0


def test_run_until_never_fired_event_raises():
    env = Environment()
    orphan = env.event()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(SimError):
        env.run(until=orphan)


def test_yield_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimError):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()

    def proc(env):
        yield env.timeout(9)

    env.process(proc(env))
    env.step()  # consume the initialization event
    assert env.peek() == 9.0


def test_nested_processes_chain():
    env = Environment()

    def leaf(env, n):
        yield env.timeout(n)
        return n * 2

    def mid(env):
        a = yield env.process(leaf(env, 2))
        b = yield env.process(leaf(env, 3))
        return a + b

    p = env.process(mid(env))
    assert env.run(until=p) == 10
    assert env.now == 5.0


def test_many_processes_deterministic():
    """Two identical runs produce identical event orderings."""

    def run_once():
        env = Environment()
        order = []

        def worker(env, i):
            yield env.timeout(i % 7)
            order.append(i)
            yield env.timeout((i * 13) % 5)
            order.append(-i)

        for i in range(50):
            env.process(worker(env, i))
        env.run()
        return order

    assert run_once() == run_once()


def test_interrupt_before_first_resume_is_caught():
    """Interrupting a just-created process must land on its first yield,
    inside the process's try/except — not escape from an unstarted
    generator."""
    env = Environment()
    seen = []

    def guarded(env):
        try:
            while True:
                yield env.timeout(30)
        except Interrupt as intr:
            seen.append(intr.cause)

    proc = env.process(guarded(env))
    proc.interrupt("early")   # before env.run(): no event has fired yet
    env.run()
    assert seen == ["early"]


def test_interrupt_process_that_finishes_during_init_is_harmless():
    """A process whose body returns immediately (guard already false) may
    receive a same-instant interrupt; the stale interrupt must be dropped."""
    env = Environment()
    flag = {"active": True}

    def loop(env):
        while flag["active"]:
            yield env.timeout(30)

    proc = env.process(loop(env))
    flag["active"] = False
    proc.interrupt("stop")
    env.run()   # must not raise
    assert proc.triggered


def test_processes_start_before_same_time_events():
    """Init events run URGENT: a process created at time t observes state
    changes scheduled at t only after its first yield."""
    env = Environment()
    order = []

    def proc(env):
        order.append("started")
        yield env.timeout(0)
        order.append("resumed")

    env.process(proc(env))
    gate = env.event()
    gate.succeed()  # normal-priority event at the same instant
    gate.callbacks.append(lambda _e: order.append("gate"))
    env.run()
    assert order[0] == "started"


# ---------------------------------------------------------------------------
# Lazy cancellation, dead-entry skipping and kernel counters
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("reference", [False, True])
def test_cancelled_timeout_is_skipped_dead(reference):
    env = Environment(reference=reference)
    doomed = env.timeout(5)
    env.timeout(7)
    doomed.cancel()
    env.run()
    assert env.now == 7.0
    assert env.dead_skipped == 1
    # Dead pops still count as processed work.
    assert env.events_processed == 2


@pytest.mark.parametrize("reference", [False, True])
def test_anyof_loser_timeout_is_dead_marked(reference):
    env = Environment(reference=reference)
    fired_at = []

    def proc(env):
        fast = env.timeout(1, value="fast")
        slow = env.timeout(100, value="slow")
        yield AnyOf(env, [fast, slow])
        fired_at.append(env.now)

    env.process(proc(env))
    env.run()
    assert fired_at == [1.0]
    # The losing 100 s timeout stayed queued but was skipped at pop time.
    assert env.now == 100.0
    assert env.dead_skipped == 1


@pytest.mark.parametrize("reference", [False, True])
def test_interrupt_dead_marks_abandoned_timeout(reference):
    env = Environment(reference=reference)
    log = []

    def sleeper(env):
        try:
            yield env.timeout(50)
            log.append("overslept")
        except Interrupt as exc:
            log.append(("interrupted", env.now, exc.cause))

    def poker(env, victim):
        yield env.timeout(5)
        victim.interrupt("wake")

    victim = env.process(sleeper(env))
    env.process(poker(env, victim))
    env.run()
    assert log == [("interrupted", 5.0, "wake")]
    # The abandoned 50 s timeout is skipped when its bucket drains.
    assert env.now == 50.0
    assert env.dead_skipped == 1


@pytest.mark.parametrize("reference", [False, True])
def test_interrupt_before_start_detaches_first_wait(reference):
    """Regression: interrupting a process before its first resume must not
    leave the first yielded event subscribed. The unsubscribe happens at
    interrupt *delivery* time, after the process has parked on its first
    target -- a stale resume from that target would re-enter the generator
    at the wrong yield."""
    env = Environment(reference=reference)
    log = []

    def guarded(env):
        try:
            yield env.timeout(30)
            log.append("slept")
        except Interrupt:
            log.append(("interrupted", env.now))
        got = yield env.timeout(5, value="ok")
        log.append((got, env.now))

    proc = env.process(guarded(env))
    proc.interrupt()                # before the process has even started
    env.run()
    assert log == [("interrupted", 0.0), ("ok", 5.0)]
    assert proc.ok
    # The abandoned 30 s timeout was dead-marked and skipped.
    assert env.dead_skipped == 1


@pytest.mark.parametrize("reference", [False, True])
def test_attaching_callback_revives_cancelled_event(reference):
    """cancel() is lazy, never destructive: a callback attached afterwards
    still runs, and the pop is not counted as a dead skip."""
    env = Environment(reference=reference)
    fired = []
    t = env.timeout(1, value="v")
    t.cancel()
    t.callbacks.append(lambda e: fired.append(e.value))
    env.run()
    assert fired == ["v"]
    assert env.dead_skipped == 0


@pytest.mark.parametrize("reference", [False, True])
def test_events_processed_counts_every_pop(reference):
    env = Environment(reference=reference)
    for i in range(10):
        env.timeout(i)
    env.run()
    assert env.events_processed == 10
    assert env.dead_skipped == 0


def test_kernel_counters_exposed_as_metrics_views():
    env = Environment()
    t = env.timeout(3)
    t.cancel()
    env.timeout(4)
    env.run()
    m = env.metrics
    assert m.value("kernel.events.processed") == float(env.events_processed)
    assert m.value("kernel.events.dead_skipped") == 1.0


@pytest.mark.parametrize("reference", [False, True])
def test_step_is_not_reentrant(reference):
    env = Environment(reference=reference)

    def bad(env):
        yield env.timeout(1)
        env.step()

    env.process(bad(env))
    with pytest.raises(SimError):
        env.run()


def test_reference_and_wheel_step_peek_parity():
    def build(reference):
        env = Environment(reference=reference)
        seen = []

        def proc(env):
            for delay in (0.0, 2.0, 0.0, 3.5):
                yield env.timeout(delay)
                seen.append(env.now)

        env.process(proc(env))
        return env, seen

    wheel, wheel_seen = build(False)
    heap, heap_seen = build(True)
    trace_w, trace_h = [], []
    while wheel.peek() != float("inf"):
        trace_w.append(wheel.peek())
        wheel.step()
    while heap.peek() != float("inf"):
        trace_h.append(heap.peek())
        heap.step()
    assert trace_w == trace_h
    assert wheel_seen == heap_seen
    assert wheel.events_processed == heap.events_processed
