"""``python -m repro report``: corpus loading, filtering, rendering, and
the byte-identical determinism contract CI leans on."""

import json

import pytest

from repro.__main__ import main
from repro.obs.report import (
    ReportError,
    apply_filters,
    load_corpus,
    parse_filters,
    report_main,
    sparkline,
)
from repro.scenarios.runner import SCENARIOS, Scenario, run_experiment
from repro.scenarios.chaos import Oversubscribe

FAST = ["services=8", "hours=0.25", "settle=120"]


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------

def test_sparkline_scales_to_series():
    assert sparkline([]) == ""
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"
    line = sparkline([0.0, 4.0, 8.0])
    assert len(line) == 3
    assert line[0] == "▁" and line[-1] == "█"


def test_parse_filters_types_and_errors():
    assert parse_filters(["sites=4", "load=0.5", "scenario=baseline"]) == [
        ("sites", 4), ("load", 0.5), ("scenario", "baseline")]
    for bad in ("sites", "sites=", "=4"):
        with pytest.raises(ReportError):
            parse_filters([bad])


def test_apply_filters_matches_record_and_cell_keys():
    records = [
        {"scenario": "a", "cell": {"sites": 2}},
        {"scenario": "a", "cell": {"sites": 4}},
        {"scenario": "b", "cell": {"sites": 4}},
    ]
    assert apply_filters(records, [("sites", 4)]) == records[1:]
    assert apply_filters(records, [("scenario", "a"), ("sites", 4)]) == [
        records[1]]


def test_load_corpus_rejects_bad_input(tmp_path):
    with pytest.raises(ReportError, match="cannot read"):
        load_corpus([str(tmp_path / "missing.jsonl")])
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(ReportError, match="not JSON"):
        load_corpus([str(bad)])
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ReportError, match="empty corpus"):
        load_corpus([str(empty)])


# ---------------------------------------------------------------------------
# End-to-end over a real experiment corpus
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Two identical runs of a 2-cell sweep, in separate directories —
    the rerun shape the CI report-smoke job checks."""
    root = tmp_path_factory.mktemp("corpus")
    paths = []
    for sub in ("a", "b"):
        out = root / sub
        result = run_experiment("flash-crowd", sweep=["sites=2,4"] + FAST,
                                seed=7, out_dir=str(out))
        assert result.ok
        paths.append(str(out / "flash-crowd-seed7.jsonl"))
    return paths


def _render(paths, **kwargs):
    lines = []
    code = report_main(paths, out=lines.append, **kwargs)
    return code, "\n".join(lines)


def test_report_is_deterministic_over_reruns(corpus):
    code_a, text_a = _render(corpus)
    code_b, text_b = _render(corpus)
    assert code_a == code_b == 0
    assert text_a == text_b             # byte-identical re-render
    assert "corpus: 4 record(s) from 2 file(s)" in text_a
    assert "verdict: ok" in text_a


def test_report_diffs_matched_cells_across_runs(corpus):
    _code, text = _render(corpus)
    assert "run-vs-run (2 matched cell(s)" in text
    assert "2 run(s) -> identical" in text
    assert "DIVERGED" not in text


def test_report_sweep_sparkline_and_deltas(corpus):
    _code, text = _render(corpus[:1])
    assert "sweep sites: 2 4" in text
    assert "vs cell 0" in text
    assert "admitted" in text


def test_report_filters_narrow_the_corpus(corpus):
    code, text = _render(corpus[:1], filters=["sites=4"])
    assert code == 0
    assert "corpus: 1 record(s)" in text
    code, text = _render(corpus[:1], filters=["sites=64"])
    assert code == 2
    assert "filtered out" in text


def test_report_custom_metrics(corpus):
    code, text = _render(corpus[:1], metrics=("events_processed",))
    assert code == 0
    assert "events_processed" in text
    assert "peak_vms" not in text


def test_report_flags_failing_records(tmp_path):
    name = "_broken-host-report"
    SCENARIOS[name] = Scenario(
        name, "test-only: corrupt a host's accounting mid-run",
        chaos=lambda cfg: (Oversubscribe(
            at_s=cfg.monitor_period_s * 3 + 15.0, site="site-0"),))
    try:
        result = run_experiment(name, sweep=FAST, seed=7,
                                out_dir=str(tmp_path))
    finally:
        del SCENARIOS[name]
    assert not result.ok
    path = str(tmp_path / f"{name}-seed7.jsonl")
    code, text = _render([path])
    assert code == 1
    assert "verdict: FAIL" in text
    assert "[cell 0]" in text
    assert "flight:" in text            # points at the recorder dump
    assert "no-oversubscription" in text


def test_report_exit_2_on_unreadable_corpus(tmp_path):
    code, text = _render([str(tmp_path / "nope.jsonl")])
    assert code == 2 and "report:" in text


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------

def test_cli_report_smoke(corpus, capsys):
    assert main(["report", *corpus]) == 0
    out = capsys.readouterr().out
    assert "verdict: ok" in out
    assert main(["report", corpus[0], "--filter", "sites=2",
                 "--metrics", "admitted,peak_vms"]) == 0
    out = capsys.readouterr().out
    assert "admitted" in out and "peak_vms" in out


def test_cli_report_bad_corpus_exits_2(tmp_path, capsys):
    assert main(["report", str(tmp_path / "missing.jsonl")]) == 2
    assert "report:" in capsys.readouterr().out


def test_report_run_vs_run_flags_divergence(tmp_path):
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    base = {"scenario": "s", "seed": 1, "cell_index": 0, "cell": {},
            "ok": True, "admitted": 8}
    a.write_text(json.dumps(base) + "\n")
    b.write_text(json.dumps({**base, "admitted": 9}) + "\n")
    code, text = _render([str(a), str(b)])
    assert code == 0                    # both records are ok:true
    assert "DIVERGED" in text
    assert "admitted: 8 != 9" in text
