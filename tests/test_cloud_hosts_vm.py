"""Unit tests for hosts, VM state machine and deployment descriptors."""

import pytest

from repro.cloud import (
    CapacityError,
    DeploymentDescriptor,
    Host,
    HypervisorTimings,
    ImageRepository,
    LifecycleError,
    VirtualMachine,
    VMState,
)
from repro.sim import Environment


def make_descriptor(name="vm", cpu=1.0, mem=1024.0, **kw):
    kw.setdefault("disk_source", "http://sm/images/base")
    return DeploymentDescriptor(name=name, memory_mb=mem, cpu=cpu, **kw)


# ---------------------------------------------------------------------------
# DeploymentDescriptor
# ---------------------------------------------------------------------------

def test_descriptor_validation():
    with pytest.raises(ValueError):
        make_descriptor(cpu=0)
    with pytest.raises(ValueError):
        make_descriptor(mem=-1)
    with pytest.raises(ValueError):
        DeploymentDescriptor(name="", memory_mb=1, cpu=1, disk_source="x")
    with pytest.raises(ValueError):
        DeploymentDescriptor(name="x", memory_mb=1, cpu=1, disk_source="")


def test_descriptor_defaults():
    d = make_descriptor()
    assert d.networks == ()
    assert d.customisation == {}
    assert d.service_id is None


# ---------------------------------------------------------------------------
# VM state machine
# ---------------------------------------------------------------------------

def test_vm_legal_lifecycle_path():
    env = Environment()
    vm = VirtualMachine(env, "vm1", make_descriptor())
    for state in (VMState.STAGING, VMState.BOOTING, VMState.RUNNING,
                  VMState.SHUTTING_DOWN, VMState.STOPPED):
        vm.transition(state)
    assert vm.state is VMState.STOPPED
    assert not vm.is_active


def test_vm_illegal_transition_raises():
    env = Environment()
    vm = VirtualMachine(env, "vm1", make_descriptor())
    with pytest.raises(LifecycleError):
        vm.transition(VMState.RUNNING)  # PENDING → RUNNING skips stages


def test_vm_stopped_is_terminal():
    env = Environment()
    vm = VirtualMachine(env, "vm1", make_descriptor())
    for state in (VMState.STAGING, VMState.BOOTING, VMState.RUNNING,
                  VMState.SHUTTING_DOWN, VMState.STOPPED):
        vm.transition(state)
    with pytest.raises(LifecycleError):
        vm.transition(VMState.RUNNING)


def test_vm_on_running_event_fires():
    env = Environment()
    vm = VirtualMachine(env, "vm1", make_descriptor())
    seen = []

    def waiter(env):
        got = yield vm.on_running
        seen.append((env.now, got))

    def driver(env):
        yield env.timeout(10)
        vm.transition(VMState.STAGING)
        vm.transition(VMState.BOOTING)
        yield env.timeout(30)
        vm.transition(VMState.RUNNING)

    env.process(waiter(env))
    env.process(driver(env))
    env.run()
    assert seen == [(40.0, vm)]
    assert vm.provisioning_time == 40.0


def test_vm_time_in_state():
    env = Environment()
    vm = VirtualMachine(env, "vm1", make_descriptor())

    def driver(env):
        vm.transition(VMState.STAGING)
        yield env.timeout(20)
        vm.transition(VMState.BOOTING)
        yield env.timeout(45)
        vm.transition(VMState.RUNNING)
        yield env.timeout(100)

    env.process(driver(env))
    env.run()
    assert vm.time_in_state(VMState.STAGING) == 20
    assert vm.time_in_state(VMState.BOOTING) == 45
    assert vm.time_in_state(VMState.RUNNING) == 100  # still running: until now


def test_vm_failure_from_any_live_state():
    env = Environment()
    vm = VirtualMachine(env, "vm1", make_descriptor())
    vm.transition(VMState.STAGING)
    vm.transition(VMState.FAILED)
    assert not vm.is_active
    assert vm.provisioning_time is None


# ---------------------------------------------------------------------------
# Host capacity
# ---------------------------------------------------------------------------

def test_host_admission_and_release():
    env = Environment()
    host = Host(env, "h1", cpu_cores=4, memory_mb=8192)
    vm1 = VirtualMachine(env, "vm1", make_descriptor(cpu=2, mem=4096))
    vm2 = VirtualMachine(env, "vm2", make_descriptor(cpu=2, mem=4096))
    host.reserve(vm1)
    host.reserve(vm2)
    assert host.cpu_free == 0
    assert host.memory_free == 0
    vm3 = VirtualMachine(env, "vm3", make_descriptor(cpu=0.5, mem=100))
    with pytest.raises(CapacityError):
        host.reserve(vm3)
    host.release(vm1)
    host.reserve(vm3)
    assert vm3.host is host


def test_host_release_unknown_vm_raises():
    env = Environment()
    host = Host(env, "h1")
    vm = VirtualMachine(env, "vm1", make_descriptor())
    with pytest.raises(CapacityError):
        host.release(vm)


def test_host_exact_fit_accepted():
    env = Environment()
    host = Host(env, "h1", cpu_cores=1, memory_mb=512)
    vm = VirtualMachine(env, "vm1", make_descriptor(cpu=1, mem=512))
    host.reserve(vm)  # must not raise
    assert host.fits(0.0000000001, 0.0000000001) is False or True  # no crash


def test_host_resize_vm():
    env = Environment()
    host = Host(env, "h1", cpu_cores=4, memory_mb=8192)
    vm = VirtualMachine(env, "vm1", make_descriptor(cpu=1, mem=1024))
    host.reserve(vm)
    host.resize(vm, cpu=2, memory_mb=2048)
    assert vm.descriptor.cpu == 2
    assert host.cpu_free == 2
    with pytest.raises(CapacityError):
        host.resize(vm, memory_mb=10000)
    with pytest.raises(ValueError):
        host.resize(vm, cpu=-1)


def test_host_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Host(env, "h", cpu_cores=0)


def test_hypervisor_timings_validation():
    with pytest.raises(ValueError):
        HypervisorTimings(boot_s=-1)


def test_host_image_staging_cost_and_cache():
    env = Environment()
    repo = ImageRepository(bandwidth_mb_per_s=100)
    repo.add("base", size_mb=1000)
    host = Host(env, "h1")
    durations = []

    def stage_twice(env):
        t0 = env.now
        yield env.process(host.stage_image(repo, "base", cache=True))
        durations.append(env.now - t0)
        t0 = env.now
        yield env.process(host.stage_image(repo, "base", cache=True))
        durations.append(env.now - t0)

    env.process(stage_twice(env))
    env.run()
    assert durations[0] == pytest.approx(10.0)  # 1000 MB / 100 MB/s
    assert durations[1] == 0.0                  # cache hit
    assert host.images_staged == 1
    assert host.cache_hits == 1


def test_host_staging_without_cache_pays_every_time():
    env = Environment()
    repo = ImageRepository(bandwidth_mb_per_s=100)
    repo.add("base", size_mb=500)

    host = Host(env, "h1")
    times = []

    def stage(env):
        for _ in range(3):
            t0 = env.now
            yield env.process(host.stage_image(repo, "base", cache=False))
            times.append(env.now - t0)

    env.process(stage(env))
    env.run()
    assert times == [pytest.approx(5.0)] * 3
    assert host.images_staged == 3


def test_host_prestage_skips_transfer():
    env = Environment()
    repo = ImageRepository()
    repo.add("base", size_mb=4096)
    host = Host(env, "h1")
    host.prestage("base")

    def stage(env):
        yield env.process(host.stage_image(repo, "base"))

    env.process(stage(env))
    env.run()
    assert env.now == 0.0
    assert repo.bytes_served_mb == 0


def test_host_vms_of_component():
    env = Environment()
    host = Host(env, "h1", cpu_cores=16, memory_mb=65536)
    for i in range(3):
        vm = VirtualMachine(env, f"e{i}", make_descriptor(
            name=f"e{i}", component_id="exec"))
        host.reserve(vm)
    other = VirtualMachine(env, "db", make_descriptor(
        name="db", component_id="dbms"))
    host.reserve(other)
    assert len(host.vms_of_component("exec")) == 3
    assert len(host.vms_of_component("dbms")) == 1
