"""Tests for VM-bound execution services and the elastic virtual cluster."""

import pytest

from repro.cloud import (
    DeploymentDescriptor,
    Host,
    HypervisorTimings,
    ImageRepository,
    VEEM,
    VMState,
)
from repro.grid import CondorScheduler, ExecutionService, Job, VirtualCluster
from repro.sim import Environment

TIMINGS = HypervisorTimings(define_s=2, boot_s=45, shutdown_s=10)


def build_stack(env, n_hosts=4, per_host=4):
    repo = ImageRepository(bandwidth_mb_per_s=100)
    repo.add("condor-exec", size_mb=1000)  # 10 s staging
    veem = VEEM(env, repository=repo)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=per_host,
                           memory_mb=per_host * 2048, timings=TIMINGS))
    sched = CondorScheduler(env, match_delay_s=0.5)
    template = DeploymentDescriptor(
        name="condor-exec", memory_mb=2048, cpu=1,
        disk_source="http://sm.internal/images/condor-exec",
        service_id="polymorph", component_id="CondorExec",
    )
    cluster = VirtualCluster(env, veem, sched, template,
                             registration_delay_s=20)
    return veem, sched, cluster


def test_execution_service_registers_after_vm_boot():
    env = Environment()
    veem, sched, cluster = build_stack(env)
    cluster.deploy_instance()
    env.run(until=70)
    # 10 staging + 47 boot = 57, +20 registration = 77 → not yet at 70.
    assert sched.node_count == 0
    env.run(until=80)
    assert sched.node_count == 1


def test_registration_delay_validation():
    env = Environment()
    veem, sched, cluster = build_stack(env)
    vm = veem.submit(cluster.template)
    with pytest.raises(ValueError):
        ExecutionService(env, vm, sched, registration_delay_s=-1)


def test_cluster_runs_jobs_end_to_end():
    env = Environment()
    veem, sched, cluster = build_stack(env)
    for _ in range(2):
        cluster.deploy_instance()
    jobs = [Job(duration_s=100, input_mb=0, output_mb=0) for _ in range(4)]
    sched.submit_many(jobs)
    env.run(until=400)
    assert all(j.state.value == "completed" for j in jobs)
    # 2 nodes × 2 waves of 100 s after ~77 s provisioning.
    assert jobs[-1].completed_at == pytest.approx(77 + 200, abs=10)


def test_instance_count_includes_provisioning_vms():
    env = Environment()
    veem, sched, cluster = build_stack(env)
    cluster.deploy_instance()
    assert cluster.instance_count == 1  # still PENDING, but counted
    assert cluster.registered_count == 0


def test_release_instance_prefers_idle_node():
    env = Environment()
    veem, sched, cluster = build_stack(env)
    for _ in range(2):
        cluster.deploy_instance()
    env.run(until=100)
    assert sched.node_count == 2
    job = sched.submit(Job(duration_s=500, input_mb=0, output_mb=0))
    env.run(until=110)
    released = cluster.release_instance()
    assert released is not None
    env.run(until=150)
    assert sched.node_count == 1
    assert cluster.instance_count == 1
    # The busy node survived; the job is still running.
    assert job.state.value == "running"


def test_release_busy_node_finishes_job_first():
    env = Environment()
    veem, sched, cluster = build_stack(env)
    cluster.deploy_instance()
    env.run(until=100)
    job = sched.submit(Job(duration_s=200, input_mb=0, output_mb=0))
    env.run(until=110)
    cluster.release_instance()
    env.run(until=250)
    # Drain means the job keeps running rather than being evicted.
    assert job.state.value == "running"
    env.run(until=400)
    # Started ≈ t=100, duration 200 s → completes ≈ t=300.
    assert job.state.value == "completed"
    assert cluster.all_stopped


def test_release_provisioning_instance():
    env = Environment()
    veem, sched, cluster = build_stack(env)
    cluster.deploy_instance()
    env.run(until=30)  # VM still staging/booting
    released = cluster.release_instance()
    assert released is not None
    assert cluster.instance_count == 0
    env.run(until=300)
    # VM finished booting and was then shut down; never registered.
    assert sched.node_count == 0
    assert released.vm.state is VMState.STOPPED


def test_release_with_no_instances_returns_none():
    env = Environment()
    veem, sched, cluster = build_stack(env)
    assert cluster.release_instance() is None


def test_release_all_deallocates_everything():
    env = Environment()
    veem, sched, cluster = build_stack(env, n_hosts=4)
    for _ in range(6):
        cluster.deploy_instance()
    env.run(until=200)
    assert sched.node_count == 6
    count = cluster.release_all()
    assert count == 6
    env.run(until=400)
    assert cluster.all_stopped
    assert all(not vm.is_active for vm in veem.vms.values())


def test_killed_vm_never_registers():
    """A VM whose registration delay is interrupted by shutdown must not
    appear in the scheduler."""
    env = Environment()
    veem, sched, cluster = build_stack(env)
    service = cluster.deploy_instance()
    # Let the VM reach RUNNING (t=57) then kill it during the 20 s
    # registration window.
    env.run(until=60)
    assert service.vm.state is VMState.RUNNING

    def kill(env):
        yield veem.shutdown(service.vm)

    env.process(kill(env))
    env.run(until=200)
    assert sched.node_count == 0


def test_cluster_respects_host_capacity():
    env = Environment()
    veem, sched, cluster = build_stack(env, n_hosts=1, per_host=4)
    for _ in range(4):
        cluster.deploy_instance()
    from repro.cloud import PlacementError
    with pytest.raises(PlacementError):
        cluster.deploy_instance()
