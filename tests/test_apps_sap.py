"""Tests for the SAP motivating-example application model."""

import pytest

from repro.apps import (
    SAPConfig,
    SessionWorkload,
    WebDispatcher,
    deploy_sap,
    drive_sessions,
    sap_manifest,
)
from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
from repro.core.manifest import ensure_valid
from repro.core.service_manager import ServiceManager
from repro.sim import Environment


def make_stack(env, n_hosts=4):
    repo = ImageRepository(bandwidth_mb_per_s=100)
    veem = VEEM(env, repository=repo)
    timings = HypervisorTimings(define_s=2, boot_s=30, shutdown_s=5)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=8, memory_mb=16384,
                           timings=timings))
    return ServiceManager(env, veem)


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

def test_sap_manifest_valid_and_constrained():
    manifest = sap_manifest()
    ensure_valid(manifest)
    ci = manifest.system("CentralInstance")
    assert not ci.replicable
    assert ci.instances.maximum == 1
    coloc = manifest.placement.colocations
    assert any(c.system_id == "CentralInstance" and c.with_system_id == "DBMS"
               for c in coloc)
    di = manifest.system("DialogInstance")
    assert di.instances.elastic
    # Startup order: DBMS → CI → dispatcher → DIs.
    assert manifest.startup_order() == [
        ["DBMS"], ["CentralInstance"], ["WebDispatcher"], ["DialogInstance"]]


def test_sap_config_validation():
    with pytest.raises(ValueError):
        SAPConfig(sessions_per_di=0)
    with pytest.raises(ValueError):
        SAPConfig(min_dialog_instances=5, max_dialog_instances=2)


# ---------------------------------------------------------------------------
# WebDispatcher session model
# ---------------------------------------------------------------------------

def test_dispatcher_sessions_and_capacity():
    env = Environment()
    d = WebDispatcher(env, SAPConfig(sessions_per_di=10))
    assert d.load_ratio == 0.0
    d.register_di("di-1")
    assert d.capacity == 10
    for _ in range(10):
        assert d.open_session()
    assert d.load_ratio == 1.0
    # Hard rejection only at 2× capacity.
    for _ in range(10):
        assert d.open_session()
    assert not d.open_session()
    assert d.rejected_sessions == 1
    d.close_session()
    assert d.active_sessions == 19


def test_dispatcher_zero_capacity_rejects():
    env = Environment()
    d = WebDispatcher(env, SAPConfig())
    assert not d.open_session()
    assert d.rejected_sessions == 1


def test_dispatcher_registration_bookkeeping():
    env = Environment()
    d = WebDispatcher(env, SAPConfig())
    d.register_di("a")
    with pytest.raises(ValueError):
        d.register_di("a")
    d.deregister_di("a")
    assert d.dialog_instances == []
    with pytest.raises(ValueError):
        d.close_session()


# ---------------------------------------------------------------------------
# Session workload
# ---------------------------------------------------------------------------

def test_session_workload_validation():
    with pytest.raises(ValueError):
        SessionWorkload(phases=())
    with pytest.raises(ValueError):
        SessionWorkload(phases=((0, 1),))
    with pytest.raises(ValueError):
        SessionWorkload(session_duration_s=0)
    assert SessionWorkload().total_duration_s == 7200.0


# ---------------------------------------------------------------------------
# Full deployment behaviour
# ---------------------------------------------------------------------------

def test_sap_deploys_with_colocation():
    env = Environment()
    sm = make_stack(env)
    dep = deploy_sap(env, sm)
    env.run(until=dep.service.deployment)
    lifecycle = dep.service.lifecycle
    ci = lifecycle.components["CentralInstance"].vms[0]
    dbms = lifecycle.components["DBMS"].vms[0]
    assert ci.host is dbms.host
    # CI got the DBMS address injected (MDL6).
    assert ci.descriptor.customisation["db_host"] == \
        dbms.ip_addresses["internal"]
    assert dep.service.check_constraints().ok


def test_sap_scales_with_session_load():
    env = Environment()
    sm = make_stack(env)
    dep = deploy_sap(env, sm)
    env.run(until=dep.service.deployment)
    workload = SessionWorkload(
        phases=((600.0, 0.02), (2400.0, 0.6), (600.0, 0.02)),
        session_duration_s=600.0,
    )
    env.process(drive_sessions(env, dep.dispatcher, workload))
    env.run(until=env.now + workload.total_duration_s + 1200)
    peak_di = dep.dispatcher.series["dialog_instances"].maximum()
    assert peak_di > 1                      # scaled up under load
    assert dep.dialog_instance_count == 1   # scaled back down after
    assert dep.service.check_constraints().ok


def test_sap_central_instance_never_replicated():
    env = Environment()
    sm = make_stack(env)
    dep = deploy_sap(env, sm)
    env.run(until=dep.service.deployment)
    from repro.core.service_manager import ScaleError
    with pytest.raises(ScaleError):
        dep.service.lifecycle.scale_up("CentralInstance")


def test_sap_di_bounds_respected_under_extreme_load():
    env = Environment()
    sm = make_stack(env, n_hosts=8)
    cfg = SAPConfig(max_dialog_instances=4)
    dep = deploy_sap(env, sm, cfg)
    env.run(until=dep.service.deployment)
    workload = SessionWorkload(
        phases=((3600.0, 2.0),), session_duration_s=1800.0)
    env.process(drive_sessions(env, dep.dispatcher, workload))
    env.run(until=env.now + 3600)
    assert dep.dialog_instance_count <= 4
    assert dep.dispatcher.series["dialog_instances"].maximum() <= 4
