"""Property tests for the §16 workload generators.

The three contracts the scenario factory stands on: identical seeds yield
identical session streams (including under ``--procs``), offered load is
conserved at the configured level, and heavy-tailed draws actually carry
the configured tail index.
"""

from types import SimpleNamespace

import pytest

from repro.experiments.scale import ScaleConfig, verify_against_oracle
from repro.scenarios.chaos import SiteOutage
from repro.scenarios.workloads import (
    LOAD_UNIT,
    WorkloadError,
    draw_profiles,
    hill_estimator,
    offered_load,
    schedule_mean,
    workload_names,
)
from repro.sim import RandomStreams

DURATION = 3600.0


def stub_cfg(workload="baseline", params=(), services=64, tenants=8,
             seed=2010):
    """draw_profiles duck-types its config; a namespace is enough."""
    return SimpleNamespace(
        random_seed=seed, duration_s=DURATION, monitor_period_s=60.0,
        elastic_fraction=0.25, tenants=tenants, workload=workload,
        workload_params=tuple(sorted(dict(params).items())),
        services=services)


def stub_requests(n=64, tenants=8, sites=4):
    return [SimpleNamespace(service_id=f"svc-{i}",
                            tenant=f"tenant-{i % tenants}",
                            site=f"site-{i % sites}")
            for i in range(n)]


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(workload_names()))
def test_identical_seed_identical_stream(name):
    requests = stub_requests()
    first = draw_profiles(stub_cfg(name), requests)
    second = draw_profiles(stub_cfg(name), requests)
    assert first == second


def test_different_seeds_differ():
    requests = stub_requests()
    a = draw_profiles(stub_cfg(seed=1), requests)
    b = draw_profiles(stub_cfg(seed=2), requests)
    assert a != b


def test_baseline_replays_the_historical_draw_order():
    """workload="baseline" must consume the "scale" stream in the exact
    four-draw-per-service order of the pre-factory harness, so existing
    seeds reproduce their recorded runs."""
    requests = stub_requests(n=8)
    profiles = draw_profiles(stub_cfg(), requests)
    rng = RandomStreams(2010).stream("scale")
    for profile in profiles:
        elastic = rng.random() < 0.25
        peak = (int(rng.uniform(100, 150)) if elastic
                else int(rng.uniform(40, 70)))
        start_s = rng.uniform(0.05, 0.4) * DURATION
        hold_s = rng.uniform(0.15, 0.3) * DURATION
        assert profile.peak_sessions == peak
        assert profile.start_s == start_s
        assert profile.hold_s == hold_s
        assert profile.drain_level == (10 if elastic else 30)
        assert profile.schedule == ()


def test_sharded_flash_crowd_with_chaos_matches_oracle():
    """Identical seed ⇒ identical run under --procs too, chaos included:
    the sharded execution must agree with the single-process oracle
    decision-for-decision."""
    cfg = ScaleConfig(
        sites=4, services=16, hours=0.25, random_seed=7, procs=2,
        workload="flash-crowd", check_invariants=True, settle_s=120.0,
        chaos=(SiteOutage(at_s=465.0, sites=("site-1",),
                          recover_after_s=240.0),))
    sharded, oracle, divergences = verify_against_oracle(cfg)
    assert divergences == []
    assert sharded.violations == () and oracle.violations == ()


# ---------------------------------------------------------------------------
# Rate conservation
# ---------------------------------------------------------------------------

def test_diurnal_conserves_offered_load_per_service():
    load = 0.6
    profiles = draw_profiles(
        stub_cfg("diurnal", {"load": load}), stub_requests(n=100))
    for profile in profiles:
        mean = schedule_mean(profile.schedule, DURATION)
        # exact up to per-step integer rounding of the 24-point schedule
        assert mean == pytest.approx(load * LOAD_UNIT, abs=1.0)


def test_heavy_tail_conserves_federation_load():
    load = 0.5
    n = 200
    profiles = draw_profiles(
        stub_cfg("heavy-tail", {"load": load}), stub_requests(n=n))
    total = offered_load(profiles, DURATION)
    # global normalisation is exact up to max(1, round(level)) clamping
    assert total == pytest.approx(load * LOAD_UNIT * n, rel=0.05)


def test_flash_crowd_quiet_level_tracks_load():
    profiles = draw_profiles(
        stub_cfg("flash-crowd", {"load": 0.4, "crowd_fraction": 0.0}),
        stub_requests(n=20))
    for profile in profiles:
        assert profile.schedule == ((0.0, 40),)


# ---------------------------------------------------------------------------
# Tail index
# ---------------------------------------------------------------------------

def test_heavy_tail_produces_configured_tail_index():
    alpha = 1.5
    profiles = draw_profiles(
        stub_cfg("heavy-tail", {"alpha": alpha}),
        stub_requests(n=2000))
    # hold_s carries the untruncated Pareto draw for exactly this purpose
    estimate = hill_estimator([p.hold_s for p in profiles])
    assert estimate == pytest.approx(alpha, rel=0.25)


def test_heavier_tail_estimates_lower_alpha():
    heavy = draw_profiles(stub_cfg("heavy-tail", {"alpha": 1.1}),
                          stub_requests(n=2000))
    light = draw_profiles(stub_cfg("heavy-tail", {"alpha": 2.5}),
                          stub_requests(n=2000))
    assert (hill_estimator([p.hold_s for p in heavy])
            < hill_estimator([p.hold_s for p in light]))


# ---------------------------------------------------------------------------
# Structure and validation
# ---------------------------------------------------------------------------

def test_flash_crowd_membership_fraction():
    profiles = draw_profiles(
        stub_cfg("flash-crowd", {"crowd_fraction": 0.5}),
        stub_requests(n=400))
    members = [p for p in profiles if len(p.schedule) == 4]
    assert 0.4 <= len(members) / len(profiles) <= 0.6
    for member in members:
        spike = member.schedule[1][1]
        assert spike > 80       # past the scale-up threshold
        assert member.schedule[2][1] < 20   # drains below the down threshold


def test_tenant_mix_splits_heavy_and_light():
    profiles = draw_profiles(
        stub_cfg("tenant-mix", {"heavy_tenants": 2}),
        stub_requests(n=64, tenants=8))
    for profile in profiles:
        heavy = profile.tenant in ("tenant-0", "tenant-1")
        if heavy:
            assert profile.schedule == ()
            assert profile.peak_sessions > 80
        else:
            assert profile.schedule == ((0.0, 30),)


def test_schedules_start_at_zero():
    for name in workload_names():
        for profile in draw_profiles(stub_cfg(name), stub_requests(n=16)):
            if profile.schedule:
                assert profile.schedule[0][0] == 0.0


def test_unknown_workload_rejected():
    with pytest.raises(WorkloadError):
        draw_profiles(stub_cfg("no-such-workload"), stub_requests(n=1))
    with pytest.raises(ValueError):
        ScaleConfig(workload="no-such-workload")


def test_schedule_mean():
    assert schedule_mean((), 100.0) == 0.0
    assert schedule_mean(((0.0, 10),), 100.0) == 10.0
    assert schedule_mean(((0.0, 0), (50.0, 20)), 100.0) == 10.0
    # the last level holds to the end; points past the horizon are ignored
    assert schedule_mean(((0.0, 4), (200.0, 99)), 100.0) == 4.0


def test_hill_estimator_validation():
    with pytest.raises(WorkloadError):
        hill_estimator([1.0, 2.0])
    with pytest.raises(WorkloadError):
        hill_estimator([0.0] * 20)
    with pytest.raises(WorkloadError):
        hill_estimator([5.0] * 20)      # degenerate: no tail at all
