"""Property-based tests on cross-module invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import (
    Affinity,
    AntiAffinity,
    ComponentCap,
    DeploymentDescriptor,
    Host,
    Placer,
    PlacementError,
    BestFit,
    FirstFit,
    WorstFit,
    VirtualMachine,
)
from repro.core.service_manager import ServiceAccountant
from repro.monitoring import DataSource, InformationModel, MulticastChannel
from repro.monitoring import AttributeType, Probe, ProbeAttribute
from repro.sim import Environment


# ---------------------------------------------------------------------------
# Placement invariants
# ---------------------------------------------------------------------------

_policies = st.sampled_from([FirstFit, BestFit, WorstFit])


@given(
    policy_cls=_policies,
    host_sizes=st.lists(st.tuples(st.floats(1, 8), st.floats(512, 16384)),
                        min_size=1, max_size=6),
    demands=st.lists(st.tuples(st.floats(0.5, 4), st.floats(256, 8192)),
                     min_size=1, max_size=20),
    cap=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_placement_never_violates_capacity_or_caps(policy_cls, host_sizes,
                                                   demands, cap):
    """Whatever the policy and demand sequence: no host is oversubscribed
    and no per-host cap is exceeded; infeasible demands raise cleanly."""
    env = Environment()
    hosts = [Host(env, f"h{i}", cpu_cores=c, memory_mb=m)
             for i, (c, m) in enumerate(host_sizes)]
    placer = Placer(policy=policy_cls(),
                    constraints=[ComponentCap("exec", cap)])
    placed = 0
    for i, (cpu, mem) in enumerate(demands):
        d = DeploymentDescriptor(
            name=f"vm{i}", memory_mb=mem, cpu=cpu, disk_source="x",
            service_id="svc", component_id="exec")
        try:
            host = placer.select(hosts, d)
        except PlacementError:
            continue
        vm = VirtualMachine(env, f"vm{i}", d)
        host.reserve(vm)
        placed += 1
    for host in hosts:
        assert host.cpu_free >= -1e-6
        assert host.memory_free >= -1e-6
        assert len(host.vms_of_component("exec")) <= cap
    assert placed <= len(demands)


@given(
    anchor_host=st.integers(0, 3),
    n_followers=st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_affinity_always_lands_on_anchor_host(anchor_host, n_followers):
    env = Environment()
    hosts = [Host(env, f"h{i}", cpu_cores=32, memory_mb=65536)
             for i in range(4)]
    anchor = VirtualMachine(env, "anchor", DeploymentDescriptor(
        name="anchor", memory_mb=1024, cpu=1, disk_source="x",
        service_id="svc", component_id="db"))
    hosts[anchor_host].reserve(anchor)
    placer = Placer(constraints=[Affinity("app", "db")])
    for i in range(n_followers):
        d = DeploymentDescriptor(
            name=f"app{i}", memory_mb=512, cpu=0.5, disk_source="x",
            service_id="svc", component_id="app")
        chosen = placer.select(hosts, d)
        assert chosen is hosts[anchor_host]
        vm = VirtualMachine(env, f"app{i}", d)
        chosen.reserve(vm)


@given(seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_anti_affinity_never_shares(seed):
    env = Environment()
    hosts = [Host(env, f"h{i}", cpu_cores=8, memory_mb=16384)
             for i in range(3)]
    placer = Placer(constraints=[AntiAffinity("replica", "primary")])
    primary = VirtualMachine(env, "p", DeploymentDescriptor(
        name="p", memory_mb=1024, cpu=1, disk_source="x",
        service_id="svc", component_id="primary"))
    hosts[seed % 3].reserve(primary)
    for i in range(4):
        d = DeploymentDescriptor(
            name=f"r{i}", memory_mb=1024, cpu=1, disk_source="x",
            service_id="svc", component_id="replica")
        chosen = placer.select(hosts, d)
        assert chosen is not primary.host
        chosen.reserve(VirtualMachine(env, f"r{i}", d))


# ---------------------------------------------------------------------------
# Accounting invariants
# ---------------------------------------------------------------------------

@given(
    events=st.lists(st.sampled_from(["deploy", "release"]),
                    min_size=1, max_size=40),
    gap=st.floats(1, 100),
)
@settings(max_examples=60, deadline=None)
def test_accounting_counts_never_negative(events, gap):
    """Any deploy/release interleaving: the series equals deploys − releases
    applied so far; over-release raises instead of going negative."""
    env = Environment()
    acc = ServiceAccountant(env, "svc")

    def drive(env):
        live = 0
        for event in events:
            yield env.timeout(gap)
            if event == "deploy":
                acc.instance_deployed("c")
                live += 1
            else:
                if live == 0:
                    with pytest.raises(ValueError):
                        acc.instance_released("c")
                else:
                    acc.instance_released("c")
                    live -= 1
            assert acc.current_instances("c") == live

    env.process(drive(env))
    env.run()
    usage = acc.usage("c", 0, env.now)
    assert usage.instance_seconds >= 0
    assert usage.peak_instances >= acc.current_instances("c")


# ---------------------------------------------------------------------------
# Information model under DHT churn with live probes
# ---------------------------------------------------------------------------

def test_infomodel_lookup_survives_node_churn():
    env = Environment()
    net = MulticastChannel(env)
    im = InformationModel(initial_nodes=4)
    ds = DataSource(env, "ds", "svc", net, infomodel=im)
    probes = []
    for i in range(20):
        probes.append(ds.add_probe(Probe(
            name=f"p{i}", qualified_name=f"uk.ucl.stream{i}.kpi",
            attributes=[ProbeAttribute("v", AttributeType.INTEGER, "u")],
            collector=lambda: (1,), data_rate_s=1000)))
    # Membership churn while the registrations are resident.
    im.ring.join("late-joiner-1")
    im.ring.join("late-joiner-2")
    im.ring.leave("im-node-0")
    for probe in probes:
        assert im.probe_name(probe.probe_id) == probe.name
        schema = im.schema_of(probe.probe_id)
        assert schema is not None and schema.attributes[0].units == "u"
    assert len(im.known_probes()) == 20
