"""Tests for the manifest abstract syntax, ADL, rules and validation."""

import pytest

from repro.core.manifest import (
    AntiColocationConstraint,
    ApplicationDescription,
    ColocationConstraint,
    ComponentDescription,
    ElasticityRule,
    FileReference,
    InstanceBounds,
    KeyPerformanceIndicator,
    LogicalNetwork,
    ManifestBuilder,
    ManifestValidationError,
    Severity,
    StartupEntry,
    Trigger,
    VEEMOperation,
    VirtualDisk,
    VirtualHardware,
    VirtualSystem,
    parse_action,
    parse_expression,
    validate_manifest,
)


# ---------------------------------------------------------------------------
# ADL
# ---------------------------------------------------------------------------

def test_kpi_validation():
    with pytest.raises(ValueError):
        KeyPerformanceIndicator("notdotted")
    with pytest.raises(ValueError):
        KeyPerformanceIndicator("a.b", frequency_s=0)
    with pytest.raises(ValueError):
        KeyPerformanceIndicator("a.b", category="Nonsense")


def test_kpi_type_names_round_trip():
    for name in ("int", "long", "float", "double", "bool", "string"):
        kpi = KeyPerformanceIndicator(
            "a.b", type=KeyPerformanceIndicator.type_from_name(name))
        assert kpi.type_name == name
    with pytest.raises(ValueError):
        KeyPerformanceIndicator.type_from_name("quaternion")


def test_component_description_lookups():
    kpi = KeyPerformanceIndicator("uk.ucl.x.y")
    comp = ComponentDescription("GridMgmt", "GM", (kpi,))
    assert comp.kpi("uk.ucl.x.y") is kpi
    with pytest.raises(KeyError):
        comp.kpi("uk.ucl.other.z")
    with pytest.raises(ValueError):
        ComponentDescription("", "GM")
    with pytest.raises(ValueError):
        ComponentDescription("c", "")
    with pytest.raises(ValueError):
        ComponentDescription("c", "GM", (kpi, kpi))


def test_application_description_global_kpi_names():
    k = KeyPerformanceIndicator("a.b")
    with pytest.raises(ValueError, match="global"):
        ApplicationDescription("app", (
            ComponentDescription("c1", "v1", (k,)),
            ComponentDescription("c2", "v2", (k,)),
        ))


def test_application_kpi_defaults():
    app = ApplicationDescription("app", (
        ComponentDescription("c1", "v1", (
            KeyPerformanceIndicator("a.b", default=3.0),
            KeyPerformanceIndicator("a.c"),
        )),
    ))
    assert app.kpi_defaults() == {"a.b": 3.0}
    assert app.declared_names() == {"a.b", "a.c"}
    assert app.kpi("a.b").default == 3.0
    assert app.component("c1").name == "c1"
    with pytest.raises(KeyError):
        app.component("nope")
    with pytest.raises(KeyError):
        app.kpi("z.z")


# ---------------------------------------------------------------------------
# Elasticity actions / rules
# ---------------------------------------------------------------------------

def test_parse_action_forms():
    a = parse_action("deployVM(uk.ucl.condor.exec.ref)")
    assert a.operation is VEEMOperation.DEPLOY_VM
    assert a.component_ref == "uk.ucl.condor.exec.ref"
    b = parse_action("migrateVM(web, site-b)")
    assert b.operation is VEEMOperation.MIGRATE_VM
    assert b.arguments == ("site-b",)
    c = parse_action("notify()")
    assert c.component_ref == ""


def test_parse_action_errors():
    from repro.core.manifest import ExpressionError
    with pytest.raises(ExpressionError):
        parse_action("deployVM")          # no parens
    with pytest.raises(ExpressionError):
        parse_action("explodeVM(x)")      # unknown op


def test_action_unparse_round_trip():
    for text in ("deployVM(exec.ref)", "undeployVM(exec)",
                 "reconfigureVM(db, cpu=2)"):
        assert parse_action(parse_action(text).unparse()).unparse() == \
            parse_action(text).unparse()


def test_rule_requires_action_and_name():
    trig = Trigger(parse_expression("1 > 0"))
    with pytest.raises(ValueError):
        ElasticityRule("", trig, (parse_action("notify()"),))
    with pytest.raises(ValueError):
        ElasticityRule("r", trig, ())


def test_trigger_time_constraint_validation():
    with pytest.raises(ValueError):
        Trigger(parse_expression("1 > 0"), time_constraint_ms=0)
    assert Trigger(parse_expression("1 > 0"),
                   time_constraint_ms=5000).time_constraint_s == 5.0


def test_rule_cooldown_defaults_to_time_constraint():
    rule = ElasticityRule.from_text("r", "1 > 0", "notify()",
                                    time_constraint_ms=2000)
    assert rule.effective_cooldown_s == 2.0
    explicit = ElasticityRule.from_text("r", "1 > 0", "notify()",
                                        cooldown_s=60)
    assert explicit.effective_cooldown_s == 60


# ---------------------------------------------------------------------------
# Model validation basics
# ---------------------------------------------------------------------------

def test_instance_bounds_validation():
    with pytest.raises(ValueError):
        InstanceBounds(initial=5, minimum=0, maximum=4)
    with pytest.raises(ValueError):
        InstanceBounds(initial=0, minimum=1, maximum=4)
    with pytest.raises(ValueError):
        InstanceBounds(minimum=-1)
    assert InstanceBounds(initial=2, minimum=0, maximum=16).elastic
    assert not InstanceBounds().elastic


def test_non_replicable_system_cannot_be_elastic():
    with pytest.raises(ValueError, match="non-replicable"):
        VirtualSystem(
            system_id="CI", replicable=False,
            instances=InstanceBounds(initial=1, minimum=1, maximum=4),
        )


def test_basic_model_validation():
    with pytest.raises(ValueError):
        FileReference("", "href", 10)
    with pytest.raises(ValueError):
        FileReference("f", "href", 0)
    with pytest.raises(ValueError):
        VirtualDisk("", "f")
    with pytest.raises(ValueError):
        LogicalNetwork("")
    with pytest.raises(ValueError):
        VirtualHardware(cpu=0)
    with pytest.raises(ValueError):
        StartupEntry("x", order=-1)
    with pytest.raises(ValueError):
        ColocationConstraint("a", "a")
    with pytest.raises(ValueError):
        AntiColocationConstraint("a", "a")


def test_startup_order_tiers():
    b = ManifestBuilder("svc")
    b.component("db", image_mb=100, startup_order=0)
    b.component("ci", image_mb=100, startup_order=0)
    b.component("web", image_mb=100, startup_order=1)
    b.component("extra", image_mb=100)  # unlisted
    manifest = b.build()
    assert manifest.startup_order() == [["db", "ci"], ["web"], ["extra"]]


def test_image_href_resolution():
    b = ManifestBuilder("svc")
    b.component("db", image_mb=100, image_href="http://x/db.img")
    manifest = b.build()
    assert manifest.image_href(manifest.system("db")) == "http://x/db.img"


def test_manifest_lookups_raise_keyerror():
    manifest = ManifestBuilder("svc").component("a", image_mb=1).build()
    with pytest.raises(KeyError):
        manifest.system("nope")
    with pytest.raises(KeyError):
        manifest.disk("nope")
    with pytest.raises(KeyError):
        manifest.file("nope")
    with pytest.raises(KeyError):
        manifest.network("nope")


# ---------------------------------------------------------------------------
# Well-formedness rules
# ---------------------------------------------------------------------------

def error_codes(manifest):
    return {i.code for i in validate_manifest(manifest)
            if i.severity is Severity.ERROR}


def warning_codes(manifest):
    return {i.code for i in validate_manifest(manifest)
            if i.severity is Severity.WARNING}


def test_valid_manifest_has_no_errors():
    b = ManifestBuilder("svc")
    b.network("net")
    b.component("GM", image_mb=100, networks=["net"])
    b.component("exec", image_mb=100, initial=1, minimum=0, maximum=8)
    b.kpi("GridMgmt", "GM", "uk.ucl.q.size", default=0)
    b.kpi("Cluster", "exec", "uk.ucl.n.size", default=0)
    b.rule("up", "(@uk.ucl.q.size > 4) && (@uk.ucl.n.size < 8)",
           "deployVM(exec)")
    b.rule("down", "(@uk.ucl.q.size == 0) && (@uk.ucl.n.size > 0)",
           "undeployVM(exec)")
    assert error_codes(b.build()) == set()


def test_dangling_disk_ref_detected():
    from repro.core.manifest import ServiceManifest
    manifest = ServiceManifest(
        service_name="svc",
        disks=(VirtualDisk("d1", "missing-file"),),
        virtual_systems=(VirtualSystem("s1", disk_refs=("d1",)),),
    )
    assert "disk-fileref" in error_codes(manifest)


def test_system_without_disk_detected():
    from repro.core.manifest import ServiceManifest
    manifest = ServiceManifest(
        service_name="svc",
        virtual_systems=(VirtualSystem("s1"),),
    )
    assert "system-no-disk" in error_codes(manifest)


def test_unknown_network_ref_detected():
    b = ManifestBuilder("svc")
    b.component("a", image_mb=1, networks=["ghost"])
    manifest = b.build(validate=False)
    assert "system-netref" in error_codes(manifest)


def test_startup_unknown_and_duplicate():
    from repro.core.manifest import ServiceManifest
    manifest = ServiceManifest(
        service_name="svc",
        startup=(StartupEntry("ghost", 0), StartupEntry("ghost", 1)),
    )
    codes = error_codes(manifest)
    assert "startup-unknown" in codes
    assert "startup-dup" in codes


def test_contradictory_colocation_detected():
    b = ManifestBuilder("svc")
    b.component("a", image_mb=1).component("b", image_mb=1)
    b.colocate("a", "b").anti_colocate("a", "b")
    assert "coloc-contradiction" in error_codes(b.build(validate=False))


def test_contradictory_site_placement_detected():
    b = ManifestBuilder("svc")
    b.component("a", image_mb=1)
    b.site_placement("a", favour=["x"], avoid=["x"])
    assert "site-contradiction" in error_codes(b.build(validate=False))


def test_rule_with_undeclared_kpi_detected():
    b = ManifestBuilder("svc")
    b.component("exec", image_mb=1, initial=1, minimum=0, maximum=4)
    b.rule("up", "@un.declared > 1", "deployVM(exec)")
    assert "rule-undeclared-kpi" in error_codes(b.build(validate=False))


def test_deploy_action_on_fixed_component_detected():
    b = ManifestBuilder("svc")
    b.component("db", image_mb=1)  # fixed bounds
    b.kpi("C", "db", "a.b", default=0)
    b.rule("up", "@a.b > 1", "deployVM(db)")
    assert "action-not-elastic" in error_codes(b.build(validate=False))


def test_action_unknown_target_detected():
    b = ManifestBuilder("svc")
    b.component("a", image_mb=1)
    b.kpi("C", "a", "a.b", default=0)
    b.rule("up", "@a.b > 1", "deployVM(ghost)")
    assert "action-target" in error_codes(b.build(validate=False))


def test_dotted_ref_style_resolves():
    """The paper's uk.ucl.condor.exec.ref style must resolve to 'exec'."""
    b = ManifestBuilder("svc")
    b.component("exec", image_mb=1, initial=0, minimum=0, maximum=4)
    b.kpi("C", "exec", "a.b", default=0)
    b.rule("up", "@a.b > 1", "deployVM(uk.ucl.condor.exec.ref)")
    assert error_codes(b.build(validate=False)) == set()


def test_unused_kpi_warns():
    b = ManifestBuilder("svc")
    b.component("a", image_mb=1)
    b.kpi("C", "a", "a.b")
    assert "kpi-unused" in warning_codes(b.build(validate=False))


def test_elastic_without_rule_warns():
    b = ManifestBuilder("svc")
    b.component("exec", image_mb=1, initial=1, minimum=0, maximum=4)
    assert "elastic-undriven" in warning_codes(b.build(validate=False))


def test_adl_binding_to_unknown_system_detected():
    b = ManifestBuilder("svc")
    b.component("a", image_mb=1)
    b.kpi("C", "ghost-system", "a.b")
    assert "adl-binding" in error_codes(b.build(validate=False))


def test_ensure_valid_raises_with_issue_list():
    b = ManifestBuilder("svc")
    b.component("a", image_mb=1, networks=["ghost"])
    with pytest.raises(ManifestValidationError) as exc:
        b.build()
    assert any(i.code == "system-netref" for i in exc.value.issues)


def test_builder_validate_false_skips():
    b = ManifestBuilder("svc")
    b.component("a", image_mb=1, networks=["ghost"])
    manifest = b.build(validate=False)  # no raise
    assert manifest.service_name == "svc"
