"""Tests for accounting-based billing with SLA credits."""

import pytest

from repro.core.manifest import SLASection, ServiceLevelObjective
from repro.core.service_manager import (
    BillingService,
    Invoice,
    InvoiceLine,
    PriceSchedule,
    ServiceAccountant,
)
from repro.core.sla import SLAMonitor
from repro.monitoring import Measurement
from repro.sim import Environment


def accountant_with_usage(env):
    acc = ServiceAccountant(env, "svc-1")

    def drive(env):
        acc.instance_deployed("web")          # t=0: 1 instance
        yield env.timeout(1800)
        acc.instance_deployed("web")          # t=1800: 2 instances
        acc.instance_deployed("db")
        yield env.timeout(1800)
        acc.instance_released("web")          # t=3600: back to 1 web

    env.process(drive(env))
    env.run(until=7200)
    return acc


# ---------------------------------------------------------------------------
# PriceSchedule
# ---------------------------------------------------------------------------

def test_schedule_rates_and_validation():
    schedule = PriceSchedule(rates=(("web", 0.5), ("db", 1.25)),
                             default_rate=0.1)
    assert schedule.rate_for("web") == 0.5
    assert schedule.rate_for("db") == 1.25
    assert schedule.rate_for("other") == 0.1
    with pytest.raises(ValueError):
        PriceSchedule(default_rate=-1)
    with pytest.raises(ValueError):
        PriceSchedule(rates=(("a", -0.5),))
    with pytest.raises(ValueError):
        PriceSchedule(rates=(("a", 1.0), ("a", 2.0)))
    with pytest.raises(ValueError):
        PriceSchedule(deployment_fee=-1)


# ---------------------------------------------------------------------------
# Invoicing
# ---------------------------------------------------------------------------

def test_invoice_prices_instance_hours():
    env = Environment()
    acc = accountant_with_usage(env)
    billing = BillingService(acc, PriceSchedule(
        rates=(("web", 0.5), ("db", 2.0))))
    invoice = billing.invoice(0, 7200)
    lines = {l.component: l for l in invoice.lines}
    # web: 1 inst × 0.5 h + 2 inst × 0.5 h + 1 inst × 1 h = 2.5 inst-hours
    assert lines["web"].instance_hours == pytest.approx(2.5)
    assert lines["web"].usage_amount == pytest.approx(1.25)
    # db: 1 inst × 1.5 h
    assert lines["db"].instance_hours == pytest.approx(1.5)
    assert lines["db"].amount == pytest.approx(3.0)
    assert invoice.subtotal == pytest.approx(4.25)
    assert invoice.total == pytest.approx(4.25)


def test_deployment_fee_charged_once():
    env = Environment()
    acc = accountant_with_usage(env)
    billing = BillingService(acc, PriceSchedule(default_rate=0.0,
                                                deployment_fee=10.0))
    first = billing.invoice(0, 3600)
    assert sum(l.deployments for l in first.lines) == 3
    assert first.total == pytest.approx(30.0)
    second = billing.invoice(3600, 7200)
    assert sum(l.deployments for l in second.lines) == 0
    assert second.total == 0.0


def test_invoice_window_validation():
    env = Environment()
    acc = accountant_with_usage(env)
    billing = BillingService(acc)
    with pytest.raises(ValueError):
        billing.invoice(100, 50)


def test_invoice_render_contains_totals():
    env = Environment()
    acc = accountant_with_usage(env)
    billing = BillingService(acc, PriceSchedule(rates=(("web", 0.5),)))
    text = billing.invoice(0, 7200).render()
    assert "svc-1" in text
    assert "web" in text and "db" in text
    assert "total" in text


def test_sla_credits_deducted():
    env = Environment()
    acc = accountant_with_usage(env)
    slo = ServiceLevelObjective.from_text(
        "fast", "@a.b < 1", evaluation_period_s=10,
        assessment_window_s=100, penalty_per_breach=2.0,
        defaults={"a.b": 0})
    monitor = SLAMonitor(env, "svc-1", SLASection((slo,)),
                         kpi_defaults={"a.b": 0})
    monitor.notify(Measurement("a.b", "svc-1", "p", 0.0, (9,)))
    monitor.start()
    env.run(until=env.now + 201)  # two breached windows
    assert monitor.penalties_accrued == pytest.approx(4.0)

    billing = BillingService(acc, PriceSchedule(rates=(("web", 0.5),)),
                             sla_monitor=monitor)
    invoice = billing.invoice(0, env.now)
    assert invoice.sla_credits == pytest.approx(4.0)
    # Credits exceed the usage charge here; the total clamps at zero.
    assert invoice.subtotal < 4.0
    assert invoice.total == 0.0


def test_credits_never_make_total_negative():
    env = Environment()
    acc = ServiceAccountant(env, "svc-1")
    invoice = Invoice("svc-1", 0, 100, lines=(
        InvoiceLine("web", 1.0, 0.1, 0, 0.0),
    ), sla_credits=1000.0)
    assert invoice.total == 0.0


def test_end_to_end_billing_of_polymorph_run():
    """Bill the paper's elastic Table 3 run: the exec tier dominates."""
    from repro.experiments import TestbedConfig, run_elastic
    from repro.grid import PolymorphSearchConfig

    small = PolymorphSearchConfig(
        seed_durations_s=(300.0, 450.0), refinements_per_seed=24,
        refinement_mean_s=60.0, setup_s=20, gather_s=20, generate_s=5)
    result = run_elastic(small, TestbedConfig())
    # RunResult keeps the accountant's series via nodes_series; rebuild a
    # billing view straight from the node-seconds integral.
    node_hours = result.nodes_series.integral(
        result.run_start, result.run_end) / 3600
    schedule = PriceSchedule(rates=(("exec", 0.25),))
    amount = node_hours * schedule.rate_for("exec")
    assert amount > 0
    # Elastic billing beats paying for 16 dedicated nodes over the run.
    dedicated_hours = 16 * (result.run_end - result.run_start) / 3600
    assert node_hours < dedicated_hours
