"""Round-trip and error tests for the concrete XML syntax."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manifest import (
    ManifestBuilder,
    ManifestSyntaxError,
    manifest_from_xml,
    manifest_to_xml,
)


def paper_manifest():
    """The §6.1.2 evaluation manifest, as the builder assembles it."""
    b = ManifestBuilder("polymorphGridService")
    b.network("internal", description="service interconnect")
    b.network("dmz", public=True)
    b.component(
        "Orchestration", image_mb=4096, cpu=4, memory_mb=7168,
        networks=["internal", "dmz"], startup_order=0,
        info="BPEL orchestration web server",
        customisation={"role": "orchestrator"},
    )
    b.component(
        "GridMgmt", image_mb=4096, cpu=4, memory_mb=7168,
        networks=["internal"], startup_order=1,
        info="Condor schedd + web-service frontend",
    )
    b.component(
        "exec", image_mb=2048, cpu=1, memory_mb=1792,
        networks=["internal"], startup_order=2,
        initial=2, minimum=0, maximum=16,
        info="Condor execution service",
        customisation={"schedd": "${ip.internal.GridMgmt}"},
    )
    b.per_host_cap("exec", 4)
    b.application("polymorphGridApp")
    b.kpi("GridMgmtService", "GridMgmt", "uk.ucl.condor.schedd.queuesize",
          frequency_s=30, units="jobs", default=0)
    b.kpi("Cluster", "exec", "uk.ucl.condor.exec.instances.size",
          frequency_s=30, default=0)
    b.kpi("ClusterIdle", "exec", "uk.ucl.condor.exec.idle.size",
          frequency_s=30, default=0)
    b.rule(
        "AdjustClusterSizeUp",
        "(@uk.ucl.condor.schedd.queuesize / "
        "(@uk.ucl.condor.exec.instances.size + 1) > 4) && "
        "(@uk.ucl.condor.exec.instances.size < 16)",
        "deployVM(uk.ucl.condor.exec.ref)",
        time_constraint_ms=5000,
    )
    b.rule(
        "AdjustClusterSizeDown",
        "(@uk.ucl.condor.schedd.queuesize == 0) && "
        "(@uk.ucl.condor.exec.idle.size > 0)",
        "undeployVM(uk.ucl.condor.exec.ref)",
        time_constraint_ms=5000,
    )
    return b.build()


def test_paper_manifest_round_trip():
    m1 = paper_manifest()
    xml = manifest_to_xml(m1)
    m2 = manifest_from_xml(xml)
    assert m2 == m1


def test_xml_contains_paper_structures():
    xml = manifest_to_xml(paper_manifest())
    for needle in (
        '<ElasticityRule name="AdjustClusterSizeUp">',
        '<TimeConstraint unit="ms">5000',
        "uk.ucl.condor.schedd.queuesize",
        '<ApplicationDescription name="polymorphGridApp">',
        '<KeyPerformanceIndicator category="Agent"',
        '<ElasticityBounds initial="2" min="0" max="16"',
        '<PerHostCap id="exec" cap="4"',
        'deployVM(uk.ucl.condor.exec.ref)',
    ):
        assert needle in xml, f"missing {needle!r}"


def test_placement_sections_round_trip():
    b = ManifestBuilder("sap")
    b.component("CI", image_mb=100, replicable=False)
    b.component("DBMS", image_mb=100)
    b.component("DI", image_mb=100, initial=1, minimum=1, maximum=8)
    b.kpi("WebDisp", "DI", "com.sap.webdispatcher.kpis.sessions", default=0)
    b.rule("scale", "@com.sap.webdispatcher.kpis.sessions > 100",
           "deployVM(DI)")
    b.colocate("CI", "DBMS")
    b.anti_colocate("DI", "DBMS")
    b.site_placement("DBMS", favour=["eu-west"], require_trusted=True)
    b.site_placement(avoid=["offshore"])
    m1 = b.build()
    m2 = manifest_from_xml(manifest_to_xml(m1))
    assert m2.placement == m1.placement
    assert m2.system("CI").replicable is False


def test_rule_cooldown_round_trip():
    b = ManifestBuilder("svc")
    b.component("exec", image_mb=1, initial=0, minimum=0, maximum=2)
    b.kpi("C", "exec", "a.b", default=0)
    b.rule("r", "@a.b > 1", "deployVM(exec)", cooldown_s=42.5)
    m2 = manifest_from_xml(manifest_to_xml(b.build(validate=False)))
    assert m2.elasticity_rules[0].cooldown_s == 42.5


def test_kpi_defaults_bound_into_parsed_rules():
    """Round-tripped rules must keep working before any measurement arrives
    — the declared defaults feed the OCL qe.default fallback."""
    m2 = manifest_from_xml(manifest_to_xml(paper_manifest()))
    rule = next(r for r in m2.elasticity_rules
                if r.name == "AdjustClusterSizeUp")
    # All KPIs default to 0 → 0/(0+1) > 4 is false: must not raise.
    assert rule.trigger.expression.holds(lambda name: None) is False


@pytest.mark.parametrize("xml, match", [
    ("<NotAnEnvelope/>", "expected <Envelope>"),
    ("<Envelope/>", "missing required attribute"),
    ("not xml at all <<<", "not well-formed"),
    ('<Envelope name="s"><VirtualSystem id="v"/></Envelope>',
     "VirtualHardwareSection"),
    ('<Envelope name="s"><ElasticityRule name="r"/></Envelope>',
     "lacks a <Trigger>"),
    ('<Envelope name="s"><ElasticityRule name="r"><Trigger/>'
     '</ElasticityRule></Envelope>', "lacks an <Expression>"),
])
def test_malformed_xml_rejected(xml, match):
    with pytest.raises(ManifestSyntaxError, match=match):
        manifest_from_xml(xml)


# ---------------------------------------------------------------------------
# Property-based round trip over generated manifests
# ---------------------------------------------------------------------------

_names = st.text(alphabet="abcdefghij", min_size=1, max_size=8)


@given(
    seed=st.integers(0, 10_000),
    n_components=st.integers(1, 5),
    n_networks=st.integers(0, 3),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_generated_manifest_round_trip(seed, n_components, n_networks, data):
    b = ManifestBuilder(f"svc-{seed}")
    networks = [f"net{i}" for i in range(n_networks)]
    for net in networks:
        b.network(net, public=data.draw(st.booleans()))
    for i in range(n_components):
        maximum = data.draw(st.integers(1, 8))
        initial = data.draw(st.integers(0, maximum))
        b.component(
            f"comp{i}",
            image_mb=data.draw(st.floats(1, 10_000)),
            cpu=data.draw(st.floats(0.5, 8)),
            memory_mb=data.draw(st.floats(128, 16_384)),
            networks=data.draw(st.lists(st.sampled_from(networks),
                                        unique=True) if networks
                               else st.just([])),
            initial=initial,
            minimum=data.draw(st.integers(0, initial)),
            maximum=maximum,
            startup_order=data.draw(st.integers(0, 3)),
            customisation={
                data.draw(_names): data.draw(_names)
                for _ in range(data.draw(st.integers(0, 3)))
            },
        )
    m1 = b.build(validate=False)
    m2 = manifest_from_xml(manifest_to_xml(m1))
    assert m2 == m1
