"""Tests for ClassAd-style requirement matchmaking (§6.1.1)."""

import pytest

from repro.grid import CondorScheduler, ExecutionNodeHandle, Job, JobState
from repro.sim import Environment


def add_node(sched, name, **attributes):
    node = ExecutionNodeHandle(name, transfer_mb_per_s=1e9,
                               attributes=attributes)
    sched.register_node(node)
    return node


def test_satisfies_semantics():
    node = ExecutionNodeHandle("n", attributes={
        "memory_mb": 4096, "cpus": 2, "arch": "x86_64", "has_gpu": False,
    })
    assert node.satisfies({})
    assert node.satisfies({"memory_mb": 2048})          # numeric ≥
    assert node.satisfies({"memory_mb": 4096})
    assert not node.satisfies({"memory_mb": 8192})
    assert node.satisfies({"arch": "x86_64"})           # exact match
    assert not node.satisfies({"arch": "aarch64"})
    assert node.satisfies({"has_gpu": False})           # bools exact
    assert not node.satisfies({"has_gpu": True})
    assert not node.satisfies({"missing_attr": 1})      # absent → no match


def test_bool_not_coerced_to_numeric():
    """has_gpu=True must not satisfy a numeric minimum of 1 by accident,
    nor vice versa."""
    node = ExecutionNodeHandle("n", attributes={"has_gpu": True, "slots": 1})
    assert not node.satisfies({"has_gpu": 1})
    assert not node.satisfies({"slots": True})


def test_job_matched_to_qualified_node_only():
    env = Environment()
    sched = CondorScheduler(env, match_delay_s=0.0)
    small = add_node(sched, "small", memory_mb=1024)
    big = add_node(sched, "big", memory_mb=8192)
    job = sched.submit(Job(duration_s=10, input_mb=0, output_mb=0,
                           requirements={"memory_mb": 4096}))
    env.run()
    assert job.state is JobState.COMPLETED
    assert job.node_name == "big"
    assert small.jobs_completed == 0


def test_unmatchable_job_waits_without_starving_others():
    env = Environment()
    sched = CondorScheduler(env, match_delay_s=0.0)
    add_node(sched, "cpu-only", memory_mb=2048)
    gpu_job = sched.submit(Job(duration_s=10, input_mb=0, output_mb=0,
                               requirements={"has_gpu": True},
                               name="gpu-job"))
    plain = sched.submit(Job(duration_s=10, input_mb=0, output_mb=0,
                             name="plain"))
    env.run(until=50)
    # The plain job behind the unmatchable one still ran.
    assert plain.state is JobState.COMPLETED
    assert gpu_job.state is JobState.IDLE
    assert sched.queue_size == 1
    # A qualified node arriving later picks the waiting job up.
    add_node(sched, "gpu-box", has_gpu=True, memory_mb=2048)
    env.run(until=100)
    assert gpu_job.state is JobState.COMPLETED
    assert gpu_job.node_name == "gpu-box"


def test_queue_order_preserved_among_matchable_jobs():
    env = Environment()
    sched = CondorScheduler(env, match_delay_s=0.0)
    add_node(sched, "n0", memory_mb=2048)
    blocked = sched.submit(Job(duration_s=5, input_mb=0, output_mb=0,
                               requirements={"memory_mb": 9999},
                               name="blocked"))
    first = sched.submit(Job(duration_s=5, input_mb=0, output_mb=0,
                             name="first"))
    second = sched.submit(Job(duration_s=5, input_mb=0, output_mb=0,
                              name="second"))
    env.run(until=30)
    assert first.completed_at < second.completed_at
    assert blocked.state is JobState.IDLE


def test_heterogeneous_pool_parallel_matching():
    env = Environment()
    sched = CondorScheduler(env, match_delay_s=0.0)
    for i in range(2):
        add_node(sched, f"small-{i}", memory_mb=1024)
    for i in range(2):
        add_node(sched, f"big-{i}", memory_mb=8192)
    big_jobs = [sched.submit(Job(duration_s=100, input_mb=0, output_mb=0,
                                 requirements={"memory_mb": 4096}))
                for _ in range(4)]
    small_jobs = [sched.submit(Job(duration_s=100, input_mb=0, output_mb=0))
                  for _ in range(4)]
    env.run()
    assert all(j.node_name.startswith("big") for j in big_jobs)
    # Small jobs may run anywhere; everything completes.
    assert all(j.state is JobState.COMPLETED
               for j in big_jobs + small_jobs)
    # Big nodes served the memory-hungry jobs in two waves → makespan 200+.
    assert max(j.completed_at for j in big_jobs) == pytest.approx(200, abs=5)
