"""The §16 experiment runner: sweeps, reproducible JSONL, invariant
verdicts, and the CLI wiring."""

import json

import pytest

from repro.__main__ import main
from repro.experiments.scale import ScaleConfig, run_scale
from repro.scenarios.chaos import NetworkPartition, Oversubscribe
from repro.scenarios.runner import (
    SCENARIOS,
    Scenario,
    parse_sweep,
    run_experiment,
    scenario_names,
)
from repro.scenarios.workloads import WorkloadError

#: small enough to keep the suite fast, big enough to exercise elasticity
FAST = ["services=8", "hours=0.25", "settle=120"]


# ---------------------------------------------------------------------------
# Sweep grammar
# ---------------------------------------------------------------------------

def test_parse_sweep_grid():
    cells = parse_sweep(["sites=4,16", "load=0.5,0.9"])
    assert cells == [
        {"sites": 4, "load": 0.5}, {"sites": 4, "load": 0.9},
        {"sites": 16, "load": 0.5}, {"sites": 16, "load": 0.9}]


def test_parse_sweep_empty_and_types():
    assert parse_sweep([]) == [{}]
    (cell,) = parse_sweep(["alpha=1.5", "sites=4", "workload=x"])
    assert cell == {"alpha": 1.5, "sites": 4, "workload": "x"}
    assert isinstance(cell["sites"], int)


def test_parse_sweep_rejects_malformed():
    with pytest.raises(WorkloadError):
        parse_sweep(["sites"])
    with pytest.raises(WorkloadError):
        parse_sweep(["sites="])
    with pytest.raises(WorkloadError):
        parse_sweep(["sites=2", "sites=4"])


def test_scenario_catalogue_is_well_formed():
    assert {"baseline", "flash-crowd", "site-outage",
            "partition"} <= set(scenario_names())
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.description
        # every catalogue entry must materialise into a valid config
        cfg = scenario.configure({"services": 8, "hours": 0.25})
        assert cfg.check_invariants


# ---------------------------------------------------------------------------
# Reproducibility
# ---------------------------------------------------------------------------

def test_same_command_writes_byte_identical_jsonl(tmp_path):
    a_dir, b_dir = tmp_path / "a", tmp_path / "b"
    for out in (a_dir, b_dir):
        result = run_experiment("flash-crowd", sweep=["sites=2,4"] + FAST,
                                seed=7, out_dir=str(out))
        assert result.ok and len(result.cells) == 2
    a = (a_dir / "flash-crowd-seed7.jsonl").read_bytes()
    b = (b_dir / "flash-crowd-seed7.jsonl").read_bytes()
    assert a == b
    records = [json.loads(line) for line in a.splitlines()]
    assert [r["cell"]["sites"] for r in records] == [2, 4]
    assert [r["cell_index"] for r in records] == [0, 1]
    for record in records:
        assert record["ok"] is True and record["violations"] == []
        assert record["seed"] == 7
        assert record["flight_recorder"] is None   # nothing went wrong
        assert "wall_s" not in record    # nothing non-deterministic


def test_chaos_scenario_passes_invariants(tmp_path):
    """A correlated site outage mid flash crowd must complete with every
    invariant intact (the PR's headline acceptance scenario)."""
    result = run_experiment("site-outage", sweep=FAST, seed=7,
                            out_dir=str(tmp_path))
    assert result.ok
    (record,) = [json.loads(line) for line in
                 (tmp_path / "site-outage-seed7.jsonl").read_text()
                 .splitlines()]
    assert record["chaos"] and record["chaos"][0]["type"] == "SiteOutage"


def test_intentional_violation_is_a_failing_cell(tmp_path):
    """The test-only Oversubscribe hook must surface as a failing cell —
    proof the runner's invariant checking can actually fail."""
    name = "_broken-host"
    SCENARIOS[name] = Scenario(
        name, "test-only: corrupt a host's accounting mid-run",
        chaos=lambda cfg: (Oversubscribe(
            at_s=cfg.monitor_period_s * 3 + 15.0, site="site-0"),))
    try:
        result = run_experiment(name, sweep=FAST, seed=7,
                                out_dir=str(tmp_path))
    finally:
        del SCENARIOS[name]
    assert not result.ok
    (cell,) = result.cells
    assert any("no-oversubscription" in v for v in cell.report.violations)
    (record,) = [json.loads(line) for line in
                 (tmp_path / f"{name}-seed7.jsonl").read_text().splitlines()]
    assert record["ok"] is False and record["violations"]
    assert record["cell_index"] == 0
    assert "INVARIANT VIOLATION" in result.render()
    assert "[cell 0]" in result.render()

    # the failing cell dumped its flight recorder next to the JSONL, the
    # record points at it by name, and the render shows the full path
    assert record["flight_recorder"] == f"{name}-seed7-cell0.flight.jsonl"
    dump = tmp_path / record["flight_recorder"]
    assert dump.exists()
    header = json.loads(dump.read_text().splitlines()[0])
    assert header["record"] == "flight"
    assert "no-oversubscription" in header["reason"]
    assert header["captured"] > 0
    assert str(dump) in result.render()


def test_unknown_scenario_rejected():
    with pytest.raises(WorkloadError):
        run_experiment("no-such-scenario", out_dir=None)


def test_run_without_out_dir_writes_nothing():
    result = run_experiment("baseline", sweep=FAST, seed=3, out_dir=None)
    assert result.jsonl_path is None and result.ok


# ---------------------------------------------------------------------------
# Config validation for chaos under sharding
# ---------------------------------------------------------------------------

def test_partition_chaos_requires_single_process():
    with pytest.raises(ValueError, match="procs=1"):
        ScaleConfig(sites=2, procs=2, chaos=(
            NetworkPartition(at_s=10.0, sites=("site-0",)),))
    # fine single-process
    ScaleConfig(sites=2, procs=1, chaos=(
        NetworkPartition(at_s=10.0, sites=("site-0",)),))


def test_chaos_site_names_validated():
    with pytest.raises(ValueError, match="site-9"):
        ScaleConfig(sites=2, chaos=(
            NetworkPartition(at_s=10.0, sites=("site-9",)),))


def test_settle_window_lets_recovery_finish():
    """settle_s extends the run beyond the workload window so in-flight
    heals settle before the invariant sweep."""
    cfg = ScaleConfig(sites=2, services=8, hours=0.25, settle_s=90.0,
                      check_invariants=True)
    report = run_scale(cfg)
    assert report.violations == ()
    with pytest.raises(ValueError):
        ScaleConfig(settle_s=-1.0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_experiment_list(capsys):
    assert main(["experiment", "--list"]) == 0
    out = capsys.readouterr().out
    assert "flash-crowd" in out and "site-outage" in out


def test_cli_experiment_smoke(tmp_path, capsys):
    code = main(["experiment", "flash-crowd", "--sweep", "sites=2",
                 *FAST, "--seed", "7", "--out", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "experiment flash-crowd" in out and "ok" in out
    assert (tmp_path / "flash-crowd-seed7.jsonl").exists()


def test_cli_unknown_scenario_exits_2(capsys):
    assert main(["experiment", "nope", "--out", "/tmp/ignored"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
