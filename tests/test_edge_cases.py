"""Edge-case batch: corners of the API surface not covered elsewhere."""

import pytest

from repro.sim import Environment


# ---------------------------------------------------------------------------
# codegen identifier handling
# ---------------------------------------------------------------------------

def test_codegen_identifier_sanitisation():
    from repro.core.codegen import _class_name, _identifier

    assert _identifier("queue-size") == "queue_size"
    assert _identifier("2fast") == "_2fast"
    assert _identifier("class") == "class_"
    assert _identifier("") == "_"
    assert _class_name("grid mgmt service") == "GridMgmtService"
    assert _class_name("---") == "Component"


# ---------------------------------------------------------------------------
# AggregatingKPI 'last' and 'min'
# ---------------------------------------------------------------------------

def test_aggregating_kpi_last_and_min():
    from repro.monitoring import AggregatingKPI

    raw = iter([5, 1, 9])
    last = AggregatingKPI(lambda: next(raw), operation="last", window=2)
    assert last() == 5 and last() == 1 and last() == 9

    raw2 = iter([5, 1, 9])
    low = AggregatingKPI(lambda: next(raw2), operation="min", window=2)
    assert low() == 5 and low() == 1 and low() == 1


# ---------------------------------------------------------------------------
# Lifecycle: nowait startup tiers
# ---------------------------------------------------------------------------

def test_nowait_startup_entry_does_not_block_next_tier():
    from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
    from repro.core.manifest import ManifestBuilder
    from repro.core.manifest.model import StartupEntry
    from repro.core.service_manager import ServiceManager

    b = ManifestBuilder("svc")
    b.component("slow", image_mb=5000)   # long staging
    b.component("fast", image_mb=10)
    manifest = b.build()
    # Rebuild startup with a nowait entry for the slow component.
    from dataclasses import replace
    manifest = replace(manifest, startup=(
        StartupEntry("slow", 0, wait_for_guest=False),
        StartupEntry("fast", 1),
    ))

    env = Environment()
    veem = VEEM(env, repository=ImageRepository(bandwidth_mb_per_s=10))
    veem.add_host(Host(env, "h0", cpu_cores=8, memory_mb=16384,
                       timings=HypervisorTimings(define_s=1, boot_s=5,
                                                 shutdown_s=1)))
    sm = ServiceManager(env, veem)
    service = sm.deploy(manifest)
    env.run(until=service.deployment)
    slow_vm = service.lifecycle.components["slow"].vms[0]
    fast_vm = service.lifecycle.components["fast"].vms[0]
    # Deployment completed while the nowait component was still staging.
    assert slow_vm.running_at is None
    assert fast_vm.running_at is not None
    env.run(until=slow_vm.on_running)
    assert fast_vm.submitted_at < slow_vm.running_at


# ---------------------------------------------------------------------------
# Manifest model: ServiceManifest without startup section
# ---------------------------------------------------------------------------

def test_startup_order_without_section_is_one_tier():
    from repro.core.manifest import ManifestBuilder

    b = ManifestBuilder("svc")
    b.component("a", image_mb=1)
    b.component("b", image_mb=1)
    manifest = b.build()
    assert manifest.startup_order() == [["a", "b"]]


# ---------------------------------------------------------------------------
# Federation: favoured site preferred but full → spillover
# ---------------------------------------------------------------------------

def test_favoured_full_site_spills_to_next():
    from repro.cloud import (
        DeploymentDescriptor, FederatedCloud, Host, ImageRepository,
        Site, SiteConstraint, VEEM,
    )

    env = Environment()
    cloud = FederatedCloud(env)

    def site(name, hosts):
        repo = ImageRepository()
        repo.add("base", size_mb=10, href="http://x/base")
        veem = VEEM(env, name=f"veem-{name}", repository=repo)
        for i in range(hosts):
            veem.add_host(Host(env, f"{name}-h{i}", cpu_cores=1,
                               memory_mb=1024))
        return cloud.add_site(Site(name=name, veem=veem))

    site("tiny", 1)
    site("big", 4)
    cloud.add_constraint(SiteConstraint(favour=frozenset({"tiny"})))

    def desc(i):
        return DeploymentDescriptor(
            name=f"vm{i}", memory_mb=1024, cpu=1,
            disk_source="http://x/base", service_id="svc",
            component_id="web")

    first = cloud.submit(desc(0))
    assert cloud.site_of(first).name == "tiny"
    second = cloud.submit(desc(1))   # tiny is full → big
    assert cloud.site_of(second).name == "big"


# ---------------------------------------------------------------------------
# Expressions: numeric formatting round trips
# ---------------------------------------------------------------------------

def test_literal_unparse_float_precision():
    from repro.core.manifest import parse_expression

    expr = parse_expression("@a.b > 0.3333333333333333",
                            defaults={"a.b": 0})
    reparsed = parse_expression(expr.unparse(), defaults={"a.b": 0})
    assert reparsed.evaluate(lambda n: 0.4) == 1.0
    assert reparsed.evaluate(lambda n: 0.3) == 0.0


# ---------------------------------------------------------------------------
# Billing: zero-usage invoice
# ---------------------------------------------------------------------------

def test_invoice_for_component_with_no_usage_window():
    from repro.core.service_manager import BillingService, ServiceAccountant

    env = Environment()
    acc = ServiceAccountant(env, "svc")
    acc.instance_deployed("web")
    billing = BillingService(acc)

    def later(env):
        yield env.timeout(100)

    env.process(later(env))
    env.run()
    # Invoice a window before anything was deployed... the accountant was
    # created at t=0 and the deploy happened at t=0, so bill [50, 100].
    invoice = billing.invoice(50, 100)
    line = invoice.lines[0]
    assert line.instance_hours == pytest.approx(50 / 3600)


# ---------------------------------------------------------------------------
# VEEM: deploy_and_wait convenience
# ---------------------------------------------------------------------------

def test_deploy_and_wait_event():
    from repro.cloud import DeploymentDescriptor, Host, ImageRepository, VEEM

    env = Environment()
    repo = ImageRepository()
    repo.add("img", size_mb=10)
    veem = VEEM(env, repository=repo)
    veem.add_host(Host(env, "h0"))
    event = veem.deploy_and_wait(DeploymentDescriptor(
        name="x", memory_mb=512, cpu=1, disk_source=repo.get("img").href,
        service_id="s", component_id="c"))
    vm = env.run(until=event)
    assert vm.state.value == "running"


# ---------------------------------------------------------------------------
# Weekly: search records carry scales and days
# ---------------------------------------------------------------------------

def test_weekly_search_record_turnaround():
    from repro.experiments.weekly import SearchRecord

    record = SearchRecord(day=3, started_at=100.0, finished_at=350.0,
                          scale=1.2, jobs=100)
    assert record.turnaround_s == 250.0


# ---------------------------------------------------------------------------
# Network: owner_of unknown address
# ---------------------------------------------------------------------------

def test_network_owner_of_unknown_is_none():
    from repro.cloud import VirtualNetwork

    net = VirtualNetwork("n", "10.0.0.0/29")
    assert net.owner_of("10.0.0.5") is None
    assert "10.0.0.5" not in net
