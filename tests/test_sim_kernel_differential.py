"""Differential tests: timer-wheel kernel vs the heap oracle kernel.

The calendar-queue kernel (`Environment()`) must be *observationally
identical* to the reference heap kernel (`Environment(reference=True)`):
same event orderings, same clock, same final states, same event counts —
byte-identical logs on any seeded workload. These tests run randomized
process mixes (timeouts, zero-delay cascades, AnyOf/AllOf races with
abandoned losers, interrupts, resource and store waits) through both
kernels and compare serialized transcripts.
"""

import json
import random

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim import (  # noqa: E402
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    Resource,
    Store,
)

DELAYS = (0.0, 0.0, 0.5, 1.0, 2.5, 7.0)


def _run_mix(seed: int, n_workers: int, *, reference: bool) -> str:
    """One seeded multi-process scenario; returns a serialized transcript
    of everything observable (event order, clock, counters, final state)."""
    env = Environment(reference=reference)
    log: list = []
    resource = Resource(env, capacity=max(1, n_workers // 3))
    store = Store(env)
    gates = [env.event() for _ in range(3)]
    procs: list = []

    def worker(wid: int, wseed: int):
        wrng = random.Random(wseed)
        for step in range(wrng.randrange(3, 7)):
            try:
                op = wrng.randrange(7)
                if op == 0:
                    delay = wrng.choice(DELAYS)
                    yield env.timeout(delay)
                    log.append((env.now, wid, f"timeout:{delay}"))
                elif op == 1:
                    # AnyOf race: the losers stay queued (lazy cancellation).
                    races = [env.timeout(wrng.choice((1.0, 2.0, 3.0)),
                                         value=f"r{i}") for i in range(3)]
                    fired = yield AnyOf(env, races)
                    log.append((env.now, wid,
                                f"any:{sorted(map(str, fired.values()))}"))
                elif op == 2:
                    pair = [env.timeout(wrng.choice((0.0, 1.0, 2.0)))
                            for _ in range(2)]
                    yield AllOf(env, pair)
                    log.append((env.now, wid, "all"))
                elif op == 3:
                    req = resource.request()
                    yield req
                    log.append((env.now, wid, "acquired"))
                    yield env.timeout(wrng.choice((0.5, 1.5)))
                    yield resource.release(req)
                    log.append((env.now, wid, "released"))
                elif op == 4:
                    if wrng.random() < 0.5:
                        yield store.put((wid, step))
                        log.append((env.now, wid, "put"))
                    else:
                        got = yield AnyOf(env, [store.get(),
                                                env.timeout(2.0)])
                        log.append((env.now, wid,
                                    f"get:{len(got)}"))
                else:
                    # op 5: poke another worker; op 6: gate signal/wait.
                    if op == 5:
                        idx = wrng.randrange(n_workers)
                        if (idx != wid and idx < len(procs)
                                and procs[idx].is_alive):
                            procs[idx].interrupt(cause=wid)
                            log.append((env.now, wid, f"interrupted:{idx}"))
                        yield env.timeout(0.5)
                    else:
                        gate = gates[wrng.randrange(3)]
                        if not gate.triggered and wrng.random() < 0.5:
                            gate.succeed(wid)
                            yield env.timeout(0)
                            log.append((env.now, wid, "signalled"))
                        else:
                            fired = yield AnyOf(env,
                                                [gate, env.timeout(3.0)])
                            log.append((env.now, wid,
                                        f"gated:{len(fired)}"))
            except Interrupt as intr:
                log.append((env.now, wid, f"interrupt-from:{intr.cause}"))
        log.append((env.now, wid, "done"))

    rng = random.Random(seed)
    for wid in range(n_workers):
        procs.append(env.process(worker(wid, rng.randrange(2**31)),
                                 name=f"w{wid}"))
    env.run(until=500.0)
    return json.dumps({
        "now": env.now,
        "events": env.events_processed,
        "dead_skipped": env.dead_skipped,
        "store": len(store.items),
        "resource_queue": len(resource.queue),
        "log": log,
    })


def test_reference_flag_selects_heap_kernel():
    assert Environment().reference is False
    assert Environment(reference=True).reference is True


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n_workers=st.integers(2, 12))
def test_wheel_matches_heap_on_random_mixes(seed, n_workers):
    """Byte-identical transcripts on randomized seeded process mixes."""
    assert (_run_mix(seed, n_workers, reference=False)
            == _run_mix(seed, n_workers, reference=True))


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 2010, 99991])
def test_wheel_matches_heap_on_pinned_seeds(seed):
    """A fast pinned-seed subset that runs even without randomization."""
    assert (_run_mix(seed, 8, reference=False)
            == _run_mix(seed, 8, reference=True))


def test_wheel_matches_heap_replays_itself():
    """Each kernel is also self-deterministic across repeat runs."""
    for reference in (False, True):
        assert (_run_mix(1234, 6, reference=reference)
                == _run_mix(1234, 6, reference=reference))
