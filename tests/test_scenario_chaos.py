"""Chaos events as first-class DES citizens (§16).

Each event type is exercised against a real stack: hosts crash and come
back with services re-floored, spot preemption reclaims the newest VMs,
correlated site outages take every host down at once, and a network
partition makes a site invisible to federated admission until it heals.
"""

import pytest

from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM, VMState
from repro.control import Admitted, ControlPlane, Rejected
from repro.core.manifest import ManifestBuilder
from repro.scenarios.chaos import (
    HostCrash,
    NetworkPartition,
    Oversubscribe,
    SiteOutage,
    SpotPreemption,
    event_to_dict,
    install_chaos,
    restrict_event,
    sites_of,
)
from repro.scenarios.invariants import check_no_oversubscription
from repro.sim import Environment, TraceLog

TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)


def make_plane(env, sites=2, hosts=3, cores=8):
    trace = TraceLog(env)
    control = ControlPlane(env, trace=trace)
    veems = {}
    for s in range(sites):
        name = f"site-{s}"
        veem = VEEM(env, name=name, trace=trace,
                    repository=ImageRepository(bandwidth_mb_per_s=1000))
        for i in range(hosts):
            veem.add_host(Host(env, f"{name}-h{i}", cpu_cores=cores,
                               memory_mb=16384, timings=TIMINGS))
        control.add_site(name, veem)
        veems[name] = veem
    control.register_tenant("t0")
    return control, veems


def web_manifest(initial=2, minimum=2, maximum=3):
    b = ManifestBuilder("web")
    b.component("web", image_mb=100, cpu=1, memory_mb=1024,
                initial=initial, minimum=minimum, maximum=maximum)
    if maximum > minimum:
        b.kpi("C", "web", "a.b", default=0)
        b.rule("up", "@a.b > 1000000", "deployVM(web)")
    return b.build()


def managers_of(control):
    return {cs.name: cs.manager for cs in control.sites}


# ---------------------------------------------------------------------------
# Event mechanics
# ---------------------------------------------------------------------------

def test_host_crash_fires_and_recovers():
    env = Environment()
    control, veems = make_plane(env)
    out = control.submit("t0", web_manifest(), site="site-0")
    assert isinstance(out, Admitted)
    phases = []
    install_chaos(
        env, (HostCrash(at_s=60.0, site="site-0", recover_after_s=120.0),),
        veems_by_site=veems, control=control,
        managers_by_site=managers_of(control),
        on_event=lambda e, phase, d: phases.append(phase))
    env.run(until=400)
    assert phases == ["fired", "recovered"]
    assert not veems["site-0"].hosts[0].failed
    assert control.trace.query(kind="chaos.host.crash")
    assert control.trace.query(kind="chaos.host.recover")
    # the service healed back to its floor after the crash
    assert out.request.service.instance_count("web") == 2


def test_spot_preemption_reclaims_newest_vms():
    env = Environment()
    control, veems = make_plane(env, sites=1)
    control.submit("t0", web_manifest(), site="site-0")
    env.run(until=60)
    veem = veems["site-0"]
    before = [vm for vm in veem.vms.values() if vm.is_active]
    newest = before[-1]
    install_chaos(env, (SpotPreemption(at_s=10.0, site="site-0", count=1),),
                  veems_by_site=veems, control=control)
    env.run(until=75)
    assert newest.state is VMState.FAILED
    rec = control.trace.last(kind="chaos.preempt")
    assert rec.details["vms"] == [newest.vm_id]
    assert control.trace.query(kind="vm.preempted")


def test_preempt_validates_count():
    env = Environment()
    _control, veems = make_plane(env, sites=1)
    with pytest.raises(ValueError):
        veems["site-0"].preempt(-1)


def test_site_outage_downs_every_host_then_refloors():
    env = Environment()
    control, veems = make_plane(env)
    out = control.submit("t0", web_manifest(), site="site-0")
    env.run(until=60)
    install_chaos(
        env, (SiteOutage(at_s=30.0, sites=("site-0",),
                         recover_after_s=120.0),),
        veems_by_site=veems, control=control,
        managers_by_site=managers_of(control))
    env.run(until=95)   # outage fired, not yet recovered
    assert all(h.failed for h in veems["site-0"].hosts)
    assert out.request.service.instance_count("web") == 0
    env.run(until=400)
    assert not any(h.failed for h in veems["site-0"].hosts)
    recover = control.trace.last(kind="chaos.site.recover")
    assert recover.details["healed"] == 2
    assert out.request.service.instance_count("web") == 2


def test_partition_hides_site_from_admission_until_heal():
    env = Environment()
    control, veems = make_plane(env, sites=2, hosts=1, cores=4)
    install_chaos(
        env, (NetworkPartition(at_s=10.0, sites=("site-1",),
                               heal_after_s=100.0),),
        veems_by_site=veems, control=control)
    env.run(until=20)
    assert control.unreachable == frozenset({"site-1"})
    # pinned at the partitioned site: rejected outright
    out = control.submit("t0", web_manifest(), site="site-1")
    assert isinstance(out, Rejected)
    # federated: lands on the one reachable site
    out = control.submit("t0", web_manifest())
    assert isinstance(out, Admitted) and out.site == "site-0"
    env.run(until=150)
    assert control.unreachable == frozenset()
    out = control.submit("t0", web_manifest(), site="site-1")
    assert isinstance(out, Admitted)
    assert control.trace.query(kind="chaos.partition")
    assert control.trace.query(kind="chaos.heal")


def test_partition_requires_control_plane():
    env = Environment()
    _control, veems = make_plane(env)
    with pytest.raises(ValueError):
        install_chaos(
            env, (NetworkPartition(at_s=1.0, sites=("site-0",)),),
            veems_by_site=veems)


def test_unknown_site_rejected_at_install():
    env = Environment()
    control, veems = make_plane(env)
    with pytest.raises(KeyError):
        install_chaos(env, (HostCrash(at_s=1.0, site="site-9"),),
                      veems_by_site=veems, control=control)


def test_oversubscribe_corrupts_accounting_detectably():
    env = Environment()
    control, veems = make_plane(env, sites=1)
    assert check_no_oversubscription(veems.values()) == []
    install_chaos(env, (Oversubscribe(at_s=5.0, site="site-0",
                                      extra_cpu=2.0),),
                  veems_by_site=veems, control=control)
    env.run(until=10)
    violations = check_no_oversubscription(veems.values())
    assert violations
    assert any("cpu" in str(v) for v in violations)


# ---------------------------------------------------------------------------
# Sharding helpers
# ---------------------------------------------------------------------------

def test_sites_of_and_restrict():
    crash = HostCrash(at_s=1.0, site="site-0")
    assert sites_of(crash) == ("site-0",)
    assert restrict_event(crash, ["site-0"]) is crash
    assert restrict_event(crash, ["site-1"]) is None

    outage = SiteOutage(at_s=1.0, sites=("site-0", "site-1"))
    assert sites_of(outage) == ("site-0", "site-1")
    assert restrict_event(outage, ["site-0", "site-1", "site-2"]) is outage
    narrowed = restrict_event(outage, ["site-1"])
    assert narrowed.sites == ("site-1",)
    assert narrowed.at_s == outage.at_s
    assert restrict_event(outage, ["site-7"]) is None


def test_event_to_dict_is_json_stable():
    assert event_to_dict(HostCrash(at_s=5.0, site="site-0")) == {
        "type": "HostCrash", "at_s": 5.0, "site": "site-0",
        "host_index": 0, "recover_after_s": 0.0}
    out = event_to_dict(SiteOutage(at_s=1.0, sites=("a", "b")))
    assert out["sites"] == ["a", "b"]       # list, not tuple, for JSON
