"""Tests for the constraint-model placement solver (repro.solver).

Covers the model/search core, the encoders, the control-plane rescue path
(greedy ``CapacityError`` → solver pins → admitted), what-if admission
(including its non-mutation guarantee), defragmenting migration plans,
and the typed rejection reasons that thread solver explanations into
``Rejected`` outcomes.
"""

import pytest

from repro.cloud import (
    AntiAffinity,
    CapacityError,
    Host,
    HypervisorTimings,
    ImageRepository,
    PlacementConstraint,
    VEEM,
)
from repro.cloud.vm import DeploymentDescriptor
from repro.control import (
    Admitted,
    ControlPlane,
    Rejected,
    RejectCode,
    RejectionReason,
    RequestState,
)
from repro.core.manifest import ManifestBuilder
from repro.sim import Environment
from repro.solver import (
    HostView,
    Item,
    ModelConstraints,
    PlacementModel,
    PruneCode,
    SearchBudget,
    Solution,
    Unsolved,
    encode_admission,
    encode_service,
    execute_plan,
    fragmentation_score,
    plan_defrag,
    snapshot_hosts,
    solve,
    what_if,
)

TIMINGS = HypervisorTimings(define_s=1, boot_s=5, shutdown_s=1)


def make_model(items, hosts, constraints=None):
    return PlacementModel(
        items=[Item(index=i, name=n, component=c, service_id=s,
                    cpu=cpu, memory_mb=mem)
               for i, (n, c, s, cpu, mem) in enumerate(items)],
        hosts=[HostView(index=i, name=f"h{i}", cpu_free=cpu, mem_free=mem,
                        attributes=dict(attrs))
               for i, (cpu, mem, attrs) in enumerate(hosts)],
        constraints=constraints or ModelConstraints(),
    )


def make_veem(env, host_shapes, name="veem"):
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    repo.add("img", 64, href="img")
    veem = VEEM(env, name=name, repository=repo)
    for i, (cpu, mem) in enumerate(host_shapes):
        veem.add_host(Host(env, f"{name}-h{i}", cpu_cores=cpu,
                           memory_mb=mem, timings=TIMINGS))
    return veem


def ragged_manifest():
    """FFD admission packs this into 2×10-cpu bins (6+4, 5+5) but the
    greedy deployment order (5, 4, 6, 5) strands the last instance."""
    b = ManifestBuilder("ragged")
    for name, cpu in (("a", 5), ("b", 4), ("c", 6), ("d", 5)):
        b.component(name, image_mb=64, cpu=cpu, memory_mb=1024)
    return b.build()


def ffd_pessimal_manifest():
    """FFD (5+4, 4+3+2, 2) needs 3 bins of 10; the optimal joint packing
    (5+3+2, 4+4+2) needs only 2 — the solver_only what-if case."""
    b = ManifestBuilder("pessimal")
    for name, cpu in (("a", 5), ("b", 4), ("c", 4),
                      ("d", 3), ("e", 2), ("f", 2)):
        b.component(name, image_mb=64, cpu=cpu, memory_mb=512)
    return b.build()


# ---------------------------------------------------------------------------
# Search core
# ---------------------------------------------------------------------------

def test_solve_empty_model_is_trivially_sat():
    out = solve(make_model([], [(4, 4096, {})]))
    assert isinstance(out, Solution) and out.assignment == ()


def test_solve_finds_joint_packing_greedy_misses():
    # first-fit order 5,4,6,5 on two 10-cpu hosts dead-ends; jointly SAT.
    model = make_model(
        [(n, n, "svc", cpu, 256.0)
         for n, cpu in (("a", 5), ("b", 4), ("c", 6), ("d", 5))],
        [(10, 16384, {}), (10, 16384, {})],
    )
    out = solve(model)
    assert isinstance(out, Solution)
    assert model.validate_assignment(out.assignment) == []
    loads = {}
    for item, host in zip(model.items, out.assignment):
        loads[host] = loads.get(host, 0) + item.cpu
    assert sorted(loads.values()) == [10, 10]


def test_solve_is_deterministic():
    model = make_model(
        [(f"i{k}", f"c{k % 3}", "svc", 1 + k % 3, 256.0) for k in range(6)],
        [(6, 8192, {}), (6, 8192, {}), (6, 8192, {})],
    )
    first = solve(model)
    second = solve(model)
    assert isinstance(first, Solution)
    assert first.assignment == second.assignment
    assert first.nodes == second.nodes


def test_solve_does_not_mutate_the_model_hosts():
    model = make_model([("a", "a", "svc", 2, 1024.0)], [(4, 4096, {})])
    solve(model)
    assert model.hosts[0].cpu_free == 4 and model.hosts[0].mem_free == 4096
    assert model.hosts[0].resident == {}


def test_unsat_capacity_explanation():
    model = make_model([("a", "a", "svc", 8, 256.0)], [(4, 4096, {})])
    out = solve(model)
    assert isinstance(out, Unsolved) and not out.exhausted
    assert out.explanation.code is PruneCode.CAPACITY
    assert "a" in out.explanation.render()


def test_unsat_anti_affinity_explanation():
    cons = ModelConstraints(anti_affinities=(("r", "r"),))
    model = make_model(
        [("r-0", "r", "svc", 1, 256.0), ("r-1", "r", "svc", 1, 256.0)],
        [(8, 8192, {})], cons)
    out = solve(model)
    assert isinstance(out, Unsolved)
    assert out.explanation.code is PruneCode.ANTI_AFFINITY


def test_affinity_anchors_are_staged_first():
    # "central" must share a host with "dbms"; solver places dbms first so
    # the predicate binds — any order of items in the model.
    cons = ModelConstraints(affinities=(("central", "dbms"),))
    model = make_model(
        [("central", "central", "svc", 1, 256.0),
         ("dbms", "dbms", "svc", 1, 256.0)],
        [(2, 4096, {}), (2, 4096, {})], cons)
    out = solve(model)
    assert isinstance(out, Solution)
    assert out.assignment[0] == out.assignment[1]


def test_component_cap_respected():
    cons = ModelConstraints(caps=(("exec", 2),))
    model = make_model(
        [(f"exec-{k}", "exec", "svc", 1, 256.0) for k in range(4)],
        [(8, 8192, {}), (8, 8192, {})], cons)
    out = solve(model)
    assert isinstance(out, Solution)
    per_host = {}
    for host in out.assignment:
        per_host[host] = per_host.get(host, 0) + 1
    assert max(per_host.values()) <= 2


def test_attribute_requirement_restricts_candidates():
    cons = ModelConstraints(
        attribute_requirements=(("dbms", "zone", "secure"),))
    model = make_model(
        [("dbms", "dbms", "svc", 1, 256.0)],
        [(8, 8192, {}), (8, 8192, {"zone": "secure"})], cons)
    out = solve(model)
    assert isinstance(out, Solution) and out.assignment == (1,)


def test_budget_exhaustion_is_reported_not_wrong():
    # An UNSAT instance too big to refute within one node.
    model = make_model(
        [(f"i{k}", "c", "svc", 3, 256.0) for k in range(9)],
        [(8, 8192, {})] * 3)
    out = solve(model, SearchBudget(max_nodes=1))
    assert isinstance(out, Unsolved) and out.exhausted
    assert out.explanation.code is PruneCode.BUDGET


def test_search_budget_validation():
    with pytest.raises(ValueError):
        SearchBudget(max_nodes=0)
    with pytest.raises(ValueError):
        SearchBudget(max_seconds=0.0)


def test_validate_assignment_flags_oversubscription_and_violations():
    cons = ModelConstraints(anti_affinities=(("a", "b"),))
    model = make_model(
        [("a", "a", "svc", 3, 1024.0), ("b", "b", "svc", 2, 1024.0)],
        [(4, 4096, {})], cons)
    problems = model.validate_assignment((0, 0))
    assert any("oversubscribed" in p for p in problems)
    assert any("co-resident" in p for p in problems)
    assert model.validate_assignment((0,)) == []   # b unplaced: only item a


# ---------------------------------------------------------------------------
# Encoders
# ---------------------------------------------------------------------------

def test_encode_service_matches_descriptor_naming():
    b = ManifestBuilder("svc")
    b.component("web", image_mb=64, cpu=1, memory_mb=512, initial=3,
                minimum=1, maximum=3)
    env = Environment()
    veem = make_veem(env, [(4, 8192)])
    model = encode_service(b.build(), veem.hosts, service_id="svc-1")
    assert [i.name for i in model.items] == ["web", "web-1", "web-2"]
    assert all(i.service_id == "svc-1" for i in model.items)


def test_encode_service_compiles_manifest_placement():
    b = ManifestBuilder("svc")
    b.component("ci", image_mb=64, cpu=1, memory_mb=512)
    b.component("dbms", image_mb=64, cpu=1, memory_mb=512)
    b.colocate("ci", "dbms")
    env = Environment()
    veem = make_veem(env, [(4, 8192), (4, 8192)])
    model = encode_service(b.build(), veem.hosts)
    assert ("ci", "dbms") in model.constraints.affinities
    out = solve(model)
    assert isinstance(out, Solution)
    assert out.assignment[0] == out.assignment[1]


def test_snapshot_hosts_skips_failed_and_counts_residents():
    env = Environment()
    veem = make_veem(env, [(4, 8192), (4, 8192)])
    veem.submit(DeploymentDescriptor(
        name="a", cpu=1, memory_mb=512, disk_source="img",
        service_id="svc", component_id="app"))
    veem.hosts[1].failed = True
    views = snapshot_hosts(veem.hosts)
    assert [v.name for v in views] == [veem.hosts[0].name]
    assert views[0].resident == {("svc", "app"): 1}
    assert views[0].cpu_free == 3


def test_unsupported_constraint_type_refuses_to_encode():
    class Weird(PlacementConstraint):
        def admits(self, host, descriptor, universe=()):
            return True

    env = Environment()
    veem = make_veem(env, [(4, 8192)])
    with pytest.raises(ValueError, match="cannot encode"):
        encode_service(ragged_manifest(), veem.hosts,
                       constraints=[Weird()])


def test_encode_admission_packs_committed_plus_candidate():
    from repro.cloud import AdmissionController, HostType
    admission = AdmissionController(2, HostType(10, 16384))
    admission.admit(ragged_manifest())
    # committed ceiling already fills both bins jointly; another copy is
    # UNSAT on the pool's empty bins.
    model = encode_admission(admission, ragged_manifest())
    assert len(model.hosts) == 2
    out = solve(model)
    assert isinstance(out, Unsolved)
    assert out.explanation.code is PruneCode.CAPACITY


# ---------------------------------------------------------------------------
# Control-plane rescue (the headline fixture)
# ---------------------------------------------------------------------------

def test_greedy_placement_alone_strands_the_ragged_service():
    env = Environment()
    veem = make_veem(env, [(10, 16384), (10, 16384)])
    with pytest.raises(CapacityError):
        for name, cpu in (("a", 5), ("b", 4), ("c", 6), ("d", 5)):
            veem.submit(DeploymentDescriptor(
                name=name, cpu=cpu, memory_mb=1024, disk_source="img"))


def test_solver_rescue_admits_what_greedy_cannot_place():
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, [(10, 16384), (10, 16384)]))
    control.register_tenant("acme")
    out = control.submit("acme", ragged_manifest())
    assert isinstance(out, Admitted)
    env.run(until=1_000)
    request = out.request
    assert request.state is RequestState.ACTIVE
    assert request.attempts == 2        # greedy failed once, pins landed
    assert int(control._m_solver_rescued.value) == 1
    rescues = control.trace.query(source="control", kind="request.rescue")
    assert len(rescues) == 1 and rescues[0].details["instances"] == 4
    # the joint packing really is on the site: both hosts exactly full
    veem = control.sites[0].site.veem
    assert sorted(h.cpu_free for h in veem.hosts) == [0, 0]


def test_solver_fallback_can_be_disabled():
    env = Environment()
    control = ControlPlane(env, solver_fallback=False)
    control.add_site("s", make_veem(env, [(10, 16384), (10, 16384)]))
    control.register_tenant("acme")
    out = control.submit("acme", ragged_manifest())
    assert isinstance(out, Admitted)
    env.run(until=10_000)
    assert out.request.state is RequestState.REJECTED
    assert int(control._m_solver_rescued.value) == 0


def test_terminal_rejection_carries_typed_reason_and_explanation():
    env = Environment()
    # 1 real host, admission believes 2: the second deploy can never land
    # and the solver's UNSAT explanation reaches the terminal reason.
    from repro.control import RetryPolicy
    control = ControlPlane(env, retry=RetryPolicy(max_attempts=2,
                                                  initial_backoff_s=1.0))
    control.add_site("s", make_veem(env, [(4, 8192)]), pool_hosts=2)
    control.register_tenant("acme")

    def filler(name):
        b = ManifestBuilder(name)
        b.component("app", image_mb=64, cpu=4, memory_mb=8192)
        return b.build()

    first = control.submit("acme", filler("a"))
    doomed = control.submit("acme", filler("b"))
    assert isinstance(first, Admitted) and isinstance(doomed, Admitted)
    env.run(until=10_000)
    reason = doomed.request.reason
    assert isinstance(reason, RejectionReason)
    assert reason.code is RejectCode.DEPLOY_FAILED
    assert "deploy failed after 2 attempt" in reason
    assert reason.detail["solver"].startswith("[capacity]")


def test_hard_screen_rejections_are_typed():
    from repro.control import TenantQuota
    env = Environment()
    control = ControlPlane(env, max_queue_depth=0)
    control.add_site("s", make_veem(env, [(4, 8192)]))
    control.register_tenant("small", quota=TenantQuota(max_instances=1))

    def sized(name, instances):
        b = ManifestBuilder(name)
        b.component("app", image_mb=64, cpu=1, memory_mb=512,
                    initial=instances, minimum=instances, maximum=instances)
        return b.build()

    out = control.submit("small", sized("big", 3))
    assert isinstance(out, Rejected)
    assert isinstance(out.reason, RejectionReason)
    assert out.reason.code is RejectCode.QUOTA
    assert "quota" in out.reason          # substring compatibility
    rejected = control.trace.query(source="control", kind="request.rejected")
    assert rejected[0].details["code"] == "quota"


# ---------------------------------------------------------------------------
# What-if admission
# ---------------------------------------------------------------------------

def build_federation(env, shapes_by_site):
    control = ControlPlane(env)
    for name, shapes in shapes_by_site.items():
        control.add_site(name, make_veem(env, shapes, name=name))
    control.register_tenant("acme")
    return control


def admission_fingerprint(control):
    return [
        (s.name, s.headroom, s.admission.committed_plan.hosts_for_ceiling,
         len(s.admission.admitted),
         tuple((h.cpu_free, h.memory_free) for h in s.site.veem.hosts))
        for s in control.sites
    ]


def test_what_if_reports_the_site_submit_would_choose():
    env = Environment()
    control = build_federation(env, {
        "small": [(4, 8192)],
        "large": [(4, 8192), (4, 8192), (4, 8192)],
    })
    b = ManifestBuilder("svc")
    b.component("app", image_mb=64, cpu=4, memory_mb=8192)
    report = control.what_if(b.build())
    assert report.fits and report.chosen == "large"
    assert report.verdict_for("small").admits_now
    assert report.verdict_for("large").committed_cost == 1
    out = control.submit("acme", b.build())
    assert isinstance(out, Admitted) and out.site == "large"


def test_what_if_never_mutates_any_site():
    env = Environment()
    control = build_federation(env, {
        "a": [(10, 16384), (10, 16384)],
        "b": [(4, 8192)],
    })
    control.submit("acme", ragged_manifest())
    env.run(until=500)
    before = admission_fingerprint(control)
    for manifest in (ragged_manifest(), ffd_pessimal_manifest()):
        control.what_if(manifest, tenant="acme")
        control.what_if(manifest, exact=False)
    assert admission_fingerprint(control) == before


def test_what_if_solver_only_when_ffd_refuses_a_joint_fit():
    env = Environment()
    control = build_federation(env, {"s": [(10, 16384), (10, 16384)]})
    report = control.what_if(ffd_pessimal_manifest())
    verdict = report.verdict_for("s")
    assert not verdict.admits_now and verdict.solver_fits
    assert report.chosen is None and report.solver_only == "s"
    assert "joint repack" in report.render()
    # greedy-only probe reports the FFD refusal instead
    greedy = control.what_if(ffd_pessimal_manifest(), exact=False)
    assert not greedy.fits
    assert greedy.verdict_for("s").explanation.code is PruneCode.CAPACITY


def test_what_if_quota_screens():
    from repro.control import TenantQuota
    env = Environment()
    control = ControlPlane(env)
    control.add_site("s", make_veem(env, [(8, 16384)] * 2))
    control.register_tenant("small", quota=TenantQuota(max_instances=2))
    b = ManifestBuilder("wide")
    b.component("app", image_mb=64, cpu=1, memory_mb=512, initial=4,
                minimum=4, maximum=4)
    report = control.what_if(b.build(), tenant="small")
    assert not report.fits
    assert report.explanation.code is PruneCode.QUOTA
    with pytest.raises(KeyError):
        control.what_if(b.build(), tenant="ghost")


def test_what_if_site_eligibility():
    env = Environment()
    control = build_federation(env, {"s": [(4, 8192)]})
    b = ManifestBuilder("avoider")
    b.component("app", image_mb=64, cpu=1, memory_mb=512)
    b.site_placement("app", avoid=["s"])
    report = control.what_if(b.build())
    assert not report.fits
    assert not report.verdict_for("s").eligible
    assert "ineligible" in report.render()


# ---------------------------------------------------------------------------
# Defragmentation
# ---------------------------------------------------------------------------

def scatter(veem, layout, cpu=2, mem=1024, service=None):
    """Place one VM per (host, k) pair via pins; returns the VMs."""
    vms = []
    for i, host_name in enumerate(layout):
        d = DeploymentDescriptor(
            name=f"vm{i}", cpu=cpu, memory_mb=mem, disk_source="img",
            service_id=service or f"svc{i}", component_id="app",
            placement={"host": host_name})
        vms.append(veem.submit(d))
    return vms


def test_defrag_consolidates_and_replays_safely():
    env = Environment()
    veem = make_veem(env, [(8, 8192)] * 4, name="site")
    scatter(veem, ["site-h0"] * 3 + ["site-h1", "site-h2"])
    env.run(until=100)
    assert fragmentation_score(veem.hosts) > 0
    plan = plan_defrag(veem)
    assert plan and plan.hosts_before == 3 and plan.hosts_after == 2
    assert plan.score_after < plan.score_before
    assert plan.replay_safe(veem.hosts) == []
    execute_plan(veem, plan)
    env.run(until=10_000)
    assert sum(1 for h in veem.hosts if h.vms) == 2
    assert fragmentation_score(veem.hosts) == 0.0
    # a second pass finds nothing to do
    assert not plan_defrag(veem)


def test_defrag_never_moves_into_empty_hosts():
    env = Environment()
    veem = make_veem(env, [(8, 8192)] * 4, name="site")
    scatter(veem, ["site-h0"] * 2)
    env.run(until=100)
    assert not plan_defrag(veem)        # nothing to consolidate into


def test_defrag_respects_anti_affinity_both_ways():
    env = Environment()
    veem = make_veem(env, [(8, 8192)] * 3, name="site")
    veem.placer.add_constraint(AntiAffinity("app", "db"))
    # db on h0, app alone on h1, another service keeps h0 "fuller"
    for name, comp, host in (("db0", "db", "site-h0"),
                             ("x0", "web", "site-h0"),
                             ("app0", "app", "site-h1")):
        veem.submit(DeploymentDescriptor(
            name=name, cpu=1, memory_mb=512, disk_source="img",
            service_id="svc", component_id=comp,
            placement={"host": host}))
    env.run(until=100)
    plan = plan_defrag(veem)
    # the only beneficial move (app0 → h0) violates anti-affinity
    assert all(s.to_host != "site-h0" or s.vm_id != "veem-app0"
               for s in plan.steps)
    for step in plan.steps:
        assert (step.vm_id, step.to_host) != ("site-app0", "site-h0")
    assert not plan


def test_defrag_skips_unsupported_constraints():
    class Weird(PlacementConstraint):
        def admits(self, host, descriptor, universe=()):
            return True

    env = Environment()
    veem = make_veem(env, [(8, 8192)] * 3, name="site")
    veem.placer.add_constraint(Weird())
    scatter(veem, ["site-h0", "site-h1"])
    env.run(until=100)
    assert not plan_defrag(veem)


def test_defrag_executor_aborts_on_stale_plan():
    env = Environment()
    veem = make_veem(env, [(8, 8192)] * 3, name="site")
    vms = scatter(veem, ["site-h0"] * 2 + ["site-h1"])
    env.run(until=100)
    plan = plan_defrag(veem)
    assert plan
    # the world moves on: the planned VM disappears before execution
    veem.shutdown(veem.vms[plan.steps[0].vm_id])
    env.run(until=200)
    execute_plan(veem, plan)
    env.run(until=10_000)
    aborted = veem.trace.query(kind="defrag.aborted")
    assert len(aborted) == 1
    assert vms          # silence unused warning


def test_migration_plan_replay_catches_oversubscription():
    from repro.solver import MigrationPlan, MigrationStep
    env = Environment()
    veem = make_veem(env, [(2, 2048)] * 2, name="site")
    scatter(veem, ["site-h0", "site-h1"], cpu=2, mem=2048)
    env.run(until=100)
    bogus = MigrationPlan(
        steps=(MigrationStep("veem-vm0", "site-h0", "site-h1",
                             2.0, 2048.0),),
        score_before=0.5, score_after=0.0, hosts_before=2, hosts_after=1)
    problems = bogus.replay_safe(veem.hosts)
    assert problems and "oversubscribes" in problems[0]


def test_scale_harness_defrag_hook():
    from repro.experiments.scale import ScaleConfig, _run_scale_single
    cfg = ScaleConfig(sites=2, services=12, hours=0.5, tenants=2,
                      defrag_every_h=0.2)
    report = _run_scale_single(cfg, lambda m: None)
    assert report.admitted == 12
    with pytest.raises(ValueError, match="defrag_every_h"):
        ScaleConfig(sites=1, services=1, hours=0.1, defrag_every_h=-1.0)
