#!/usr/bin/env python3
"""A stand-alone tour of the monitoring framework (§5.2).

Shows the full producer→consumer path with no cloud attached: data sources
and probes with data dictionaries, the XDR values-only wire format, the
DHT-backed information model (Tables 1–2 key taxonomy), elaboration of
received measurements, and probe control (data rate, on/off).

Run:  python examples/monitoring_tour.py
"""

from repro.monitoring import (
    AttributeType,
    DataSource,
    InformationModel,
    MeasurementJournal,
    MeasurementStore,
    Probe,
    ProbeAttribute,
    PubSubBroker,
    decode_measurement,
    encode_measurement,
    naive_json_size,
)
from repro.sim import Environment


def main() -> None:
    env = Environment()
    network = PubSubBroker(env)          # interchangeable with multicast
    infomodel = InformationModel()       # DHT-backed (3 nodes by default)

    # -- producer side ------------------------------------------------------
    queue = {"jobs": 0}
    probe = Probe(
        name="schedd-queue",
        qualified_name="uk.ucl.condor.schedd.queuesize",
        attributes=[
            ProbeAttribute("queuesize", AttributeType.INTEGER, "jobs"),
            ProbeAttribute("busy", AttributeType.BOOLEAN, ""),
        ],
        collector=lambda: (queue["jobs"], queue["jobs"] > 0),
        data_rate_s=30.0,
    )
    source = DataSource(env, "grid-mgmt", "polymorph-1", network,
                        infomodel=infomodel)
    source.add_probe(probe)

    # -- consumer side --------------------------------------------------------
    store = MeasurementStore()       # latest-value (rule-engine view)
    journal = MeasurementJournal()   # full history (validator view)
    store.subscribe_to(network, qualified_name="uk.ucl.condor.*")
    journal.subscribe_to(network)

    # Drive some load and let the probe publish.
    for step, jobs in enumerate((0, 4, 202, 148, 96, 0)):
        queue["jobs"] = jobs
        env.run(until=(step + 1) * 30 + 1)

    print("=== latest-value store (what the rule engine reads) ===")
    print("  queuesize:",
          store.value("polymorph-1", "uk.ucl.condor.schedd.queuesize"))
    print("  age:", store.age("polymorph-1",
                              "uk.ucl.condor.schedd.queuesize", env.now), "s")

    print("\n=== journal window statistics (§4.2.1 time series ops) ===")
    args = ("polymorph-1", "uk.ucl.condor.schedd.queuesize", 0, env.now)
    print(f"  events={len(journal)} mean={journal.window_mean(*args):.1f} "
          f"min={journal.window_min(*args):.0f} "
          f"max={journal.window_max(*args):.0f}")

    # -- wire format ---------------------------------------------------------
    last = journal.stream("polymorph-1",
                          "uk.ucl.condor.schedd.queuesize")[-1]
    packet = encode_measurement(last)
    print("\n=== XDR wire format (values only, meta-data in the info model) ===")
    print(f"  packet: {len(packet)} bytes: {packet.hex()[:64]}...")
    json_size = naive_json_size(last, ["queuesize", "busy"], ["jobs", ""])
    print(f"  self-describing JSON equivalent would be {json_size} bytes "
          f"({json_size / len(packet):.1f}× larger)")
    assert decode_measurement(packet) == last

    # -- information model ------------------------------------------------------
    print("\n=== information model (DHT-backed, Tables 1–2 taxonomy) ===")
    pid = probe.probe_id
    for key in sorted(infomodel.ring.keys_with_prefix(f"/probe/{pid}/")):
        print(f"  {key:<38} = {infomodel.ring.get(key)}")
    for key in sorted(infomodel.ring.keys_with_prefix(f"/schema/{pid}/")):
        print(f"  {key:<38} = {infomodel.ring.get(key)}")
    print("  key distribution over DHT nodes:",
          infomodel.ring.load_distribution())

    print("\n=== elaboration: values-only packet + schema → full view ===")
    for ev in infomodel.elaborate(last):
        unit = f" {ev.units}" if ev.units else ""
        print(f"  {ev.name} = {ev.value}{unit}  ({ev.type.value})")

    # -- probe control ------------------------------------------------------------
    print("\n=== probe control (data rate / on-off, Table 2 entries) ===")
    source.set_data_rate("schedd-queue", 5.0)
    probe.turn_off()
    before = len(journal)
    env.run(until=env.now + 60)
    print(f"  probe off: {len(journal) - before} new events in 60 s")
    probe.turn_on()
    env.run(until=env.now + 21)
    print(f"  probe on at 5 s rate: {len(journal) - before} new events in 21 s")
    print("  info-model state:", infomodel.probe_state(pid))

    print(f"\nnetwork accounting: {network.packets_published} packets, "
          f"{network.bytes_published} bytes published, "
          f"{network.bytes_delivered} bytes delivered")


if __name__ == "__main__":
    main()
