#!/usr/bin/env python3
"""SLAs, protection and billing — the paper's §8 future work, implemented.

Deploys a web service whose manifest carries a **service-level objective**
(95% of samples must see response time < 2 s over each 10-minute window,
50 EUR credit per breached window), drives a load spike that the elasticity
rule is too slow to absorb, and shows:

* the SLA monitor sampling the objective and detecting the breach,
* the protection hook forcing a scale-up ahead of the (deliberately
  sluggish) elasticity rule,
* the invoice: instance-hours priced per component, breach credits deducted.

Run:  python examples/sla_billing.py
"""

from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
from repro.core.manifest import ManifestBuilder, manifest_to_text
from repro.core.service_manager import (
    BillingService,
    PriceSchedule,
    ScaleError,
    ServiceManager,
)
from repro.core.sla import SLAMonitor
from repro.monitoring import AttributeType, MonitoringAgent
from repro.sim import Environment


def build_manifest():
    b = ManifestBuilder("webshop")
    b.component("db", image_mb=2048, cpu=2, memory_mb=4096, startup_order=0)
    b.component("web", image_mb=1024, cpu=1, memory_mb=1024, startup_order=1,
                initial=1, minimum=1, maximum=4)
    b.application("webshop-app")
    b.kpi("LB", "web", "shop.response.time", type_name="double",
          frequency_s=30, units="s", default=0)
    b.kpi("Web", "web", "shop.web.instances", frequency_s=30, default=1)
    # A deliberately glacial rule: it reacts only to a sustained 20-minute
    # mean and waits 10 minutes between firings, so a sharp spike breaches
    # the SLO long before the rule catches up — the SLA protection hook has
    # to act first.
    b.rule("slow-up",
           "(mean(@shop.response.time, 1200) > 2) && "
           "(@shop.web.instances < 4)",
           "deployVM(web)", cooldown_s=600)
    b.slo("responsive", "@shop.response.time < 2",
          evaluation_period_s=30, target_compliance=0.95,
          assessment_window_s=600, penalty_per_breach=50)
    return b.build()


def main() -> None:
    manifest = build_manifest()
    print("=== manifest (textual syntax, SLA section at the end) ===")
    print(manifest_to_text(manifest))

    env = Environment()
    veem = VEEM(env, repository=ImageRepository(bandwidth_mb_per_s=100))
    timings = HypervisorTimings(define_s=2, boot_s=40, shutdown_s=5)
    for i in range(3):
        veem.add_host(Host(env, f"host-{i}", cpu_cores=8, memory_mb=16384,
                           timings=timings))
    sm = ServiceManager(env, veem)
    service = sm.deploy(manifest, service_id="webshop-1")
    env.run(until=service.deployment)
    print(f"[t={env.now:7.1f}s] deployed: web×{service.instance_count('web')}")

    # SLA monitor with a protection hook that forces capacity.
    monitor = SLAMonitor(env, "webshop-1", manifest.sla,
                         kpi_defaults=manifest.kpi_defaults(),
                         trace=sm.trace)
    monitor.subscribe_to(sm.network)

    def protect(slo, compliance):
        try:
            vm = service.lifecycle.scale_up("web")
            print(f"[t={env.now:7.1f}s] SLA protection: {slo.name} at "
                  f"{compliance:.0%} compliance → deployed {vm.vm_id}")
            return True
        except ScaleError:
            return False

    monitor.add_protection_hook(protect)
    monitor.start()

    # Application model: response time degrades with load per instance.
    load = {"sessions": 60}

    def response_time():
        instances = max(service.instance_count("web"), 1)
        per_instance = load["sessions"] / instances
        return 0.4 + max(per_instance - 80, 0) * 0.05  # knee at 80 sessions

    agent = MonitoringAgent(env, service_id="webshop-1", component="LB",
                            network=sm.network)
    agent.expose("shop.response.time", response_time, frequency_s=30,
                 type=AttributeType.DOUBLE, units="s")
    agent.expose("shop.web.instances",
                 lambda: service.instance_count("web"), frequency_s=30)

    billing_start = env.now
    env.run(until=env.now + 1800)          # calm half hour
    print(f"[t={env.now:7.1f}s] load spike: 60 → 400 sessions")
    load["sessions"] = 400
    env.run(until=env.now + 2700)          # spike + recovery
    load["sessions"] = 60
    env.run(until=env.now + 1800)

    print("\n=== SLA statement ===")
    for name, entry in monitor.statement().items():
        print(f"  {name}: compliance {entry['compliance']:.1%} "
              f"(target {entry['target']:.0%}), "
              f"{entry['breaches']} breach(es), "
              f"{entry['penalties']:.2f} EUR credits")

    billing = BillingService(
        service.lifecycle.accountant,
        PriceSchedule(rates=(("db", 0.40), ("web", 0.15)),
                      deployment_fee=0.05),
        sla_monitor=monitor,
    )
    print("\n=== invoice ===")
    print(billing.invoice(billing_start).render())


if __name__ == "__main__":
    main()
