#!/usr/bin/env python3
"""The §3 motivating example: an SAP-style ERP system on the cloud.

Demonstrates every architectural constraint the paper derives from the SAP
architecture:

* the Central Instance and DBMS are **co-located** on the same host,
* the Central Instance is **not replicable**,
* Dialog Instances scale with the Web Dispatcher's sessions KPI
  (``com.sap.webdispatcher.kpis.sessions``),
* instance-specific customisation (CI/DB addresses) is injected at
  deployment time (MDL6).

A business-day session profile (quiet → peak → quiet) drives the system.

Run:  python examples/sap_elastic_erp.py
"""

from repro.apps import SAPConfig, SessionWorkload, deploy_sap, drive_sessions
from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
from repro.core.service_manager import ScaleError, ServiceManager
from repro.experiments import render_ascii_chart
from repro.sim import Environment


def main() -> None:
    env = Environment()
    veem = VEEM(env, repository=ImageRepository(bandwidth_mb_per_s=100))
    timings = HypervisorTimings(define_s=2, boot_s=40, shutdown_s=8)
    for i in range(5):
        veem.add_host(Host(env, f"host-{i}", cpu_cores=8, memory_mb=16384,
                           timings=timings))
    sm = ServiceManager(env, veem)

    cfg = SAPConfig(sessions_per_di=100, max_dialog_instances=6)
    sap = deploy_sap(env, sm, cfg)
    env.run(until=sap.service.deployment)

    lifecycle = sap.service.lifecycle
    ci = lifecycle.components["CentralInstance"].vms[0]
    dbms = lifecycle.components["DBMS"].vms[0]
    print(f"[t={env.now:7.1f}s] SAP system deployed")
    print(f"  DBMS            on {dbms.host.name}")
    print(f"  CentralInstance on {ci.host.name}   "
          f"(co-location constraint: {'OK' if ci.host is dbms.host else 'VIOLATED'})")
    print(f"  CI customisation: {ci.descriptor.customisation}")
    di = lifecycle.components["DialogInstance"].vms[0]
    print(f"  DialogInstance customisation: {di.descriptor.customisation}")

    # The central instance cannot be replicated — the manifest encodes it and
    # the lifecycle manager refuses.
    try:
        lifecycle.scale_up("CentralInstance")
    except ScaleError as exc:
        print(f"  scale-up of CentralInstance refused: {exc}")

    # A business day: quiet morning, sustained peak, evening wind-down.
    workload = SessionWorkload(
        phases=(
            (1800.0, 0.05),   # 06:00–06:30: trickle
            (5400.0, 0.55),   # peak: ~330 concurrent sessions at steady state
            (2700.0, 0.10),   # wind-down
        ),
        session_duration_s=600.0,
    )
    day_start = env.now
    env.process(drive_sessions(env, sap.dispatcher, workload))
    env.run(until=env.now + workload.total_duration_s + 1800)

    print(f"\n[t={env.now:7.1f}s] business day complete")
    sessions = sap.dispatcher.series["sessions"]
    instances = sap.dispatcher.series["dialog_instances"]
    print(f"  peak sessions: {sessions.maximum():.0f}")
    print(f"  peak dialog instances: {instances.maximum():.0f} "
          f"(max {cfg.max_dialog_instances})")
    print(f"  dialog instances now: {sap.dialog_instance_count} "
          f"(min {cfg.min_dialog_instances})")
    print(f"  rejected sessions: {sap.dispatcher.rejected_sessions}")

    report = sap.service.check_constraints()
    print(f"  semantic constraints: {report.summary()}")

    end = env.now
    print("\n" + render_ascii_chart(sessions, day_start, end, width=68,
                                    label="active web sessions"))
    print("\n" + render_ascii_chart(instances, day_start, end, width=68,
                                    label="dialog instances"))


if __name__ == "__main__":
    main()
