#!/usr/bin/env python3
"""The paper's evaluation (§6), end to end: polymorph search on the cloud.

Runs the computational-chemistry workload (2 long seed jobs, 200 refinement
jobs spawned per seed completion) twice — on a dedicated 16-node cluster and
on the elastic RESERVOIR stack — then prints Table 3 and the Fig. 11 text
charts.

Run:  python examples/polymorph_grid.py          (full size, ~20 s)
      python examples/polymorph_grid.py --small  (scaled down, ~2 s)
"""

import sys

from repro.experiments import (
    render_run,
    run_dedicated,
    run_elastic,
    table3,
)
from repro.grid import PolymorphSearchConfig

PAPER = {
    "dedicated_turnaround_s": 8605.0,
    "cloud_turnaround_s": 9220.0,
    "cloud_shutdown_s": 9574.0,
    "cloud_mean_nodes_run": 10.49,
    "cloud_mean_nodes_until_shutdown": 10.42,
    "resource_usage_saving": 0.3446,
    "extra_run_time": 0.0715,
}


def main() -> None:
    if "--small" in sys.argv:
        workload = PolymorphSearchConfig(
            seed_durations_s=(600.0, 900.0), refinements_per_seed=48,
            refinement_mean_s=90.0, setup_s=20, gather_s=20, generate_s=5)
        print("(scaled-down workload — shapes hold, absolute values differ)")
    else:
        workload = PolymorphSearchConfig()

    print("running dedicated baseline (16 always-on nodes)...")
    dedicated = run_dedicated(workload)
    print("running elastic cloud (rules scale 0→16→0 instances)...\n")
    elastic = run_elastic(workload)

    rows = table3(dedicated, elastic)

    def fmt(value, unit=""):
        return "N/A" if value is None else f"{value:,.2f}{unit}"

    print("=" * 66)
    print(f"{'Table 3':<40}{'Dedicated':>12}{'Cloud':>14}")
    print("-" * 66)
    print(f"{'Search turn around time (s)':<40}"
          f"{fmt(rows['dedicated_turnaround_s']):>12}"
          f"{fmt(rows['cloud_turnaround_s']):>14}")
    print(f"{'Complete shutdown time (s)':<40}{'N/A':>12}"
          f"{fmt(rows['cloud_shutdown_s']):>14}")
    print(f"{'Average execution nodes (run)':<40}"
          f"{fmt(rows['dedicated_mean_nodes_run']):>12}"
          f"{fmt(rows['cloud_mean_nodes_run']):>14}")
    print(f"{'Average execution nodes (until stop)':<40}{'N/A':>12}"
          f"{fmt(rows['cloud_mean_nodes_until_shutdown']):>14}")
    print(f"{'Resource usage saving':<40}{'':>12}"
          f"{rows['resource_usage_saving'] * 100:>13.2f}%")
    print(f"{'Extra run time (jobs)':<40}{'':>12}"
          f"{rows['extra_run_time'] * 100:>13.2f}%")
    print("=" * 66)

    if "--small" not in sys.argv:
        print("\npaper values: turn-around 8605 → 9220 s (+7.15%), shutdown "
              "9574 s,\n              nodes 10.49/10.42, saving 34.46%")

    print("\n" + render_run(dedicated, width=70))
    print("\n" + render_run(elastic, width=70))

    print("\nelasticity rule firings (elastic run):")
    for name, stats in elastic.rule_firings.items():
        print(f"  {name:<24} {stats['firings']:>4} firing(s)")


if __name__ == "__main__":
    main()
