#!/usr/bin/env python3
"""Federation (§2, MDL5): multi-site placement and cross-site migration.

Builds a federation of three sites (two trusted EU sites and an untrusted
offshore site), expresses MDL5 administrative constraints (favour a site,
avoid untrusted locations for the database), deploys a small service across
the federation, and finally migrates a component cross-site for business
continuity — "replication of virtual machines to other locations for example
for business continuity purposes" (§2).

Run:  python examples/federation_migration.py
"""

from repro.cloud import (
    DeploymentDescriptor,
    FederatedCloud,
    Host,
    HypervisorTimings,
    ImageRepository,
    Site,
    SiteConstraint,
    VEEM,
)
from repro.sim import Environment


def make_site(env, name, *, trusted=True, hosts=2):
    repo = ImageRepository(bandwidth_mb_per_s=100)
    repo.add("base", size_mb=1024, href="http://sm.internal/images/base")
    veem = VEEM(env, name=f"veem-{name}", repository=repo)
    timings = HypervisorTimings(define_s=2, boot_s=30, shutdown_s=5)
    for i in range(hosts):
        veem.add_host(Host(env, f"{name}-h{i}", cpu_cores=8,
                           memory_mb=16384, timings=timings))
    return Site(name=name, veem=veem, attributes={"trusted": trusted})


def descriptor(component):
    return DeploymentDescriptor(
        name=component, memory_mb=2048, cpu=1,
        disk_source="http://sm.internal/images/base",
        service_id="federated-svc", component_id=component,
    )


def main() -> None:
    env = Environment()
    cloud = FederatedCloud(env, wan_bandwidth_mb_per_s=25.0)
    london = cloud.add_site(make_site(env, "london"))
    madrid = cloud.add_site(make_site(env, "madrid"))
    cloud.add_site(make_site(env, "offshore", trusted=False))

    # MDL5 administrative constraints.
    cloud.add_constraint(SiteConstraint(
        component="dbms", require_trusted=True))          # data sovereignty
    cloud.add_constraint(SiteConstraint(
        component="web", favour=frozenset({"madrid"})))   # latency to users

    print("eligible sites per component:")
    for component in ("dbms", "web", "batch"):
        sites = [s.name for s in cloud.eligible_sites(descriptor(component))]
        print(f"  {component:<6} → {sites}")

    dbms = cloud.submit(descriptor("dbms"))
    web = cloud.submit(descriptor("web"))
    batch = cloud.submit(descriptor("batch"))
    env.run(until=env.all_of([dbms.on_running, web.on_running,
                              batch.on_running]))
    print(f"\n[t={env.now:7.1f}s] deployed:")
    for vm in (dbms, web, batch):
        print(f"  {vm.descriptor.component_id:<6} {vm.vm_id:<16} "
              f"site={cloud.site_of(vm).name:<9} host={vm.host.name}")

    # Business continuity: London is scheduled for maintenance — move the
    # DBMS to Madrid. Cross-site moves pay WAN transfer of disk + memory.
    print(f"\n[t={env.now:7.1f}s] migrating dbms london → madrid ...")
    result = {}

    def migrate(env):
        new_vm = yield cloud.migrate_cross_site(dbms, madrid)
        result["vm"] = new_vm

    env.process(migrate(env))
    env.run()
    new_vm = result["vm"]
    print(f"[t={env.now:7.1f}s] migration complete: {new_vm.vm_id} on "
          f"{new_vm.host.name} (old VM {dbms.vm_id} is {dbms.state.value})")

    print("\nfederation trace:")
    for record in cloud.trace.query():
        print(f"  t={record.time:8.1f}s {record.kind:<20} {record.details}")


if __name__ == "__main__":
    main()
