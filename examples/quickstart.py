#!/usr/bin/env python3
"""Quickstart: define a manifest, deploy it, watch one elasticity action.

Builds a two-component service (a database plus an elastic web tier) with
the fluent manifest API, deploys it on a two-host simulated site through the
Service Manager, publishes a sessions KPI from a monitoring agent, and lets
the elasticity rule add a web instance when the load rises.

Run:  python examples/quickstart.py
"""

from repro.cloud import Host, HypervisorTimings, ImageRepository, VEEM
from repro.core.manifest import ManifestBuilder, manifest_to_xml
from repro.core.service_manager import ServiceManager
from repro.monitoring import MonitoringAgent
from repro.sim import Environment


def build_manifest():
    """The service definition manifest — the paper's central artefact."""
    builder = ManifestBuilder("quickstart-shop")
    builder.network("internal")
    builder.component(
        "db", image_mb=2048, cpu=2, memory_mb=4096,
        networks=["internal"], startup_order=0,
        info="database backend",
    )
    builder.component(
        "web", image_mb=1024, cpu=1, memory_mb=1024,
        networks=["internal"], startup_order=1,
        initial=1, minimum=1, maximum=3,
        info="stateless web tier",
        customisation={"db_host": "${ip.internal.db}"},  # MDL6
    )
    builder.application("shop-app")
    builder.kpi("LoadBalancer", "web", "com.shop.lb.sessions",
                frequency_s=10, units="sessions", default=0)
    builder.kpi("WebTier", "web", "com.shop.web.instances",
                frequency_s=10, default=1)
    builder.rule(
        "ScaleWebUp",
        "(@com.shop.lb.sessions / 100 > @com.shop.web.instances) && "
        "(@com.shop.web.instances < 3)",
        "deployVM(web)",
    )
    builder.rule(
        "ScaleWebDown",
        "(@com.shop.lb.sessions == 0) && (@com.shop.web.instances > 1)",
        "undeployVM(web)",
        cooldown_s=30,
    )
    return builder.build()


def main() -> None:
    manifest = build_manifest()
    print("=== Concrete XML syntax (excerpt) ===")
    print("\n".join(manifest_to_xml(manifest).splitlines()[:20]))
    print("    ...\n")

    # A two-host site managed by a VEEM.
    env = Environment()
    veem = VEEM(env, repository=ImageRepository(bandwidth_mb_per_s=100))
    timings = HypervisorTimings(define_s=2, boot_s=30, shutdown_s=5)
    for i in range(2):
        veem.add_host(Host(env, f"host-{i}", cpu_cores=8, memory_mb=16384,
                           timings=timings))
    sm = ServiceManager(env, veem)

    # Deploy (the §5.1.1 seven-step workflow) and wait for completion.
    service = sm.deploy(manifest)
    env.run(until=service.deployment)
    print(f"[t={env.now:7.1f}s] service deployed: "
          f"db×{service.instance_count('db')}, "
          f"web×{service.instance_count('web')}")
    web_vm = service.lifecycle.components["web"].vms[0]
    print(f"              web customisation: {web_vm.descriptor.customisation}")

    # A monitoring agent bridges the application and the infrastructure.
    sessions = {"count": 0}
    agent = MonitoringAgent(env, service_id=service.service_id,
                            component="LoadBalancer", network=sm.network)
    agent.expose("com.shop.lb.sessions", lambda: sessions["count"],
                 frequency_s=10)
    agent.expose("com.shop.web.instances",
                 lambda: service.instance_count("web"), frequency_s=10)

    # Load rises → the rule engine adds web instances.
    sessions["count"] = 250
    env.run(until=env.now + 120)
    print(f"[t={env.now:7.1f}s] after load spike (250 sessions): "
          f"web×{service.instance_count('web')}")

    # Load vanishes → scale back down to the minimum.
    sessions["count"] = 0
    env.run(until=env.now + 300)
    print(f"[t={env.now:7.1f}s] after load drop: "
          f"web×{service.instance_count('web')}")

    # Semantic constraints (the §4.2.2 OCL invariants) hold throughout.
    report = service.check_constraints()
    print(f"constraint check: {report.summary()}")

    print("\nrule firings:")
    for name, stats in service.interpreter.stats().items():
        print(f"  {name}: {stats['firings']} firing(s)")


if __name__ == "__main__":
    main()
