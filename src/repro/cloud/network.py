"""Virtual networks and DHCP-style IP allocation.

The manifest's ``<NetworkSection>`` declares logical networks (requirement
MDL2); components may need "the IP addresses of the Central Instance and DBMS
to be provided, if this information is not known at pre-deployment time (e.g.
dynamic IP allocation via DHCP)" (MDL6). This module provides those logical
networks and the dynamic allocator whose leases feed customisation disks.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Optional

from .errors import NetworkError

__all__ = ["VirtualNetwork", "NetworkFabric"]


@dataclass(frozen=True)
class _Lease:
    address: str
    owner: str


class VirtualNetwork:
    """A logical L2 network with a DHCP-style address pool.

    Addresses are handed out lowest-first and recycled on release, matching
    common DHCP server behaviour closely enough for configuration purposes.
    """

    def __init__(self, name: str, cidr: str = "10.0.0.0/24",
                 public: bool = False):
        if not name:
            raise NetworkError("network name must be non-empty")
        try:
            self._net = ipaddress.ip_network(cidr)
        except ValueError as exc:
            raise NetworkError(f"bad CIDR {cidr!r}: {exc}") from exc
        self.name = name
        self.cidr = cidr
        #: Whether the network provides external connectivity (the SAP Web
        #: Dispatcher "should provide an external interface" — MDL2).
        self.public = public
        # Skip network and broadcast addresses; reserve .1 for the gateway.
        hosts = list(self._net.hosts())
        self.gateway = str(hosts[0]) if hosts else None
        self._free = [str(h) for h in hosts[1:]]
        self._leases: dict[str, _Lease] = {}

    @property
    def capacity(self) -> int:
        return len(self._free) + len(self._leases)

    @property
    def allocated(self) -> int:
        return len(self._leases)

    def allocate(self, owner: str) -> str:
        """Lease the next free address to ``owner`` (e.g. a VM id)."""
        if not self._free:
            raise NetworkError(f"network {self.name!r}: address pool exhausted")
        address = self._free.pop(0)
        self._leases[address] = _Lease(address, owner)
        return address

    def release(self, address: str) -> None:
        lease = self._leases.pop(address, None)
        if lease is None:
            raise NetworkError(
                f"network {self.name!r}: {address} is not leased"
            )
        # Re-insert keeping the pool sorted so allocation stays lowest-first.
        self._free.append(address)
        self._free.sort(key=lambda a: ipaddress.ip_address(a))

    def owner_of(self, address: str) -> Optional[str]:
        lease = self._leases.get(address)
        return lease.owner if lease else None

    def addresses_of(self, owner: str) -> list[str]:
        return [l.address for l in self._leases.values() if l.owner == owner]

    def __contains__(self, address: str) -> bool:
        return address in self._leases

    def __repr__(self) -> str:
        return (f"<VirtualNetwork {self.name!r} {self.cidr} "
                f"{self.allocated}/{self.capacity} leased>")


class NetworkFabric:
    """The collection of virtual networks available at a site."""

    def __init__(self) -> None:
        self._networks: dict[str, VirtualNetwork] = {}

    def create(self, name: str, cidr: str = "10.0.0.0/24",
               public: bool = False) -> VirtualNetwork:
        if name in self._networks:
            raise NetworkError(f"network {name!r} already exists")
        net = VirtualNetwork(name, cidr, public=public)
        self._networks[name] = net
        return net

    def get(self, name: str) -> VirtualNetwork:
        try:
            return self._networks[name]
        except KeyError:
            raise NetworkError(f"unknown network {name!r}") from None

    def ensure(self, name: str, cidr: str = "10.0.0.0/24",
               public: bool = False) -> VirtualNetwork:
        """Get the network, creating it if the site doesn't have it yet."""
        if name in self._networks:
            return self._networks[name]
        return self.create(name, cidr, public=public)

    def release_all(self, owner: str) -> int:
        """Release every lease held by ``owner`` across all networks."""
        count = 0
        for net in self._networks.values():
            for address in list(net.addresses_of(owner)):
                net.release(address)
                count += 1
        return count

    def __contains__(self, name: str) -> bool:
        return name in self._networks

    def __iter__(self):
        return iter(self._networks.values())
