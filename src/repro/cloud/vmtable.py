"""Struct-of-arrays bookkeeping for a site's VM fleet.

The scale harness's hot introspection paths — the periodic live-VM census,
``active_vms``/``running_vms`` scans, per-component instance counts — used
to chase one Python object per VM (`vm.is_active` → attribute load → enum
compare) across fleets of tens of thousands. :class:`VMTable` keeps the
fields those scans touch in dense parallel ``array`` columns keyed by a
per-site VM index:

========== ============ ====================================================
column     type         contents
========== ============ ====================================================
``cpu``    ``array(d)`` reserved CPU cores
``memory`` ``array(d)`` reserved memory (MB)
``state``  ``array(b)`` :class:`~repro.cloud.vm.VMState` as a small int code
``comp``   ``array(i)`` interned component id (``-1`` = none)
``svc``    ``array(i)`` interned service id (``-1`` = none)
========== ============ ====================================================

A parallel ``vms`` list holds the :class:`~repro.cloud.vm.VirtualMachine`
back-references so scans only materialise objects for *matching* rows.
State changes flow in through :meth:`note_transition` (wired into
``VirtualMachine.transition``), which also maintains an incremental
``active_count`` — the federation census is O(sites) instead of O(fleet).
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Optional

from .vm import VMState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .vm import VirtualMachine

__all__ = ["VMTable", "STATE_CODE", "ACTIVE_CODES"]

#: Stable VMState → small-int encoding for the ``state`` column.
STATE_CODE: dict[VMState, int] = {
    state: code for code, state in enumerate(VMState)
}
_CODE_STATE: tuple[VMState, ...] = tuple(VMState)

#: Codes of states that hold (or are acquiring) host capacity — everything
#: except STOPPED and FAILED, mirroring ``VirtualMachine.is_active``.
ACTIVE_CODES: frozenset[int] = frozenset(
    STATE_CODE[s] for s in VMState if s not in (VMState.STOPPED,
                                                VMState.FAILED)
)
_RUNNING = STATE_CODE[VMState.RUNNING]
_STOPPED = STATE_CODE[VMState.STOPPED]
_FAILED = STATE_CODE[VMState.FAILED]


class VMTable:
    """Dense struct-of-arrays registry of every VM a VEEM ever submitted.

    Rows are append-only (a fleet's history is part of its accounting);
    liveness is the ``state`` column, not row deletion, so indices stay
    stable for the lifetime of the table.
    """

    __slots__ = ("cpu", "memory", "state", "comp", "svc", "vms",
                 "active_count", "_intern")

    def __init__(self) -> None:
        self.cpu = array("d")
        self.memory = array("d")
        self.state = array("b")
        self.comp = array("i")
        self.svc = array("i")
        self.vms: list[VirtualMachine] = []
        #: VMs currently in a capacity-holding state, maintained on every
        #: transition — the O(1) census read.
        self.active_count = 0
        #: shared string → column id intern map (component and service ids
        #: draw from disjoint enough namespaces that one map serves both)
        self._intern: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.state)

    # -- registration --------------------------------------------------
    def intern(self, name: Optional[str]) -> int:
        """Column id for a component/service name (``-1`` for None)."""
        if name is None:
            return -1
        table = self._intern
        code = table.get(name)
        if code is None:
            code = len(table)
            table[name] = code
        return code

    def add(self, vm: VirtualMachine) -> int:
        """Register a VM; returns its dense index and wires the VM so
        subsequent ``transition()`` calls update the columns."""
        index = len(self.state)
        d = vm.descriptor
        self.cpu.append(d.cpu)
        self.memory.append(d.memory_mb)
        code = STATE_CODE[vm.state]
        self.state.append(code)
        self.comp.append(self.intern(d.component_id))
        self.svc.append(self.intern(d.service_id))
        self.vms.append(vm)
        if code in ACTIVE_CODES:
            self.active_count += 1
        vm._table = self
        vm._table_index = index
        return index

    def note_transition(self, index: int, new_state: VMState) -> None:
        """Record a state change (called from ``VirtualMachine.transition``)."""
        code = STATE_CODE[new_state]
        old = self.state[index]
        self.state[index] = code
        # Transitions out of the active set are exactly STOPPED/FAILED
        # (terminal states never transition again), so the delta is cheap.
        if code == _STOPPED or code == _FAILED:
            if old not in (_STOPPED, _FAILED):
                self.active_count -= 1

    # -- scans ----------------------------------------------------------
    def active_indices(self, *, service_id: Optional[str] = None,
                       component_id: Optional[str] = None) -> list[int]:
        """Dense indices of active rows, optionally filtered — the scan
        compares ints in the columns and never touches a VM object."""
        states = self.state
        active = ACTIVE_CODES
        want_svc = (self._intern.get(service_id, -2)
                    if service_id is not None else None)
        want_comp = (self._intern.get(component_id, -2)
                     if component_id is not None else None)
        if want_svc == -2 or want_comp == -2:
            return []       # name never interned: no VM can match
        svc = self.svc
        comp = self.comp
        return [
            i for i in range(len(states))
            if states[i] in active
            and (want_svc is None or svc[i] == want_svc)
            and (want_comp is None or comp[i] == want_comp)
        ]

    def active_vms(self, *, service_id: Optional[str] = None,
                   component_id: Optional[str] = None,
                   running_only: bool = False) -> list[VirtualMachine]:
        """The matching :class:`VirtualMachine` objects, in submission
        order (the order every pre-table scan produced)."""
        vms = self.vms
        if running_only:
            states = self.state
            return [vms[i]
                    for i in self.active_indices(service_id=service_id,
                                                 component_id=component_id)
                    if states[i] == _RUNNING]
        return [vms[i]
                for i in self.active_indices(service_id=service_id,
                                             component_id=component_id)]

    def active_capacity(self) -> tuple[float, float]:
        """(cpu, memory_mb) reserved by the active fleet."""
        states = self.state
        cpu = self.cpu
        mem = self.memory
        active = ACTIVE_CODES
        total_cpu = 0.0
        total_mem = 0.0
        for i in range(len(states)):
            if states[i] in active:
                total_cpu += cpu[i]
                total_mem += mem[i]
        return total_cpu, total_mem

    def state_counts(self) -> dict[VMState, int]:
        """Histogram of the fleet by lifecycle state."""
        counts = [0] * len(_CODE_STATE)
        for code in self.state:
            counts[code] += 1
        return {_CODE_STATE[code]: n for code, n in enumerate(counts) if n}

    def __repr__(self) -> str:
        return (f"<VMTable rows={len(self.state)} "
                f"active={self.active_count}>")
