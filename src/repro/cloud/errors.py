"""Exception hierarchy for the virtual-infrastructure substrate."""

from __future__ import annotations

__all__ = [
    "CloudError",
    "PlacementError",
    "CapacityError",
    "ImageError",
    "NetworkError",
    "LifecycleError",
]


class CloudError(Exception):
    """Base class for infrastructure-layer errors."""


class PlacementError(CloudError):
    """No host (or site) satisfies a deployment request's requirements."""


class CapacityError(PlacementError):
    """The pool's *capacity* — not a placement constraint — blocks a request.

    Raised when no host has enough free CPU/memory for a reservation
    (VEEM submit and every scale path that ends in a submit), and by the
    capacity planner/admission controller (:mod:`repro.cloud.capacity`)
    when a workload cannot be guaranteed its worst case.

    Deliberately a subclass of :class:`PlacementError`: code written against
    the seed's loud contention failure (``except PlacementError``) keeps
    working unchanged, while newer layers — in particular the multi-tenant
    control plane (:mod:`repro.control`) — can distinguish *transient*
    capacity exhaustion (queue, back off, retry once something undeploys)
    from *permanent* constraint infeasibility (reject outright).
    """


class ImageError(CloudError):
    """Unknown image reference or repository inconsistency."""


class NetworkError(CloudError):
    """Virtual-network misconfiguration or IP-pool exhaustion."""


class LifecycleError(CloudError):
    """An operation was applied to a VM in an incompatible state."""
