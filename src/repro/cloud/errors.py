"""Exception hierarchy for the virtual-infrastructure substrate."""

from __future__ import annotations

__all__ = [
    "CloudError",
    "PlacementError",
    "CapacityError",
    "ImageError",
    "NetworkError",
    "LifecycleError",
]


class CloudError(Exception):
    """Base class for infrastructure-layer errors."""


class PlacementError(CloudError):
    """No host (or site) satisfies a deployment request's requirements."""


class CapacityError(CloudError):
    """A host cannot accommodate a reservation it was asked to make."""


class ImageError(CloudError):
    """Unknown image reference or repository inconsistency."""


class NetworkError(CloudError):
    """Virtual-network misconfiguration or IP-pool exhaustion."""


class LifecycleError(CloudError):
    """An operation was applied to a VM in an incompatible state."""
