"""Disk images and the image repository.

In the paper's stack the Service Manager runs an internal HTTP server that
hands out base images plus per-instance customisation (OVF environment) disks;
the VEEM "gets the base disk for the VEE, creates it and boots it" (§5.1.1,
step 6). The dominant cost the evaluation attributes to elastic scale-up is
"duplicating the disk image of the service, deploying it on a local
hypervisor, and booting the virtual machine" (§6.1.4) — so the repository
models image size and transfer bandwidth explicitly, and supports
pre-staging (the paper's suggested mitigation: "relying on pre-existing
images to avoid replication").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .errors import ImageError

__all__ = ["DiskImage", "CustomisationDisk", "ImageRepository"]


@dataclass(frozen=True)
class DiskImage:
    """An immutable base disk image (OS + middleware + service software).

    Attributes
    ----------
    image_id:
        Identifier used in manifest ``<References>``/``<DiskSection>``.
    href:
        The URL-like reference placed in deployment descriptors (the REST
        messages carry references, not the images themselves — §5.1).
    size_mb:
        Image size; with the repository bandwidth this determines the
        replication component of the provisioning latency.
    format:
        Informational (e.g. ``"raw"``, ``"qcow2"``, ``"vmdk"``).
    """

    image_id: str
    href: str
    size_mb: float
    format: str = "raw"

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError(f"image {self.image_id!r}: size must be positive")
        if not self.image_id:
            raise ValueError("image_id must be non-empty")


@dataclass(frozen=True)
class CustomisationDisk:
    """A small per-instance disk carrying OVF-environment customisation data.

    Generated at deployment time (step 4 of the elasticity workflow) and
    attached to the VEE "typically as a virtual CD/DVD" so the Activation
    Engine can configure the guest (e.g. assigned IP) — §5.1.1 step 7.
    """

    disk_id: str
    properties: dict[str, Any] = field(default_factory=dict)
    size_mb: float = 1.0

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ValueError("customisation disk size must be positive")


class ImageRepository:
    """The Service Manager's internal image server.

    Tracks registered base images and computes transfer times. Hosts keep a
    local cache; a cache hit (pre-staged image) skips the transfer entirely.
    """

    def __init__(self, bandwidth_mb_per_s: float = 100.0):
        if bandwidth_mb_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_mb_per_s = float(bandwidth_mb_per_s)
        self._images: dict[str, DiskImage] = {}
        self._custom_seq = 0
        #: total MB served; used by ablation benches on image pre-staging.
        self.bytes_served_mb = 0.0

    # -- registration ----------------------------------------------------
    def register(self, image: DiskImage) -> DiskImage:
        if image.image_id in self._images:
            raise ImageError(f"image {image.image_id!r} already registered")
        self._images[image.image_id] = image
        return image

    def add(self, image_id: str, size_mb: float, *, href: Optional[str] = None,
            format: str = "raw") -> DiskImage:
        """Convenience: build and register in one call."""
        return self.register(DiskImage(
            image_id=image_id,
            href=href or f"http://sm.internal/images/{image_id}",
            size_mb=size_mb,
            format=format,
        ))

    def get(self, image_id: str) -> DiskImage:
        try:
            return self._images[image_id]
        except KeyError:
            raise ImageError(f"unknown image {image_id!r}") from None

    def resolve_href(self, href: str) -> DiskImage:
        for image in self._images.values():
            if image.href == href:
                return image
        raise ImageError(f"no image with href {href!r}")

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._images

    def __len__(self) -> int:
        return len(self._images)

    # -- transfer model ---------------------------------------------------
    def transfer_time(self, image_id: str) -> float:
        """Seconds to replicate the base image to a host (no cache)."""
        image = self.get(image_id)
        return image.size_mb / self.bandwidth_mb_per_s

    def record_transfer(self, image_id: str) -> float:
        """Account a transfer and return its duration."""
        duration = self.transfer_time(image_id)
        self.bytes_served_mb += self.get(image_id).size_mb
        return duration

    # -- customisation disks -----------------------------------------------
    def make_customisation_disk(
        self, properties: dict[str, Any]
    ) -> CustomisationDisk:
        """Generate a fresh OVF-environment disk (elasticity workflow step 4)."""
        self._custom_seq += 1
        return CustomisationDisk(
            disk_id=f"custom-{self._custom_seq}",
            properties=dict(properties),
        )
