"""Virtual machines (VEEs) and deployment descriptors.

The deployment descriptor mirrors the OpenNebula template the paper uses as
the VEEM-level deployment format ("roughly based on a Xen configuration
file", §4.2.2 / Fig. 5): name, memory, cpu, disk source, network interfaces
and contextualisation data. The Service Manager generates one descriptor per
virtual system in the manifest, and the OCL ``Association`` invariant in
§4.2.2 constrains descriptor fields to match the manifest — implemented in
:mod:`repro.core.constraints`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim import Environment, Event
from .errors import LifecycleError
from .images import CustomisationDisk

__all__ = ["VMState", "DeploymentDescriptor", "VirtualMachine"]


class VMState(enum.Enum):
    """VEE lifecycle states.

    ::

        PENDING → STAGING → BOOTING → RUNNING → SHUTTING_DOWN → STOPPED
                                       │  ↑ ↑│
                                       │  │ └┴─ SUSPENDED
                                       └──┴──── MIGRATING

    A SUSPENDED VM may also be shut down directly. Any pre-STOPPED state may
    transition to FAILED.
    """

    PENDING = "pending"
    STAGING = "staging"          # image replication to the target host
    BOOTING = "booting"          # hypervisor define + guest OS boot
    RUNNING = "running"
    SUSPENDED = "suspended"
    MIGRATING = "migrating"
    SHUTTING_DOWN = "shutting_down"
    STOPPED = "stopped"
    FAILED = "failed"


#: Legal state transitions; anything else raises :class:`LifecycleError`.
_TRANSITIONS: dict[VMState, frozenset[VMState]] = {
    VMState.PENDING: frozenset({VMState.STAGING, VMState.FAILED}),
    VMState.STAGING: frozenset({VMState.BOOTING, VMState.FAILED}),
    VMState.BOOTING: frozenset({VMState.RUNNING, VMState.FAILED}),
    VMState.RUNNING: frozenset({
        VMState.MIGRATING, VMState.SUSPENDED, VMState.SHUTTING_DOWN,
        VMState.FAILED,
    }),
    VMState.SUSPENDED: frozenset({
        VMState.RUNNING, VMState.SHUTTING_DOWN, VMState.FAILED,
    }),
    VMState.MIGRATING: frozenset({VMState.RUNNING, VMState.FAILED}),
    VMState.SHUTTING_DOWN: frozenset({VMState.STOPPED, VMState.FAILED}),
    VMState.STOPPED: frozenset(),
    VMState.FAILED: frozenset(),
}


@dataclass
class DeploymentDescriptor:
    """A VEEM-level deployment template for one VEE (OpenNebula style).

    Attributes mirror Fig. 5's ``DeploymentDescriptor``: ``name`` must equal
    the manifest virtual-system id, ``memory_mb``/``cpu`` come from the
    ``VirtualHardwareSection`` and ``disk_source`` from the referenced file's
    ``href``.
    """

    name: str
    memory_mb: float
    cpu: float
    disk_source: str                       # image href
    networks: tuple[str, ...] = ()
    customisation: dict[str, Any] = field(default_factory=dict)
    #: service this VEE belongs to (used to tag monitoring and accounting)
    service_id: Optional[str] = None
    #: manifest component this VEE instantiates (e.g. "CondorExec")
    component_id: Optional[str] = None
    #: free-form placement hints consumed by constraint-aware policies
    placement: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("descriptor name must be non-empty")
        if self.memory_mb <= 0:
            raise ValueError(f"{self.name}: memory must be positive")
        if self.cpu <= 0:
            raise ValueError(f"{self.name}: cpu must be positive")
        if not self.disk_source:
            raise ValueError(f"{self.name}: disk_source must be non-empty")


class VirtualMachine:
    """A VEE: a deployment descriptor bound to a host, with lifecycle events.

    Interested parties wait on :attr:`on_running` / :attr:`on_stopped`; the
    application layer uses ``on_running`` to start guest software (e.g. a
    Condor startd registering with the scheduler).
    """

    def __init__(self, env: Environment, vm_id: str,
                 descriptor: DeploymentDescriptor):
        self.env = env
        self.vm_id = vm_id
        self.descriptor = descriptor
        self.state = VMState.PENDING
        self.host: Optional[Any] = None           # Host, set by the VEEM
        self.ip_addresses: dict[str, str] = {}    # network name → address
        self.customisation_disk: Optional[CustomisationDisk] = None
        self.submitted_at = env.now
        self.running_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self.state_history: list[tuple[float, VMState]] = [
            (env.now, VMState.PENDING)
        ]
        #: causal ``vm.deploy`` span, set by the VEEM at submit — links this
        #: VEE back to whatever caused it (a rule firing, a control-plane
        #: request, or nothing when deployed directly)
        self.span: Optional[Any] = None
        #: struct-of-arrays fleet table this VM is a row of (set by
        #: :meth:`repro.cloud.vmtable.VMTable.add`); transitions mirror the
        #: state into the table's ``state`` column
        self._table: Optional[Any] = None
        self._table_index: int = -1
        self.on_running: Event = env.event()
        self.on_stopped: Event = env.event()

    # -- state machine -----------------------------------------------------
    def transition(self, new_state: VMState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise LifecycleError(
                f"VM {self.vm_id}: illegal transition "
                f"{self.state.value} → {new_state.value}"
            )
        self.state = new_state
        self.state_history.append((self.env.now, new_state))
        if self._table is not None:
            self._table.note_transition(self._table_index, new_state)
        if new_state is VMState.RUNNING and self.running_at is None:
            self.running_at = self.env.now
            self.on_running.succeed(self)
        elif new_state in (VMState.STOPPED, VMState.FAILED):
            self.stopped_at = self.env.now
            self.on_stopped.succeed(self)

    @property
    def is_active(self) -> bool:
        """True while the VM holds (or is acquiring) host capacity."""
        return self.state not in (VMState.STOPPED, VMState.FAILED)

    @property
    def provisioning_time(self) -> Optional[float]:
        """Submission-to-running latency — the overhead Table 3 measures."""
        if self.running_at is None:
            return None
        return self.running_at - self.submitted_at

    def time_in_state(self, state: VMState) -> float:
        """Total simulated seconds spent in ``state`` so far."""
        total = 0.0
        for (t0, s0), (t1, _s1) in zip(self.state_history,
                                       self.state_history[1:]):
            if s0 is state:
                total += t1 - t0
        last_t, last_s = self.state_history[-1]
        if last_s is state:
            total += self.env.now - last_t
        return total

    def __repr__(self) -> str:
        return (f"<VM {self.vm_id} [{self.descriptor.component_id or '-'}] "
                f"{self.state.value}>")
