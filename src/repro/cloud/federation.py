"""Federation of sites.

"The key differentiator from other Cloud computing infrastructure is
RESERVOIR's ability to federate across different sites ... achieved by
cross-site interactions between multiple different VEEMs operating on behalf
of different Cloud computing providers. This supports replication of virtual
machines to other locations for example for business continuity purposes."
(§2). MDL5 requires service providers to "control the 'spread' of the
application by defining clear constraints on the distribution of services
across sites ... technical (e.g. deploy certain components on a same host) or
administrative (e.g. avoid un-trusted locations)".

A :class:`FederatedCloud` routes deployment requests to member sites subject
to per-component site constraints, and supports cross-site migration with a
WAN transfer cost (disk + memory move, unlike intra-site migration over
shared storage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import Environment, Process, TraceLog
from .errors import PlacementError
from .veem import VEEM
from .vm import DeploymentDescriptor, VirtualMachine, VMState

__all__ = ["Site", "SiteConstraint", "FederatedCloud"]


@dataclass
class Site:
    """One administrative domain: a VEEM plus site-level attributes."""

    name: str
    veem: VEEM
    attributes: dict = field(default_factory=dict)

    @property
    def trusted(self) -> bool:
        return bool(self.attributes.get("trusted", True))


@dataclass(frozen=True)
class SiteConstraint:
    """Per-component site admission rule (MDL5 administrative constraints).

    ``favour`` sites are preferred (tried first); ``avoid`` sites are hard
    exclusions; ``require_trusted`` excludes untrusted sites.
    """

    component: Optional[str] = None        # None = applies to every component
    favour: frozenset[str] = frozenset()
    avoid: frozenset[str] = frozenset()
    require_trusted: bool = False

    def applies_to(self, descriptor: DeploymentDescriptor) -> bool:
        return self.component is None or self.component == descriptor.component_id

    def admits(self, site: Site, descriptor: DeploymentDescriptor) -> bool:
        if not self.applies_to(descriptor):
            return True
        if site.name in self.avoid:
            return False
        if self.require_trusted and not site.trusted:
            return False
        return True

    def preference(self, site: Site, descriptor: DeploymentDescriptor) -> int:
        """Lower sorts earlier; favoured sites come first."""
        if self.applies_to(descriptor) and site.name in self.favour:
            return 0
        return 1


class FederatedCloud:
    """Routes deployments across federated sites."""

    def __init__(self, env: Environment, *,
                 wan_bandwidth_mb_per_s: float = 20.0,
                 trace: Optional[TraceLog] = None):
        if wan_bandwidth_mb_per_s <= 0:
            raise ValueError("WAN bandwidth must be positive")
        self.env = env
        self.wan_bandwidth_mb_per_s = float(wan_bandwidth_mb_per_s)
        self.trace = trace if trace is not None else TraceLog(env)
        self.sites: list[Site] = []
        self.constraints: list[SiteConstraint] = []
        self._vm_site: dict[str, Site] = {}

    # ------------------------------------------------------------------
    def add_site(self, site: Site) -> Site:
        if any(s.name == site.name for s in self.sites):
            raise ValueError(f"duplicate site name {site.name!r}")
        self.sites.append(site)
        return site

    def add_constraint(self, constraint: SiteConstraint) -> None:
        self.constraints.append(constraint)

    def site_of(self, vm: VirtualMachine) -> Site:
        try:
            return self._vm_site[vm.vm_id]
        except KeyError:
            raise PlacementError(
                f"VM {vm.vm_id} is not managed by this federation"
            ) from None

    # ------------------------------------------------------------------
    def eligible_sites(self, descriptor: DeploymentDescriptor) -> list[Site]:
        """Sites admitted by every constraint, favoured sites first."""
        admitted = [
            s for s in self.sites
            if all(c.admits(s, descriptor) for c in self.constraints)
        ]

        def rank(site: Site) -> tuple:
            prefs = [c.preference(site, descriptor) for c in self.constraints]
            return (min(prefs) if prefs else 1, self.sites.index(site))

        return sorted(admitted, key=rank)

    def submit(self, descriptor: DeploymentDescriptor) -> VirtualMachine:
        """Deploy on the first eligible site with capacity."""
        errors: list[str] = []
        for site in self.eligible_sites(descriptor):
            try:
                vm = site.veem.submit(descriptor)
            except PlacementError as exc:
                errors.append(f"{site.name}: {exc}")
                continue
            self._vm_site[vm.vm_id] = site
            self.trace.emit("federation", "vm.routed", vm=vm.vm_id,
                            site=site.name,
                            component=descriptor.component_id)
            return vm
        detail = "; ".join(errors) if errors else "no eligible site"
        raise PlacementError(
            f"federation: cannot place {descriptor.name!r} ({detail})"
        )

    def shutdown(self, vm: VirtualMachine) -> Process:
        return self.site_of(vm).veem.shutdown(vm)

    def migrate_cross_site(self, vm: VirtualMachine,
                           target_site: Site) -> Process:
        """Move a running VM to another site (business-continuity scenario).

        Cross-site moves pay WAN transfer of the full disk image plus memory;
        the VM is re-instantiated through the target VEEM.
        """
        if vm.state is not VMState.RUNNING:
            raise PlacementError(
                f"cannot migrate {vm.vm_id} in state {vm.state.value}"
            )
        source_site = self.site_of(vm)
        if target_site not in self.sites:
            raise PlacementError(f"unknown target site {target_site.name!r}")
        if source_site is target_site:
            raise PlacementError("cross-site migration within a single site")
        # Check target constraints still hold for this component.
        if not all(c.admits(target_site, vm.descriptor)
                   for c in self.constraints):
            raise PlacementError(
                f"site {target_site.name} excluded by constraints for "
                f"{vm.descriptor.component_id}"
            )
        return self.env.process(
            self._migrate_cross_site(vm, source_site, target_site),
            name=f"xmigrate:{vm.vm_id}",
        )

    def _migrate_cross_site(self, vm: VirtualMachine, source: Site,
                            target: Site):
        image = source.veem.repository.resolve_href(vm.descriptor.disk_source)
        transfer_mb = image.size_mb + vm.descriptor.memory_mb
        self.trace.emit("federation", "vm.xmigrate.start", vm=vm.vm_id,
                        from_site=source.name, to_site=target.name,
                        transfer_mb=transfer_mb)
        yield self.env.timeout(transfer_mb / self.wan_bandwidth_mb_per_s)
        # Stop at source, then redeploy at target with the same descriptor.
        yield source.veem.shutdown(vm)
        # The image must exist at the target repository too.
        if image.image_id not in target.veem.repository:
            target.veem.repository.register(image)
        new_vm = target.veem.submit(vm.descriptor)
        self._vm_site[new_vm.vm_id] = target
        yield new_vm.on_running
        self.trace.emit("federation", "vm.xmigrate.done", vm=vm.vm_id,
                        new_vm=new_vm.vm_id, site=target.name)
        return new_vm
