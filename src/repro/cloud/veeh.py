"""Virtual Execution Environment Hosts (VEEHs).

A VEEH is a physical server running a hypervisor. The evaluation testbed is
"a collection of six servers, each ... a Quad-Core AMD Opteron ... and 8 GBs
of RAM and with shared storage via NFS" (§6.1.2). A host models:

* capacity (CPU cores, memory) with strict admission control,
* an image cache — a cache miss pays the repository transfer time,
  a hit (pre-staged image) is free, matching the paper's mitigation note,
* hypervisor operation latencies (domain definition, boot, shutdown).

The host exposes *mechanism* only (reserve, stage, boot, stop); placement
*policy* lives in :mod:`repro.cloud.placement` and orchestration in the VEEM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Environment
from .errors import CapacityError
from .images import ImageRepository
from .vm import VirtualMachine, VMState

__all__ = ["HypervisorTimings", "Host"]


@dataclass(frozen=True)
class HypervisorTimings:
    """Latency model for hypervisor operations (seconds).

    Defaults approximate a Xen host of the paper's era: tens of seconds to
    boot a guest OS; domain definition and shutdown are cheap by comparison.
    """

    define_s: float = 2.0          # create the domain from the template
    boot_s: float = 45.0           # guest OS boot until userland is up
    shutdown_s: float = 10.0       # orderly guest shutdown
    migrate_suspend_s: float = 5.0  # suspend/resume cost on live migration
    suspend_s: float = 8.0         # write guest memory image to disk
    resume_s: float = 6.0          # restore guest memory image

    def __post_init__(self) -> None:
        for name in ("define_s", "boot_s", "shutdown_s", "migrate_suspend_s",
                     "suspend_s", "resume_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class Host:
    """One physical server managed by a VEEM."""

    def __init__(self, env: Environment, name: str, *,
                 cpu_cores: float = 4.0, memory_mb: float = 8192.0,
                 timings: Optional[HypervisorTimings] = None,
                 attributes: Optional[dict] = None):
        if cpu_cores <= 0 or memory_mb <= 0:
            raise ValueError(f"host {name!r}: capacity must be positive")
        self.env = env
        self.name = name
        self.cpu_cores = float(cpu_cores)
        self.memory_mb = float(memory_mb)
        self.timings = timings or HypervisorTimings()
        #: free-form attributes used by placement constraints (rack, zone...)
        self.attributes = dict(attributes or {})
        self.vms: list[VirtualMachine] = []
        self._image_cache: set[str] = set()
        self._cpu_used = 0.0
        self._mem_used = 0.0
        #: a failed host accepts no placements until recovered
        self.failed = False
        #: accounting hooks
        self.images_staged = 0
        self.cache_hits = 0

    # -- capacity ------------------------------------------------------------
    @property
    def cpu_free(self) -> float:
        return self.cpu_cores - self._cpu_used

    @property
    def memory_free(self) -> float:
        return self.memory_mb - self._mem_used

    def fits(self, cpu: float, memory_mb: float) -> bool:
        if self.failed:
            return False
        # Small epsilon so accumulated float error can't reject an exact fit.
        eps = 1e-9
        return cpu <= self.cpu_free + eps and memory_mb <= self.memory_free + eps

    def reserve(self, vm: VirtualMachine) -> None:
        """Admit ``vm``: reserve its descriptor's capacity on this host."""
        d = vm.descriptor
        if not self.fits(d.cpu, d.memory_mb):
            raise CapacityError(
                f"host {self.name}: cannot fit cpu={d.cpu} mem={d.memory_mb} "
                f"(free cpu={self.cpu_free:.2f} mem={self.memory_free:.0f})"
            )
        self._cpu_used += d.cpu
        self._mem_used += d.memory_mb
        self.vms.append(vm)
        vm.host = self

    def release(self, vm: VirtualMachine) -> None:
        # ``vm.host`` is maintained by reserve/release, so the identity check
        # replaces an O(fleet) list membership scan.
        if vm.host is not self:
            raise CapacityError(f"host {self.name}: VM {vm.vm_id} not placed here")
        d = vm.descriptor
        self._cpu_used -= d.cpu
        self._mem_used -= d.memory_mb
        # Guard against float drift taking usage slightly negative.
        self._cpu_used = max(self._cpu_used, 0.0)
        self._mem_used = max(self._mem_used, 0.0)
        self.vms.remove(vm)
        vm.host = None

    def resize(self, vm: VirtualMachine, *, cpu: Optional[float] = None,
               memory_mb: Optional[float] = None) -> None:
        """Adjust a placed VM's reservation (VEEM ``reconfigure`` support)."""
        if vm.host is not self:
            raise CapacityError(f"host {self.name}: VM {vm.vm_id} not placed here")
        d = vm.descriptor
        new_cpu = d.cpu if cpu is None else float(cpu)
        new_mem = d.memory_mb if memory_mb is None else float(memory_mb)
        if new_cpu <= 0 or new_mem <= 0:
            raise ValueError("resized capacity must be positive")
        dcpu, dmem = new_cpu - d.cpu, new_mem - d.memory_mb
        eps = 1e-9
        if dcpu > self.cpu_free + eps or dmem > self.memory_free + eps:
            raise CapacityError(
                f"host {self.name}: cannot grow VM {vm.vm_id} by "
                f"cpu={dcpu} mem={dmem}"
            )
        self._cpu_used += dcpu
        self._mem_used += dmem
        d.cpu, d.memory_mb = new_cpu, new_mem

    # -- image cache -----------------------------------------------------------
    def has_image(self, image_id: str) -> bool:
        return image_id in self._image_cache

    def prestage(self, image_id: str) -> None:
        """Mark an image as already present (ablation: avoid replication)."""
        self._image_cache.add(image_id)

    def stage_image(self, repo: ImageRepository, image_id: str,
                    cache: bool = False):
        """Process: make the base image available locally.

        Returns a generator to be driven by the caller (the VEEM deploy
        process). A cache hit completes immediately. By default each VM
        deployment pays the replication cost ("duplicating the disk image",
        §6.1.4) because the copy-on-deploy clone is per-VM; with ``cache=True``
        the transferred image stays resident for later deployments.
        """
        if image_id in self._image_cache:
            self.cache_hits += 1
            return
        duration = repo.record_transfer(image_id)
        self.images_staged += 1
        yield self.env.timeout(duration)
        if cache:
            self._image_cache.add(image_id)

    # -- failure injection -------------------------------------------------------
    def fail(self) -> list[VirtualMachine]:
        """Hardware failure: every resident VM dies; no new placements.

        Returns the casualties so the caller (VEEM) can notify watchers.
        Capacity is released — the dead VMs no longer occupy anything.
        """
        self.failed = True
        casualties = list(self.vms)
        for vm in casualties:
            if vm.is_active:
                vm.transition(VMState.FAILED)
            self._cpu_used -= vm.descriptor.cpu
            self._mem_used -= vm.descriptor.memory_mb
            vm.host = None
        self._cpu_used = max(self._cpu_used, 0.0)
        self._mem_used = max(self._mem_used, 0.0)
        self.vms.clear()
        return casualties

    def recover(self) -> None:
        """Bring a failed host back into service (empty, cold caches)."""
        self.failed = False
        self._image_cache.clear()

    # -- introspection ---------------------------------------------------------
    def vms_of_component(self, component_id: str) -> list[VirtualMachine]:
        return [vm for vm in self.vms
                if vm.descriptor.component_id == component_id]

    def __repr__(self) -> str:
        return (f"<Host {self.name} cpu {self._cpu_used:.1f}/{self.cpu_cores} "
                f"mem {self._mem_used:.0f}/{self.memory_mb:.0f} "
                f"vms={len(self.vms)}>")
