"""The Virtual Execution Environment Manager (VEEM).

"A VEEM controls the activation of virtualised operating systems, migration,
replication and de-activation. A VEEM typically controls multiple VEEHs
within one site." (§2). The reference implementation in the paper is
OpenNebula v1.2; the operation set modelled on it is the one elasticity-rule
actions invoke: "submission, shutdown, migration, reconfiguration, etc. of
VMs" (§4.2.1).

Deployment follows §5.1.1 steps 5–7: the VEEM receives a deployment
descriptor, selects a host per its placement policy (subject to the service's
constraints), stages the base disk, boots the VEE, and attaches the
customisation disk so the Activation Engine can configure the guest.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from ..sim import Environment, Event, Process, TraceLog
from .errors import LifecycleError, PlacementError
from .images import ImageRepository
from .network import NetworkFabric
from .placement import Placer
from .veeh import Host
from .vm import DeploymentDescriptor, VirtualMachine, VMState
from .vmtable import VMTable

__all__ = ["VEEM"]


class VEEM:
    """Manages the VEE lifecycle across the hosts of one site."""

    def __init__(self, env: Environment, *, name: str = "veem",
                 repository: Optional[ImageRepository] = None,
                 placer: Optional[Placer] = None,
                 trace: Optional[TraceLog] = None,
                 cache_images: bool = False):
        self.env = env
        self.name = name
        # Explicit None checks: an empty ImageRepository is falsy (__len__),
        # so `repository or ...` would silently discard a configured repo.
        self.repository = (repository if repository is not None
                           else ImageRepository())
        self.placer = placer if placer is not None else Placer()
        self.trace = trace if trace is not None else TraceLog(env)
        #: if True, a transferred image stays resident on the host and later
        #: deployments of the same image skip replication (ablation knob).
        self.cache_images = cache_images
        self.hosts: list[Host] = []
        self.networks = NetworkFabric()
        self._vm_seq = itertools.count(1)
        self.vms: dict[str, VirtualMachine] = {}
        #: struct-of-arrays fleet bookkeeping (cpu/memory/state columns
        #: keyed by dense VM index) — census and component scans read the
        #: columns instead of chasing VM objects
        self.table = VMTable()
        # Registry-owned operation counters (these paths are not hot — a VM
        # operation costs simulated seconds) plus views over the placer's
        # plain tallies.
        metrics = env.metrics
        self._m_submitted = metrics.counter("cloud.veem.submitted", site=name)
        self._m_refused = metrics.counter("cloud.veem.placement_refused",
                                          site=name)
        self._m_shutdowns = metrics.counter("cloud.veem.shutdowns", site=name)
        self._m_migrations = metrics.counter("cloud.veem.migrations",
                                             site=name)
        self._m_failures = metrics.counter("cloud.veem.vm_failures",
                                           site=name)
        self._m_provision = metrics.histogram("cloud.veem.provisioning_s",
                                              site=name)
        placer = self.placer
        metrics.register_view("cloud.placement.selections",
                              lambda: placer.selections, site=name)
        metrics.register_view("cloud.placement.capacity_failures",
                              lambda: placer.capacity_failures, site=name)
        metrics.register_view("cloud.placement.constraint_failures",
                              lambda: placer.constraint_failures, site=name)

    # ------------------------------------------------------------------
    # Site assembly
    # ------------------------------------------------------------------
    def add_host(self, host: Host) -> Host:
        if any(h.name == host.name for h in self.hosts):
            raise ValueError(f"duplicate host name {host.name!r}")
        self.hosts.append(host)
        return host

    def add_hosts(self, hosts: Sequence[Host]) -> None:
        for host in hosts:
            self.add_host(host)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_vms(self, *, service_id: Optional[str] = None,
                   component_id: Optional[str] = None
                   ) -> list[VirtualMachine]:
        return self.table.active_vms(service_id=service_id,
                                     component_id=component_id)

    def running_vms(self, *, service_id: Optional[str] = None,
                    component_id: Optional[str] = None
                    ) -> list[VirtualMachine]:
        return self.table.active_vms(service_id=service_id,
                                     component_id=component_id,
                                     running_only=True)

    @property
    def active_vm_count(self) -> int:
        """Live fleet size, O(1) off the table's incremental counter."""
        return self.table.active_count

    @property
    def total_capacity(self) -> tuple[float, float]:
        return (sum(h.cpu_cores for h in self.hosts),
                sum(h.memory_mb for h in self.hosts))

    # ------------------------------------------------------------------
    # Operations (the interface elasticity actions are expressed against)
    # ------------------------------------------------------------------
    def submit(self, descriptor: DeploymentDescriptor) -> VirtualMachine:
        """Accept a deployment descriptor and start the deployment process.

        Returns immediately with the new VM in PENDING state; callers wait on
        ``vm.on_running``. Placement happens synchronously so infeasible
        requests fail fast: :class:`CapacityError` when the site's capacity
        is exhausted (transient — clears when something undeploys), plain
        :class:`PlacementError` when a placement constraint excludes every
        host. Every scale path that ends in a submit (elasticity actions,
        ``ServiceLifecycleManager.scale_up``, federation routing) surfaces
        the same typed errors.
        """
        vm_id = f"{self.name}-vm{next(self._vm_seq)}"
        vm = VirtualMachine(self.env, vm_id, descriptor)
        # The deploy span covers submission → RUNNING; it nests under the
        # ambient span (a rule firing, a control-plane request) when one is
        # active, so the causal chain crosses the VEEM boundary.
        span = self.trace.span(self.name, "vm.deploy", vm=vm_id,
                               component=descriptor.component_id,
                               service=descriptor.service_id)
        try:
            host = self.placer.select(self.hosts, descriptor)  # may raise
            host.reserve(vm)
        except Exception:
            self._m_refused.inc()
            self.trace.close_span(span, "refused")
            raise
        vm.span = span
        span.details["host"] = host.name
        self._m_submitted.inc()
        self.vms[vm_id] = vm
        self.table.add(vm)
        self.trace.emit_in(span, self.name, "vm.submit", vm=vm_id,
                           component=descriptor.component_id,
                           service=descriptor.service_id, host=host.name)
        self.env.process(self._deploy(vm, host), name=f"deploy:{vm_id}")
        return vm

    def shutdown(self, vm: VirtualMachine) -> Process:
        """Orderly shutdown; returns the process to join on."""
        if vm.state is not VMState.RUNNING:
            raise LifecycleError(
                f"cannot shut down {vm.vm_id} in state {vm.state.value}"
            )
        span = self.trace.span(self.name, "vm.shutdown", vm=vm.vm_id,
                               component=vm.descriptor.component_id,
                               service=vm.descriptor.service_id)
        self.trace.emit_in(span, self.name, "vm.shutdown.request",
                           vm=vm.vm_id,
                           component=vm.descriptor.component_id,
                           service=vm.descriptor.service_id)
        self._m_shutdowns.inc()
        return self.env.process(self._shutdown(vm, span),
                                name=f"shutdown:{vm.vm_id}")

    def migrate(self, vm: VirtualMachine, target: Host) -> Process:
        """Migrate a running VM to another host of this site."""
        if vm.state is not VMState.RUNNING:
            raise LifecycleError(
                f"cannot migrate {vm.vm_id} in state {vm.state.value}"
            )
        if target not in self.hosts:
            raise PlacementError(f"host {target.name!r} not managed by {self.name}")
        if not target.fits(vm.descriptor.cpu, vm.descriptor.memory_mb):
            raise PlacementError(
                f"host {target.name} cannot fit {vm.vm_id} for migration"
            )
        span = self.trace.span(self.name, "vm.migrate", vm=vm.vm_id,
                               from_host=vm.host.name, to_host=target.name)
        self.trace.emit_in(span, self.name, "vm.migrate.request",
                           vm=vm.vm_id,
                           from_host=vm.host.name, to_host=target.name)
        self._m_migrations.inc()
        return self.env.process(self._migrate(vm, target, span),
                                name=f"migrate:{vm.vm_id}")

    def suspend(self, vm: VirtualMachine) -> Process:
        """Suspend a running VM to disk; its reservation is retained so it
        can be resumed on the same host without re-placement."""
        if vm.state is not VMState.RUNNING:
            raise LifecycleError(
                f"cannot suspend {vm.vm_id} in state {vm.state.value}"
            )
        self.trace.emit(self.name, "vm.suspend.request", vm=vm.vm_id)
        return self.env.process(self._suspend(vm), name=f"suspend:{vm.vm_id}")

    def resume(self, vm: VirtualMachine) -> Process:
        """Resume a suspended VM."""
        if vm.state is not VMState.SUSPENDED:
            raise LifecycleError(
                f"cannot resume {vm.vm_id} in state {vm.state.value}"
            )
        self.trace.emit(self.name, "vm.resume.request", vm=vm.vm_id)
        return self.env.process(self._resume_vm(vm),
                                name=f"resume:{vm.vm_id}")

    def reconfigure(self, vm: VirtualMachine, *, cpu: Optional[float] = None,
                    memory_mb: Optional[float] = None) -> None:
        """Resize a running VM's reservation in place."""
        if vm.state is not VMState.RUNNING:
            raise LifecycleError(
                f"cannot reconfigure {vm.vm_id} in state {vm.state.value}"
            )
        vm.host.resize(vm, cpu=cpu, memory_mb=memory_mb)
        self.trace.emit(self.name, "vm.reconfigure", vm=vm.vm_id,
                        cpu=vm.descriptor.cpu, memory_mb=vm.descriptor.memory_mb)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def inject_vm_failure(self, vm: VirtualMachine) -> None:
        """Crash one VM (guest kernel panic, OOM kill, ...)."""
        if not vm.is_active:
            raise LifecycleError(f"{vm.vm_id} is not active")
        host = vm.host
        if host is not None:
            host.release(vm)
        self.networks.release_all(vm.vm_id)
        vm.transition(VMState.FAILED)
        self._m_failures.inc()
        if vm.span is not None and not vm.span.closed:
            self.trace.close_span(vm.span, "failed")
        self.trace.emit(self.name, "vm.failed", vm=vm.vm_id,
                        component=vm.descriptor.component_id,
                        service=vm.descriptor.service_id,
                        host=host.name if host else None)

    def inject_host_failure(self, host: Host) -> list[VirtualMachine]:
        """Fail a whole host; every resident VM dies with it."""
        if host not in self.hosts:
            raise PlacementError(f"host {host.name!r} not managed by {self.name}")
        casualties = host.fail()
        for vm in casualties:
            self.networks.release_all(vm.vm_id)
            self._m_failures.inc()
            if vm.span is not None and not vm.span.closed:
                self.trace.close_span(vm.span, "failed")
            self.trace.emit(self.name, "vm.failed", vm=vm.vm_id,
                            component=vm.descriptor.component_id,
                            service=vm.descriptor.service_id,
                            host=host.name, cause="host-failure")
        self.trace.emit(self.name, "host.failed", host=host.name,
                        casualties=len(casualties))
        return casualties

    def preempt(self, count: int = 1, *,
                newest_first: bool = True) -> list[VirtualMachine]:
        """Spot-market reclamation: fail up to ``count`` active VMs.

        ``newest_first`` (the default) reclaims the most recently submitted
        instances first — the usual spot semantics, and the gentlest on
        long-running tenants. Returns the victims, preemption order.
        Deterministic: victims come from submission order, never from a
        clock or RNG.
        """
        if count < 0:
            raise ValueError("preempt count must be non-negative")
        active = [vm for vm in self.vms.values() if vm.is_active]
        if newest_first:
            active.reverse()
        victims = active[:count]
        for vm in victims:
            self.trace.emit(self.name, "vm.preempted", vm=vm.vm_id,
                            component=vm.descriptor.component_id,
                            service=vm.descriptor.service_id,
                            host=vm.host.name if vm.host else None)
            self.inject_vm_failure(vm)
        return victims

    def recover_host(self, host: Host) -> None:
        if host not in self.hosts:
            raise PlacementError(f"host {host.name!r} not managed by {self.name}")
        host.recover()
        self.trace.emit(self.name, "host.recovered", host=host.name)

    # ------------------------------------------------------------------
    # Lifecycle processes
    # ------------------------------------------------------------------
    def _deploy(self, vm: VirtualMachine, host: Host):
        d = vm.descriptor
        # Networks: lease an address on every declared logical network; the
        # leases go into the customisation (OVF environment) data so the
        # Activation Engine can configure the guest (§5.1.1 step 7).
        for net_name in d.networks:
            net = self.networks.ensure(net_name)
            vm.ip_addresses[net_name] = net.allocate(vm.vm_id)

        vm.transition(VMState.STAGING)
        image = self.repository.resolve_href(d.disk_source)
        yield self.env.process(
            host.stage_image(self.repository, image.image_id,
                             cache=self.cache_images),
            name=f"stage:{vm.vm_id}",
        )
        if not vm.is_active:
            return  # failure injected while the image was staging

        vm.transition(VMState.BOOTING)
        custom = dict(d.customisation)
        custom.update({f"ip.{k}": v for k, v in vm.ip_addresses.items()})
        vm.customisation_disk = self.repository.make_customisation_disk(custom)
        yield self.env.timeout(host.timings.define_s + host.timings.boot_s)
        if not vm.is_active:
            return  # failure injected while the guest was booting

        vm.transition(VMState.RUNNING)
        self._m_provision.observe(vm.provisioning_time)
        self.trace.emit_in(vm.span, self.name, "vm.running", vm=vm.vm_id,
                           component=d.component_id, service=d.service_id,
                           host=host.name,
                           provisioning_time=vm.provisioning_time)
        self.trace.close_span(vm.span, "ok",
                              provisioning_time=vm.provisioning_time)

    def _shutdown(self, vm: VirtualMachine, span=None):
        vm.transition(VMState.SHUTTING_DOWN)
        yield self.env.timeout(vm.host.timings.shutdown_s)
        if not vm.is_active:
            # Host crash / injected fault beat the shutdown to it: the
            # failure path already released capacity and networks, and
            # ``vm.host`` is gone.
            if span is not None and not span.closed:
                self.trace.close_span(span, "failed")
            return
        host = vm.host
        host.release(vm)
        self.networks.release_all(vm.vm_id)
        vm.transition(VMState.STOPPED)
        self.trace.emit(self.name, "vm.stopped", vm=vm.vm_id,
                        component=vm.descriptor.component_id,
                        service=vm.descriptor.service_id, host=host.name)
        if span is not None:
            self.trace.close_span(span, "ok")

    def _suspend(self, vm: VirtualMachine):
        yield self.env.timeout(vm.host.timings.suspend_s)
        if vm.state is VMState.RUNNING:  # not failed meanwhile
            vm.transition(VMState.SUSPENDED)
            self.trace.emit(self.name, "vm.suspended", vm=vm.vm_id)

    def _resume_vm(self, vm: VirtualMachine):
        yield self.env.timeout(vm.host.timings.resume_s)
        if vm.state is VMState.SUSPENDED:
            vm.transition(VMState.RUNNING)
            self.trace.emit(self.name, "vm.resumed", vm=vm.vm_id)

    def _migrate(self, vm: VirtualMachine, target: Host, span=None):
        source = vm.host
        vm.transition(VMState.MIGRATING)
        # Reserve on the target first so capacity can't be stolen mid-flight.
        source.release(vm)
        target.reserve(vm)
        # Memory-copy cost: shared NFS storage means the disk stays put; the
        # dominant cost is transferring guest memory plus suspend/resume.
        copy_time = vm.descriptor.memory_mb / self.repository.bandwidth_mb_per_s
        yield self.env.timeout(copy_time + target.timings.migrate_suspend_s)
        if not vm.is_active:
            # The VM (or its target host) failed mid-copy; the failure path
            # already reclaimed whatever capacity it held.
            if span is not None and not span.closed:
                self.trace.close_span(span, "failed")
            return
        vm.transition(VMState.RUNNING)
        self.trace.emit(self.name, "vm.migrated", vm=vm.vm_id,
                        from_host=source.name, to_host=target.name)
        if span is not None:
            self.trace.close_span(span, "ok")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def deploy_and_wait(self, descriptor: DeploymentDescriptor) -> Event:
        """Submit and return the VM's ``on_running`` event for joining."""
        return self.submit(descriptor).on_running

    def __repr__(self) -> str:
        return (f"<VEEM {self.name} hosts={len(self.hosts)} "
                f"active_vms={self.table.active_count}>")
