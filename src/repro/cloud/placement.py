"""Placement policies and placement constraints.

"While the VEEM allocates services according to a given placement policy, it
is the Service Manager that interfaces with the Service Provider and ensures
that requirements ... are correctly enforced" (§2). The paper's manifest adds
*placement and co-location constraints* "which identify sites that should be
favoured or avoided when selecting a location for a service" (§4.1 MDL5) and
host-level co-location (the SAP Central Instance and DBMS "need to be
co-located", §3).

This module separates:

* **policies** — how to rank feasible hosts (first-fit, best-fit, worst-fit,
  round-robin), and
* **constraints** — hard predicates a candidate host must satisfy
  (affinity/anti-affinity with other components of the same service,
  attribute requirements), applied before the policy ranks candidates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from .errors import CapacityError, PlacementError
from .veeh import Host
from .vm import DeploymentDescriptor

__all__ = [
    "PlacementConstraint",
    "Affinity",
    "AntiAffinity",
    "AttributeRequirement",
    "ComponentCap",
    "PlacementPolicy",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "RoundRobin",
    "Placer",
]


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------

class PlacementConstraint(abc.ABC):
    """A hard predicate on (host, descriptor) pairs."""

    @abc.abstractmethod
    def admits(self, host: Host, descriptor: DeploymentDescriptor,
               universe: Sequence[Host] = ()) -> bool:
        """True if ``host`` is acceptable for ``descriptor``.

        ``universe`` is the full candidate host list — constraints that need
        global knowledge (e.g. "where is the anchor component placed?") scan
        it; purely local constraints ignore it.
        """

    def describe(self) -> str:
        return type(self).__name__


def _same_service(host_vm_descriptor: DeploymentDescriptor,
                  descriptor: DeploymentDescriptor) -> bool:
    return (host_vm_descriptor.service_id == descriptor.service_id
            and descriptor.service_id is not None)


@dataclass(frozen=True)
class Affinity(PlacementConstraint):
    """``component`` must share a host with ``with_component`` of the same
    service — the SAP CI/DBMS co-location constraint.

    If no instance of ``with_component`` is placed anywhere yet, any host is
    admissible (the constraint binds the *second* component deployed).
    """

    component: str
    with_component: str

    def admits(self, host: Host, descriptor: DeploymentDescriptor,
               universe: Sequence[Host] = ()) -> bool:
        if descriptor.component_id != self.component:
            return True
        anchored_anywhere = any(
            _same_service(vm.descriptor, descriptor)
            and vm.descriptor.component_id == self.with_component
            for h in (universe or [host])
            for vm in h.vms
        )
        if not anchored_anywhere:
            return True
        return any(
            _same_service(vm.descriptor, descriptor)
            and vm.descriptor.component_id == self.with_component
            for vm in host.vms
        )

    def describe(self) -> str:
        return f"Affinity({self.component} with {self.with_component})"


@dataclass(frozen=True)
class AntiAffinity(PlacementConstraint):
    """``component`` must NOT share a host with ``avoid_component`` of the
    same service (e.g. replicas of a DBMS kept apart for availability)."""

    component: str
    avoid_component: str

    def admits(self, host: Host, descriptor: DeploymentDescriptor,
               universe: Sequence[Host] = ()) -> bool:
        if descriptor.component_id != self.component:
            return True
        return not any(
            _same_service(vm.descriptor, descriptor)
            and vm.descriptor.component_id == self.avoid_component
            for vm in host.vms
        )

    def describe(self) -> str:
        return f"AntiAffinity({self.component} avoids {self.avoid_component})"


@dataclass(frozen=True)
class AttributeRequirement(PlacementConstraint):
    """Host attribute must equal a required value (zone, trust level...)."""

    component: str
    attribute: str
    value: object

    def admits(self, host: Host, descriptor: DeploymentDescriptor,
               universe: Sequence[Host] = ()) -> bool:
        if descriptor.component_id != self.component:
            return True
        return host.attributes.get(self.attribute) == self.value

    def describe(self) -> str:
        return f"AttributeRequirement({self.component}: {self.attribute}={self.value})"


@dataclass(frozen=True)
class ComponentCap(PlacementConstraint):
    """At most ``cap`` instances of ``component`` per host.

    The evaluation caps Condor execution VEEs at 4 per physical host
    ("up to 4 Condor Execution components may be deployed on a single
    physical host", §6.1.2).
    """

    component: str
    cap: int

    def __post_init__(self) -> None:
        if self.cap <= 0:
            raise ValueError("cap must be positive")

    def admits(self, host: Host, descriptor: DeploymentDescriptor,
               universe: Sequence[Host] = ()) -> bool:
        if descriptor.component_id != self.component:
            return True
        existing = sum(
            1 for vm in host.vms
            if vm.descriptor.component_id == self.component
            and _same_service(vm.descriptor, descriptor)
        )
        return existing < self.cap

    def describe(self) -> str:
        return f"ComponentCap({self.component} ≤ {self.cap}/host)"


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

class PlacementPolicy(abc.ABC):
    """Ranks feasible hosts; the first of the ranking is chosen."""

    @abc.abstractmethod
    def order(self, hosts: Sequence[Host],
              descriptor: DeploymentDescriptor) -> list[Host]:
        """Return candidate hosts in preference order."""


class FirstFit(PlacementPolicy):
    """Take hosts in their configured order — OpenNebula's default rank."""

    def order(self, hosts, descriptor):
        return list(hosts)


class BestFit(PlacementPolicy):
    """Pack tightly: prefer the host with the least free memory that fits.

    Consolidation-friendly — leaves large holes for big VMs and empties
    hosts faster on scale-down.
    """

    def order(self, hosts, descriptor):
        return sorted(hosts, key=lambda h: (h.memory_free, h.cpu_free))


class WorstFit(PlacementPolicy):
    """Spread load: prefer the emptiest host (load balancing)."""

    def order(self, hosts, descriptor):
        return sorted(hosts, key=lambda h: (-h.memory_free, -h.cpu_free))


class RoundRobin(PlacementPolicy):
    """Rotate through hosts regardless of load."""

    def __init__(self) -> None:
        self._next = 0

    def order(self, hosts, descriptor):
        if not hosts:
            return []
        start = self._next % len(hosts)
        self._next += 1
        return list(hosts[start:]) + list(hosts[:start])


# ---------------------------------------------------------------------------
# Placer: constraints + policy + capacity check
# ---------------------------------------------------------------------------

@dataclass
class Placer:
    """Combines hard constraints with a ranking policy.

    Selection procedure: filter hosts by capacity fit and by every
    constraint, then take the policy's top-ranked survivor.
    """

    policy: PlacementPolicy = field(default_factory=FirstFit)
    constraints: list[PlacementConstraint] = field(default_factory=list)
    #: plain tallies (the placer has no environment of its own); the owning
    #: VEEM exposes them as ``cloud.placement.*`` registry views
    selections: int = 0
    capacity_failures: int = 0
    constraint_failures: int = 0

    def add_constraint(self, constraint: PlacementConstraint) -> None:
        self.constraints.append(constraint)

    def feasible(self, hosts: Sequence[Host],
                 descriptor: DeploymentDescriptor) -> list[Host]:
        return [
            h for h in hosts
            if h.fits(descriptor.cpu, descriptor.memory_mb)
            and all(c.admits(h, descriptor, hosts) for c in self.constraints)
        ]

    def select(self, hosts: Sequence[Host],
               descriptor: DeploymentDescriptor) -> Host:
        """Pick a host, distinguishing *why* selection fails.

        No host with enough free CPU/memory → :class:`CapacityError` (the
        pool is exhausted; a transient condition that clears when something
        undeploys). Hosts fit but every one is excluded by a constraint →
        plain :class:`PlacementError` (infeasible until the constraint set
        changes). CapacityError subclasses PlacementError, so callers that
        don't care about the distinction keep working.
        """
        cpu = descriptor.cpu
        mem = descriptor.memory_mb
        if descriptor.placement:
            pin = descriptor.placement.get("host")
            if pin is not None:
                return self._select_pinned(hosts, descriptor, pin)
        if not self.constraints and type(self.policy) is FirstFit:
            # Hot path for the default placer: first-fit with no constraints
            # needs only the first fitting host — skip materialising the
            # fitting/candidate lists and the identity re-ranking.
            for h in hosts:
                if h.fits(cpu, mem):
                    self.selections += 1
                    return h
            self.capacity_failures += 1
            raise CapacityError(
                f"no feasible host for {descriptor.name!r}: pool capacity "
                f"exhausted (cpu={cpu}, "
                f"mem={mem}MB, {len(hosts)} host(s))"
            )
        fitting = [h for h in hosts if h.fits(cpu, mem)]
        if not fitting:
            self.capacity_failures += 1
            raise CapacityError(
                f"no feasible host for {descriptor.name!r}: pool capacity "
                f"exhausted (cpu={descriptor.cpu}, "
                f"mem={descriptor.memory_mb}MB, {len(hosts)} host(s))"
            )
        candidates = [
            h for h in fitting
            if all(c.admits(h, descriptor, hosts) for c in self.constraints)
        ]
        if not candidates:
            self.constraint_failures += 1
            raise PlacementError(
                f"no feasible host for {descriptor.name!r} "
                f"(cpu={descriptor.cpu}, mem={descriptor.memory_mb}MB, "
                f"constraints=[{', '.join(c.describe() for c in self.constraints)}])"
            )
        ranked = self.policy.order(candidates, descriptor)
        self.selections += 1
        return ranked[0]

    def _select_pinned(self, hosts: Sequence[Host],
                       descriptor: DeploymentDescriptor, pin: str) -> Host:
        """Honour ``descriptor.placement["host"]`` — a solver-computed plan.

        The pinning caller owns constraint validation (the solver checked
        the whole joint assignment); only the capacity fit is re-checked
        here, because the world may have moved since the plan was built.
        """
        for h in hosts:
            if h.name == pin:
                if h.fits(descriptor.cpu, descriptor.memory_mb):
                    self.selections += 1
                    return h
                self.capacity_failures += 1
                raise CapacityError(
                    f"pinned host {pin!r} cannot fit {descriptor.name!r} "
                    f"(cpu={descriptor.cpu}, mem={descriptor.memory_mb}MB)"
                )
        raise PlacementError(
            f"pinned host {pin!r} for {descriptor.name!r} is not in the "
            f"pool ({len(hosts)} host(s))"
        )
