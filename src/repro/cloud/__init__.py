"""Virtual-infrastructure substrate: VEEH hosts, VEEM manager, federation.

The bottom two layers of the RESERVOIR architecture (Fig. 1 of the paper),
simulated: hosts with hypervisor latencies and image caches
(:mod:`~repro.cloud.veeh`), VM lifecycle (:mod:`~repro.cloud.vm`), images
(:mod:`~repro.cloud.images`), virtual networks (:mod:`~repro.cloud.network`),
placement policies and constraints (:mod:`~repro.cloud.placement`), the VEEM
(:mod:`~repro.cloud.veem`) and cross-site federation
(:mod:`~repro.cloud.federation`).
"""

from .capacity import (
    AdmissionController,
    CapacityPlan,
    DemandEnvelope,
    HostType,
    InstanceDemand,
    demand_envelope,
    plan_capacity,
)
from .errors import (
    CapacityError,
    CloudError,
    ImageError,
    LifecycleError,
    NetworkError,
    PlacementError,
)
from .federation import FederatedCloud, Site, SiteConstraint
from .images import CustomisationDisk, DiskImage, ImageRepository
from .network import NetworkFabric, VirtualNetwork
from .placement import (
    Affinity,
    AntiAffinity,
    AttributeRequirement,
    BestFit,
    ComponentCap,
    FirstFit,
    Placer,
    PlacementConstraint,
    PlacementPolicy,
    RoundRobin,
    WorstFit,
)
from .veeh import Host, HypervisorTimings
from .veem import VEEM
from .vm import DeploymentDescriptor, VirtualMachine, VMState

__all__ = [
    "AdmissionController",
    "CapacityPlan",
    "DemandEnvelope",
    "HostType",
    "InstanceDemand",
    "demand_envelope",
    "plan_capacity",
    "CapacityError",
    "CloudError",
    "ImageError",
    "LifecycleError",
    "NetworkError",
    "PlacementError",
    "FederatedCloud",
    "Site",
    "SiteConstraint",
    "CustomisationDisk",
    "DiskImage",
    "ImageRepository",
    "NetworkFabric",
    "VirtualNetwork",
    "Affinity",
    "AntiAffinity",
    "AttributeRequirement",
    "BestFit",
    "ComponentCap",
    "FirstFit",
    "Placer",
    "PlacementConstraint",
    "PlacementPolicy",
    "RoundRobin",
    "WorstFit",
    "Host",
    "HypervisorTimings",
    "VEEM",
    "DeploymentDescriptor",
    "VirtualMachine",
    "VMState",
]
