"""Provider-side capacity planning and admission control.

§8: "the Cloud provider can plan its capacity more accurately because it
knows the resource demands of the applications it provides" — the manifest's
elastic bounds make every service's demand envelope explicit: at least
``minimum`` and at most ``maximum`` instances of each component, each with
declared CPU/memory. This module turns a set of manifests into host counts:

* :func:`demand_envelope` — per-component floor/ceiling resource demand;
* :func:`plan_capacity` — first-fit-decreasing packing of the worst case
  (and the floor) onto a homogeneous host type, honouring per-host caps;
* :class:`AdmissionController` — accept a new manifest only if the pool can
  still host every admitted service's *worst case* simultaneously
  (guaranteed-capacity admission, the conservative policy a provider who
  sells firm elasticity bounds must run).
"""

from __future__ import annotations

import weakref
from array import array
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..core.manifest.model import ServiceManifest
from .errors import CapacityError

__all__ = ["InstanceDemand", "DemandEnvelope", "demand_envelope",
           "HostType", "CapacityPlan", "plan_capacity",
           "AdmissionController"]


@dataclass(frozen=True)
class InstanceDemand:
    """One instance's resource demand plus its packing constraints."""

    component: str
    cpu: float
    memory_mb: float
    per_host_cap: Optional[int] = None


@dataclass(frozen=True)
class DemandEnvelope:
    """A service's floor (all minimums) and ceiling (all maximums)."""

    service_name: str
    floor: tuple[InstanceDemand, ...]
    ceiling: tuple[InstanceDemand, ...]

    def totals(self, which: str = "ceiling") -> tuple[float, float]:
        instances = self.ceiling if which == "ceiling" else self.floor
        return (sum(d.cpu for d in instances),
                sum(d.memory_mb for d in instances))


#: Identity-keyed envelope memo. Envelope expansion walks every virtual
#: system of the manifest and allocates the instance tuples; the admission
#: paths recompute it for the *same* manifest object thousands of times per
#: simulated minute at federation scale. Manifests are treated as immutable
#: once built (the builder returns a fresh model), so identity is a sound
#: cache key; entries evict when the manifest is collected.
_envelope_cache: dict[int, tuple[weakref.ref, "DemandEnvelope"]] = {}


def demand_envelope(manifest: ServiceManifest) -> DemandEnvelope:
    """Expand a manifest's elastic bounds into instance lists (memoised by
    manifest identity — manifests are immutable once built)."""
    key = id(manifest)
    hit = _envelope_cache.get(key)
    if hit is not None and hit[0]() is manifest:
        return hit[1]
    envelope = _expand_envelope(manifest)
    try:
        ref = weakref.ref(
            manifest, lambda _r, _k=key: _envelope_cache.pop(_k, None))
    except TypeError:       # unweakreffable manifest stand-in: skip caching
        return envelope
    _envelope_cache[key] = (ref, envelope)
    return envelope


def _expand_envelope(manifest: ServiceManifest) -> DemandEnvelope:
    caps = dict(manifest.placement.per_host_caps)
    floor: list[InstanceDemand] = []
    ceiling: list[InstanceDemand] = []
    for system in manifest.virtual_systems:
        demand = InstanceDemand(
            component=system.system_id,
            cpu=system.hardware.cpu,
            memory_mb=system.hardware.memory_mb,
            per_host_cap=caps.get(system.system_id),
        )
        floor.extend([demand] * system.instances.minimum)
        ceiling.extend([demand] * system.instances.maximum)
    return DemandEnvelope(
        service_name=manifest.service_name,
        floor=tuple(floor), ceiling=tuple(ceiling),
    )


@dataclass(frozen=True)
class HostType:
    """The homogeneous server the pool is built from (the §6.1.2 testbed's
    quad-core/8 GB Opteron by default)."""

    cpu_cores: float = 4.0
    memory_mb: float = 8192.0

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0 or self.memory_mb <= 0:
            raise ValueError("host capacity must be positive")


@dataclass
class _Bin:
    cpu_free: float
    mem_free: float
    per_component: dict[str, int] = field(default_factory=dict)

    def fits(self, d: InstanceDemand) -> bool:
        if d.cpu > self.cpu_free + 1e-9 or d.memory_mb > self.mem_free + 1e-9:
            return False
        if d.per_host_cap is not None:
            if self.per_component.get(d.component, 0) >= d.per_host_cap:
                return False
        return True

    def place(self, d: InstanceDemand) -> None:
        self.cpu_free -= d.cpu
        self.mem_free -= d.memory_mb
        self.per_component[d.component] = \
            self.per_component.get(d.component, 0) + 1


def _pack(instances: list[InstanceDemand], host: HostType) -> int:
    """First-fit-decreasing by memory; returns hosts used."""
    for d in instances:
        if d.cpu > host.cpu_cores or d.memory_mb > host.memory_mb:
            raise CapacityError(
                f"instance of {d.component!r} (cpu={d.cpu}, "
                f"mem={d.memory_mb}) exceeds the host type"
            )
    bins: list[_Bin] = []
    for d in sorted(instances, key=lambda d: (-d.memory_mb, -d.cpu)):
        target = next((b for b in bins if b.fits(d)), None)
        if target is None:
            target = _Bin(host.cpu_cores, host.memory_mb)
            bins.append(target)
        target.place(d)
    return len(bins)


@dataclass(frozen=True)
class CapacityPlan:
    """Host counts for a workload mix on one host type."""

    host: HostType
    hosts_for_floor: int
    hosts_for_ceiling: int
    floor_cpu: float
    floor_memory_mb: float
    ceiling_cpu: float
    ceiling_memory_mb: float

    @property
    def elasticity_headroom(self) -> int:
        """Extra hosts needed only when every service peaks at once."""
        return self.hosts_for_ceiling - self.hosts_for_floor

    def summary(self) -> str:
        return (f"floor: {self.hosts_for_floor} host(s) "
                f"({self.floor_cpu:.0f} cores / "
                f"{self.floor_memory_mb / 1024:.0f} GB); "
                f"ceiling: {self.hosts_for_ceiling} host(s) "
                f"({self.ceiling_cpu:.0f} cores / "
                f"{self.ceiling_memory_mb / 1024:.0f} GB); "
                f"headroom: {self.elasticity_headroom} host(s)")


def plan_capacity(manifests: list[ServiceManifest],
                  host: Optional[HostType] = None) -> CapacityPlan:
    """Hosts needed to carry all services' floors and (worst-case) ceilings."""
    host = host or HostType()
    envelopes = [demand_envelope(m) for m in manifests]
    floor = [d for e in envelopes for d in e.floor]
    ceiling = [d for e in envelopes for d in e.ceiling]
    return CapacityPlan(
        host=host,
        hosts_for_floor=_pack(floor, host) if floor else 0,
        hosts_for_ceiling=_pack(ceiling, host) if ceiling else 0,
        floor_cpu=sum(d.cpu for d in floor),
        floor_memory_mb=sum(d.memory_mb for d in floor),
        ceiling_cpu=sum(d.cpu for d in ceiling),
        ceiling_memory_mb=sum(d.memory_mb for d in ceiling),
    )


def _ffd_key(d: InstanceDemand) -> tuple[float, float]:
    """First-fit-decreasing sort key (by memory, then CPU, descending)."""
    return (-d.memory_mb, -d.cpu)


def _pack_rows(rows: Iterable[tuple[float, float, int, str]],
               host: HostType, limit: Optional[int] = None,
               track_counts: bool = True) -> int:
    """First-fit-decreasing over pre-sorted ``(cpu, mem, cap, component)``
    rows, bins as parallel free-capacity lists; returns bins used.

    Verdict-identical to :func:`_pack` on the same row order (the
    Hypothesis differential suite holds the two together), with two wins
    the object packer can't have:

    * **struct-of-arrays bins** — the inner first-fit scan compares floats
      in two lists instead of loading ``_Bin`` attributes; per-bin
      component tallies are only kept when a per-host cap is present;
    * **monotone skip-start** — bins never regain capacity (or shed
      component count) during one pack, so a bin that rejected a demand
      rejects every identical later demand; the scan for each distinct
      ``(component, cpu, mem, cap)`` resumes where its last identical row
      was placed, collapsing the quadratic bin scan of homogeneous fleets
      to a linear pass.

    ``limit`` is an early exit for admission verdicts: once more than
    ``limit`` bins are open the caller's answer is already "no", so the
    pack stops and returns ``limit + 1``.

    ``track_counts=False`` skips per-bin component tallies entirely. The
    object packer counts *every* placed instance (capped or not — and
    same-named components of different services share a bin's tally), so
    this is only sound when the caller knows **no row in the whole pack**
    carries a cap; :class:`_DemandTable` tracks exactly that.
    """
    host_cpu = host.cpu_cores
    host_mem = host.memory_mb
    eps = 1e-9
    bins_cpu: list[float] = []
    bins_mem: list[float] = []
    bins_count: list[dict[str, int]] = []
    starts: dict[tuple, int] = {}
    for cpu, mem, cap, comp in rows:
        if cpu > host_cpu or mem > host_mem:
            raise CapacityError(
                f"instance of {comp!r} (cpu={cpu}, mem={mem}) exceeds "
                f"the host type"
            )
        key = (comp, cpu, mem, cap)
        i = starts.get(key, 0)
        n = len(bins_cpu)
        placed = -1
        if cap < 0:
            while i < n:
                if cpu <= bins_cpu[i] + eps and mem <= bins_mem[i] + eps:
                    placed = i
                    break
                i += 1
        else:
            while i < n:
                if (cpu <= bins_cpu[i] + eps and mem <= bins_mem[i] + eps
                        and bins_count[i].get(comp, 0) < cap):
                    placed = i
                    break
                i += 1
        if placed < 0:
            if limit is not None and n >= limit:
                return n + 1
            bins_cpu.append(host_cpu - cpu)
            bins_mem.append(host_mem - mem)
            if track_counts:
                bins_count.append({comp: 1})
            starts[key] = n
        else:
            bins_cpu[placed] -= cpu
            bins_mem[placed] -= mem
            if track_counts:
                counts = bins_count[placed]
                counts[comp] = counts.get(comp, 0) + 1
            starts[key] = placed
    return len(bins_cpu)


class _DemandTable:
    """Struct-of-arrays table of committed instance demands, maintained in
    first-fit-decreasing order.

    Columns (parallel, keyed by dense row index): ``cpu``/``mem`` as
    ``array('d')``, per-host cap as ``array('l')`` (``-1`` = uncapped),
    component name and owner token as lists. New demands bisect into FFD
    position (equal keys land *after* existing rows), so the table's row
    order is exactly what ``sorted(admitted-expansion, key=FFD)`` would
    produce — :func:`_pack_rows` over it matches :func:`_pack` bin for bin.
    """

    __slots__ = ("cpu", "mem", "cap", "comp", "owner", "keys",
                 "total_cpu", "total_mem", "capped_rows")

    def __init__(self) -> None:
        self.cpu = array("d")
        self.mem = array("d")
        self.cap = array("l")
        self.comp: list[str] = []
        self.owner: list[int] = []
        #: FFD sort keys, kept parallel for the bisect
        self.keys: list[tuple[float, float]] = []
        self.total_cpu = 0.0
        self.total_mem = 0.0
        #: rows carrying a per-host cap — when zero (the common fleet),
        #: packs over this table can skip per-bin component tallies
        self.capped_rows = 0

    def __len__(self) -> int:
        return len(self.cpu)

    def insert(self, token: int, demands: tuple[InstanceDemand, ...]) -> None:
        for d in sorted(demands, key=_ffd_key):
            key = _ffd_key(d)
            pos = bisect_right(self.keys, key)
            self.keys.insert(pos, key)
            self.cpu.insert(pos, d.cpu)
            self.mem.insert(pos, d.memory_mb)
            self.cap.insert(pos, -1 if d.per_host_cap is None
                            else d.per_host_cap)
            self.comp.insert(pos, d.component)
            self.owner.insert(pos, token)
            self.total_cpu += d.cpu
            self.total_mem += d.memory_mb
            if d.per_host_cap is not None:
                self.capped_rows += 1

    def remove(self, token: int) -> None:
        keep = [i for i, t in enumerate(self.owner) if t != token]
        if len(keep) == len(self.owner):
            return
        for i, t in enumerate(self.owner):
            if t == token:
                self.total_cpu -= self.cpu[i]
                self.total_mem -= self.mem[i]
                if self.cap[i] >= 0:
                    self.capped_rows -= 1
        self.cpu = array("d", (self.cpu[i] for i in keep))
        self.mem = array("d", (self.mem[i] for i in keep))
        self.cap = array("l", (self.cap[i] for i in keep))
        self.comp = [self.comp[i] for i in keep]
        self.owner = [self.owner[i] for i in keep]
        self.keys = [self.keys[i] for i in keep]

    def rows(self) -> Iterator[tuple[float, float, int, str]]:
        return zip(self.cpu, self.mem, self.cap, self.comp)

    def rows_with(self, demands: tuple[InstanceDemand, ...]
                  ) -> Iterator[tuple[float, float, int, str]]:
        """Rows merged with a candidate's demands, preserving FFD order
        (candidate rows after equal-key committed rows — exactly where a
        repack of ``admitted + [candidate]`` would stable-sort them)."""
        extra = sorted(demands, key=_ffd_key)
        keys = self.keys
        table_rows = self.rows()
        i, n = 0, len(keys)
        for d in extra:
            key = _ffd_key(d)
            while i < n and keys[i] <= key:
                yield next(table_rows)
                i += 1
            yield (d.cpu, d.memory_mb,
                   -1 if d.per_host_cap is None else d.per_host_cap,
                   d.component)
        yield from table_rows


class AdmissionController:
    """Guaranteed-capacity admission: every admitted service must be able to
    reach its maximum instances simultaneously on the pool.

    Admission decisions are exact first-fit-decreasing repacks of everything
    admitted plus the candidate, but the scale harness asks thousands of
    times per simulated minute, so the committed demand lives in two
    struct-of-arrays :class:`_DemandTable` s (floor and ceiling) kept in
    FFD order incrementally — a verdict is one :func:`_pack_rows` pass over
    dense float columns with no re-expansion, no re-sort and no
    ``InstanceDemand`` object churn. Three caches sit in front of the pack
    — none of them changes a single verdict:

    * aggregate ceiling totals give an O(1) *necessary* screen — if total
      demand exceeds the pool's raw capacity, no packing can fit and the
      pack is skipped (and the pack itself exits early once the verdict
      can no longer be "yes");
    * the last ``can_admit`` verdict is memoised by manifest identity and a
      mutation version, collapsing the ``can_admit`` → ``admit`` double
      pack and the control plane's repeated probes of a saturated pool;
    * :attr:`committed_plan` (and so :attr:`headroom`, the federated
      ranking key read per submission per site) is cached until the
      admitted set changes.
    """

    def __init__(self, pool_hosts: int, host: Optional[HostType] = None):
        if pool_hosts <= 0:
            raise ValueError("pool must have at least one host")
        self.pool_hosts = pool_hosts
        self.host = host or HostType()
        self.admitted: list[ServiceManifest] = []
        #: Bumped on every admit/release; guards all caches below.
        self._version = 0
        self._floor = _DemandTable()
        self._ceiling = _DemandTable()
        self._tokens: list[int] = []
        self._next_token = 0
        self._committed: Optional[tuple[int, CapacityPlan]] = None
        self._last_check: Optional[tuple[ServiceManifest, int, bool]] = None

    def can_admit(self, manifest: ServiceManifest) -> bool:
        memo = self._last_check
        if (memo is not None and memo[0] is manifest
                and memo[1] == self._version):
            return memo[2]
        envelope = demand_envelope(manifest)
        cpu, mem = envelope.totals("ceiling")
        if (self._ceiling.total_mem + mem
                > self.host.memory_mb * self.pool_hosts + 1e-6
                or self._ceiling.total_cpu + cpu
                > self.host.cpu_cores * self.pool_hosts + 1e-6):
            # Aggregate demand alone overflows the pool: no packing exists.
            verdict = False
        else:
            track = (self._ceiling.capped_rows > 0
                     or any(d.per_host_cap is not None
                            for d in envelope.ceiling))
            hosts = _pack_rows(self._ceiling.rows_with(envelope.ceiling),
                               self.host, limit=self.pool_hosts,
                               track_counts=track)
            verdict = hosts <= self.pool_hosts
        self._last_check = (manifest, self._version, verdict)
        return verdict

    def admit(self, manifest: ServiceManifest) -> None:
        if not self.can_admit(manifest):
            raise CapacityError(
                f"cannot admit {manifest.service_name!r}: worst-case demand "
                f"exceeds the {self.pool_hosts}-host pool"
            )
        envelope = demand_envelope(manifest)
        token = self._next_token
        self._next_token += 1
        self.admitted.append(manifest)
        self._tokens.append(token)
        self._floor.insert(token, envelope.floor)
        self._ceiling.insert(token, envelope.ceiling)
        self._version += 1

    def release(self, manifest: ServiceManifest) -> None:
        # Same semantics as ``list.remove``: drop the first admitted entry
        # that compares equal (equal manifests have equal envelopes, so
        # releasing any one of them frees identical rows).
        index = self.admitted.index(manifest)
        del self.admitted[index]
        token = self._tokens.pop(index)
        self._floor.remove(token)
        self._ceiling.remove(token)
        self._version += 1

    def probe(self, manifest: ServiceManifest) -> int:
        """Hosts the committed worst case plus this manifest would need.

        Pure what-if: a full FFD pack with no pool limit and no caches
        touched — nothing about the controller (or its memos) changes, so
        federation-wide probes are observably side-effect free.
        """
        envelope = demand_envelope(manifest)
        track = (self._ceiling.capped_rows > 0
                 or any(d.per_host_cap is not None
                        for d in envelope.ceiling))
        return _pack_rows(self._ceiling.rows_with(envelope.ceiling),
                          self.host, track_counts=track)

    def committed_rows(self) -> list[tuple[int, str, float, float,
                                           Optional[int]]]:
        """The committed ceiling as ``(owner_token, component, cpu,
        memory_mb, per_host_cap)`` rows in FFD order — the admission side
        of the constraint-model encoding (``repro.solver.encode``)."""
        t = self._ceiling
        return [(t.owner[i], t.comp[i], t.cpu[i], t.mem[i],
                 None if t.cap[i] < 0 else int(t.cap[i]))
                for i in range(len(t))]

    @property
    def committed_plan(self) -> CapacityPlan:
        cached = self._committed
        if cached is not None and cached[0] == self._version:
            return cached[1]
        plan = CapacityPlan(
            host=self.host,
            hosts_for_floor=_pack_rows(
                self._floor.rows(), self.host,
                track_counts=self._floor.capped_rows > 0),
            hosts_for_ceiling=_pack_rows(
                self._ceiling.rows(), self.host,
                track_counts=self._ceiling.capped_rows > 0),
            floor_cpu=self._floor.total_cpu,
            floor_memory_mb=self._floor.total_mem,
            ceiling_cpu=self._ceiling.total_cpu,
            ceiling_memory_mb=self._ceiling.total_mem,
        )
        self._committed = (self._version, plan)
        return plan

    @property
    def headroom(self) -> int:
        """Hosts still unreserved at the committed worst case — the ranking
        key the control plane's federated site selection spreads load by."""
        return self.pool_hosts - self.committed_plan.hosts_for_ceiling
