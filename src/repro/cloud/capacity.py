"""Provider-side capacity planning and admission control.

§8: "the Cloud provider can plan its capacity more accurately because it
knows the resource demands of the applications it provides" — the manifest's
elastic bounds make every service's demand envelope explicit: at least
``minimum`` and at most ``maximum`` instances of each component, each with
declared CPU/memory. This module turns a set of manifests into host counts:

* :func:`demand_envelope` — per-component floor/ceiling resource demand;
* :func:`plan_capacity` — first-fit-decreasing packing of the worst case
  (and the floor) onto a homogeneous host type, honouring per-host caps;
* :class:`AdmissionController` — accept a new manifest only if the pool can
  still host every admitted service's *worst case* simultaneously
  (guaranteed-capacity admission, the conservative policy a provider who
  sells firm elasticity bounds must run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.manifest.model import ServiceManifest
from .errors import CapacityError

__all__ = ["InstanceDemand", "DemandEnvelope", "demand_envelope",
           "HostType", "CapacityPlan", "plan_capacity",
           "AdmissionController"]


@dataclass(frozen=True)
class InstanceDemand:
    """One instance's resource demand plus its packing constraints."""

    component: str
    cpu: float
    memory_mb: float
    per_host_cap: Optional[int] = None


@dataclass(frozen=True)
class DemandEnvelope:
    """A service's floor (all minimums) and ceiling (all maximums)."""

    service_name: str
    floor: tuple[InstanceDemand, ...]
    ceiling: tuple[InstanceDemand, ...]

    def totals(self, which: str = "ceiling") -> tuple[float, float]:
        instances = self.ceiling if which == "ceiling" else self.floor
        return (sum(d.cpu for d in instances),
                sum(d.memory_mb for d in instances))


def demand_envelope(manifest: ServiceManifest) -> DemandEnvelope:
    """Expand a manifest's elastic bounds into instance lists."""
    caps = dict(manifest.placement.per_host_caps)
    floor: list[InstanceDemand] = []
    ceiling: list[InstanceDemand] = []
    for system in manifest.virtual_systems:
        demand = InstanceDemand(
            component=system.system_id,
            cpu=system.hardware.cpu,
            memory_mb=system.hardware.memory_mb,
            per_host_cap=caps.get(system.system_id),
        )
        floor.extend([demand] * system.instances.minimum)
        ceiling.extend([demand] * system.instances.maximum)
    return DemandEnvelope(
        service_name=manifest.service_name,
        floor=tuple(floor), ceiling=tuple(ceiling),
    )


@dataclass(frozen=True)
class HostType:
    """The homogeneous server the pool is built from (the §6.1.2 testbed's
    quad-core/8 GB Opteron by default)."""

    cpu_cores: float = 4.0
    memory_mb: float = 8192.0

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0 or self.memory_mb <= 0:
            raise ValueError("host capacity must be positive")


@dataclass
class _Bin:
    cpu_free: float
    mem_free: float
    per_component: dict[str, int] = field(default_factory=dict)

    def fits(self, d: InstanceDemand) -> bool:
        if d.cpu > self.cpu_free + 1e-9 or d.memory_mb > self.mem_free + 1e-9:
            return False
        if d.per_host_cap is not None:
            if self.per_component.get(d.component, 0) >= d.per_host_cap:
                return False
        return True

    def place(self, d: InstanceDemand) -> None:
        self.cpu_free -= d.cpu
        self.mem_free -= d.memory_mb
        self.per_component[d.component] = \
            self.per_component.get(d.component, 0) + 1


def _pack(instances: list[InstanceDemand], host: HostType) -> int:
    """First-fit-decreasing by memory; returns hosts used."""
    for d in instances:
        if d.cpu > host.cpu_cores or d.memory_mb > host.memory_mb:
            raise CapacityError(
                f"instance of {d.component!r} (cpu={d.cpu}, "
                f"mem={d.memory_mb}) exceeds the host type"
            )
    bins: list[_Bin] = []
    for d in sorted(instances, key=lambda d: (-d.memory_mb, -d.cpu)):
        target = next((b for b in bins if b.fits(d)), None)
        if target is None:
            target = _Bin(host.cpu_cores, host.memory_mb)
            bins.append(target)
        target.place(d)
    return len(bins)


@dataclass(frozen=True)
class CapacityPlan:
    """Host counts for a workload mix on one host type."""

    host: HostType
    hosts_for_floor: int
    hosts_for_ceiling: int
    floor_cpu: float
    floor_memory_mb: float
    ceiling_cpu: float
    ceiling_memory_mb: float

    @property
    def elasticity_headroom(self) -> int:
        """Extra hosts needed only when every service peaks at once."""
        return self.hosts_for_ceiling - self.hosts_for_floor

    def summary(self) -> str:
        return (f"floor: {self.hosts_for_floor} host(s) "
                f"({self.floor_cpu:.0f} cores / "
                f"{self.floor_memory_mb / 1024:.0f} GB); "
                f"ceiling: {self.hosts_for_ceiling} host(s) "
                f"({self.ceiling_cpu:.0f} cores / "
                f"{self.ceiling_memory_mb / 1024:.0f} GB); "
                f"headroom: {self.elasticity_headroom} host(s)")


def plan_capacity(manifests: list[ServiceManifest],
                  host: Optional[HostType] = None) -> CapacityPlan:
    """Hosts needed to carry all services' floors and (worst-case) ceilings."""
    host = host or HostType()
    envelopes = [demand_envelope(m) for m in manifests]
    floor = [d for e in envelopes for d in e.floor]
    ceiling = [d for e in envelopes for d in e.ceiling]
    return CapacityPlan(
        host=host,
        hosts_for_floor=_pack(floor, host) if floor else 0,
        hosts_for_ceiling=_pack(ceiling, host) if ceiling else 0,
        floor_cpu=sum(d.cpu for d in floor),
        floor_memory_mb=sum(d.memory_mb for d in floor),
        ceiling_cpu=sum(d.cpu for d in ceiling),
        ceiling_memory_mb=sum(d.memory_mb for d in ceiling),
    )


class AdmissionController:
    """Guaranteed-capacity admission: every admitted service must be able to
    reach its maximum instances simultaneously on the pool.

    Admission decisions are exact (a full first-fit-decreasing repack of
    everything admitted plus the candidate), but the scale harness calls
    them thousands of times per simulated minute, so three caches sit in
    front of the packing — none of them changes a single verdict:

    * aggregate ceiling totals give an O(1) *necessary* screen — if total
      demand exceeds the pool's raw capacity, no packing can fit and the
      repack is skipped;
    * the last ``can_admit`` verdict is memoised by manifest identity and a
      mutation version, collapsing the ``can_admit`` → ``admit`` double
      pack and the control plane's repeated probes of a saturated pool;
    * :attr:`committed_plan` (and so :attr:`headroom`, the federated
      ranking key read per submission per site) is cached until the
      admitted set changes.
    """

    def __init__(self, pool_hosts: int, host: Optional[HostType] = None):
        if pool_hosts <= 0:
            raise ValueError("pool must have at least one host")
        self.pool_hosts = pool_hosts
        self.host = host or HostType()
        self.admitted: list[ServiceManifest] = []
        #: Bumped on every admit/release; guards all caches below.
        self._version = 0
        self._ceiling_cpu = 0.0
        self._ceiling_mem = 0.0
        self._committed: Optional[tuple[int, CapacityPlan]] = None
        self._last_check: Optional[tuple[ServiceManifest, int, bool]] = None

    def can_admit(self, manifest: ServiceManifest) -> bool:
        memo = self._last_check
        if (memo is not None and memo[0] is manifest
                and memo[1] == self._version):
            return memo[2]
        cpu, mem = demand_envelope(manifest).totals("ceiling")
        if (self._ceiling_mem + mem
                > self.host.memory_mb * self.pool_hosts + 1e-6
                or self._ceiling_cpu + cpu
                > self.host.cpu_cores * self.pool_hosts + 1e-6):
            # Aggregate demand alone overflows the pool: no packing exists.
            verdict = False
        else:
            plan = plan_capacity(self.admitted + [manifest], self.host)
            verdict = plan.hosts_for_ceiling <= self.pool_hosts
        self._last_check = (manifest, self._version, verdict)
        return verdict

    def admit(self, manifest: ServiceManifest) -> None:
        if not self.can_admit(manifest):
            raise CapacityError(
                f"cannot admit {manifest.service_name!r}: worst-case demand "
                f"exceeds the {self.pool_hosts}-host pool"
            )
        self.admitted.append(manifest)
        cpu, mem = demand_envelope(manifest).totals("ceiling")
        self._ceiling_cpu += cpu
        self._ceiling_mem += mem
        self._version += 1

    def release(self, manifest: ServiceManifest) -> None:
        self.admitted.remove(manifest)
        cpu, mem = demand_envelope(manifest).totals("ceiling")
        self._ceiling_cpu -= cpu
        self._ceiling_mem -= mem
        self._version += 1

    @property
    def committed_plan(self) -> CapacityPlan:
        cached = self._committed
        if cached is not None and cached[0] == self._version:
            return cached[1]
        plan = plan_capacity(self.admitted, self.host)
        self._committed = (self._version, plan)
        return plan

    @property
    def headroom(self) -> int:
        """Hosts still unreserved at the committed worst case — the ranking
        key the control plane's federated site selection spreads load by."""
        return self.pool_hosts - self.committed_plan.hosts_for_ceiling
