"""Composable, seeded workload generators (DESIGN.md §16).

The scale harness drives every admitted service with a *session profile*:
either the classic SAP tide (ramp → hold → drain → baseline) or an explicit
piecewise-constant :attr:`SessionProfile.schedule`. Generators here turn an
admission plan (the ordered list of admitted requests) plus a seeded stream
into one profile per service — the same stream the harness consumed before
this module existed, so ``workload="baseline"`` replays the historical
behaviour byte-for-byte.

Determinism contract: profiles are drawn **centrally** (by the coordinator,
before any sharding) from one named :class:`~repro.sim.RandomStreams`
stream, in admission order, with a *fixed number of draws per service* per
generator. That is what makes ``--procs N`` runs replay the identical
workload: workers receive finished profiles, never the RNG.

Session levels are calibrated against the harness's elasticity thresholds
(scale **up** above 80 sessions, **down** below 20): a generator that wants
to exercise elasticity emits levels crossing 80; one that wants a quiet
federation stays between the thresholds. ``load`` parameters are expressed
as a fraction of :data:`LOAD_UNIT` sessions per service.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import RandomStreams

__all__ = [
    "LOAD_UNIT",
    "SessionProfile",
    "WorkloadError",
    "WORKLOADS",
    "workload",
    "workload_names",
    "draw_profiles",
    "offered_load",
    "schedule_mean",
    "hill_estimator",
]

#: Nominal sessions-per-service at ``load=1.0``. Sits above the scale-up
#: threshold (80) so full load exercises elasticity; ``load=0.3`` is the
#: historical quiet baseline of 30 sessions.
LOAD_UNIT = 100.0


class WorkloadError(ValueError):
    """Unknown workload name or unusable generator parameters."""


@dataclass(frozen=True)
class SessionProfile:
    """One admitted service's deterministic session stream, drawn centrally
    from the seeded stream so every execution mode replays the same tides.

    Picklable by design: under ``procs > 1`` profiles are shipped to shard
    workers as part of the shard spec.

    Two shapes:

    * ``schedule == ()`` — the classic tide: quiet baseline until
      ``start_s``, ramp to ``peak_sessions`` over ``hold_s``, drain to
      ``drain_level``, settle back to the baseline.
    * ``schedule != ()`` — explicit piecewise-constant levels: ordered
      ``(at_s, sessions)`` points, each level holding until the next point
      (the last level holds to the end of the run). Generators always emit
      an ``at_s == 0.0`` first point so the stream is fully specified.

    For heavy-tailed workloads ``hold_s`` carries the *untruncated* session
    length draw (the tail-index sample) even when a schedule is present.
    """

    service_index: int
    service_id: str
    tenant: str
    site: str
    peak_sessions: int
    start_s: float
    hold_s: float
    drain_level: int
    schedule: tuple = ()

    @property
    def ramp(self) -> tuple[int, int]:
        return (self.peak_sessions // 2, self.peak_sessions)


#: name -> generator(rng, cfg, requests, params) -> list[SessionProfile]
WORKLOADS: dict[str, Callable] = {}


def workload(name: str):
    """Register a generator under ``name`` (sweep/CLI facing)."""
    def register(fn):
        if name in WORKLOADS:
            raise WorkloadError(f"duplicate workload {name!r}")
        WORKLOADS[name] = fn
        return fn
    return register


def workload_names() -> list[str]:
    return sorted(WORKLOADS)


def draw_profiles(cfg, admitted_requests) -> list[SessionProfile]:
    """Draw one profile per admitted request for ``cfg.workload``.

    ``cfg`` needs ``random_seed``, ``duration_s``, ``monitor_period_s``,
    ``elastic_fraction``, ``tenants`` and (optionally) ``workload`` /
    ``workload_params`` — i.e. a :class:`~repro.experiments.scale.
    ScaleConfig`, duck-typed so tests can pass a stub.

    The baseline workload keeps the historical stream name (``"scale"``)
    and draw order, so pre-existing seeds reproduce their exact runs; every
    other generator gets its own named stream.
    """
    name = getattr(cfg, "workload", "baseline") or "baseline"
    gen = WORKLOADS.get(name)
    if gen is None:
        raise WorkloadError(
            f"unknown workload {name!r}; have {workload_names()}")
    params = dict(getattr(cfg, "workload_params", ()) or ())
    stream = "scale" if name == "baseline" else f"workload:{name}"
    rng = RandomStreams(cfg.random_seed).stream(stream)
    return gen(rng, cfg, list(admitted_requests), params)


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

@workload("baseline")
def _baseline(rng, cfg, requests, params) -> list[SessionProfile]:
    """The historical SAP tide: every service bursts once; a seeded
    fraction bursts past the scale-up threshold. Exactly four draws per
    admitted service, in admission order — the original determinism
    contract, preserved verbatim."""
    duration = cfg.duration_s
    profiles = []
    for i, request in enumerate(requests):
        elastic = rng.random() < cfg.elastic_fraction
        peak_sessions = (int(rng.uniform(100, 150)) if elastic
                         else int(rng.uniform(40, 70)))
        start_s = rng.uniform(0.05, 0.4) * duration
        hold_s = rng.uniform(0.15, 0.3) * duration
        # Only services that burst past the scale-up threshold drain below
        # the scale-down threshold afterwards; a service already at its
        # minimum has nothing to release, and parking it under the
        # threshold would just no-op the down rule every evaluation.
        drain_level = 10 if elastic else 30
        profiles.append(SessionProfile(
            service_index=i, service_id=request.service_id,
            tenant=request.tenant, site=request.site,
            peak_sessions=peak_sessions, start_s=start_s, hold_s=hold_s,
            drain_level=drain_level))
    return profiles


@workload("diurnal")
def _diurnal(rng, cfg, requests, params) -> list[SessionProfile]:
    """Day-curve sessions: a clipped sinusoid over a quiet base, with
    per-service phase and amplitude jitter. ``load`` fixes the time-averaged
    offered sessions per service at ``load * LOAD_UNIT`` exactly (up to
    integer rounding) — the rate-conservation property the tests assert.

    Params: ``load`` (default 0.6), ``cycles`` per run (default 1),
    ``steps`` schedule resolution (default 24), ``jitter`` phase spread
    (default 0.15). Two draws per service.
    """
    load = float(params.get("load", 0.6))
    cycles = float(params.get("cycles", 1.0))
    steps = int(params.get("steps", 24))
    jitter = float(params.get("jitter", 0.15))
    if load < 0 or steps < 2:
        raise WorkloadError("diurnal: need load >= 0 and steps >= 2")
    duration = cfg.duration_s
    target = load * LOAD_UNIT
    base = 0.25     # floor fraction: the valley never goes fully idle
    profiles = []
    for i, request in enumerate(requests):
        phase = rng.uniform(-jitter, jitter)
        amplitude = rng.uniform(0.85, 1.15)
        raw = [base + amplitude * max(
                   0.0, math.sin(2.0 * math.pi * (cycles * k / steps + phase)))
               for k in range(steps)]
        factor = target / (sum(raw) / steps) if target > 0 else 0.0
        schedule = tuple((k * duration / steps, int(round(level * factor)))
                         for k, level in enumerate(raw))
        profiles.append(SessionProfile(
            service_index=i, service_id=request.service_id,
            tenant=request.tenant, site=request.site,
            peak_sessions=max(level for _at, level in schedule),
            start_s=0.0, hold_s=0.0, drain_level=30, schedule=schedule))
    return profiles


@workload("flash-crowd")
def _flash_crowd(rng, cfg, requests, params) -> list[SessionProfile]:
    """A sudden synchronized spike: a seeded fraction of services jumps
    from the quiet baseline to well past the scale-up threshold at nearly
    the same instant, holds, drains below the scale-down threshold, and
    settles back — the thundering-herd shape the admission and elasticity
    layers are judged by.

    Params: ``load`` quiet level fraction (default 0.3 — i.e. the classic
    30-session baseline), ``crowd_fraction`` (default 0.5), ``at`` crowd
    onset as a run fraction (default 0.35), ``spread`` onset jitter as a
    run fraction (default 0.02). Four draws per service.
    """
    load = float(params.get("load", 0.3))
    crowd_fraction = float(params.get("crowd_fraction", 0.5))
    at_frac = float(params.get("at", 0.35))
    spread = float(params.get("spread", 0.02))
    duration = cfg.duration_s
    # The quiet level must sit between the thresholds (20, 80): below 80 so
    # the mere baseline never scales up, at or above 20 so it never drains.
    quiet = int(round(load * LOAD_UNIT))
    quiet = max(20, min(quiet, 75))
    relax_s = 6.0 * cfg.monitor_period_s   # drain dwell: lets the down rule fire
    profiles = []
    for i, request in enumerate(requests):
        member = rng.random() < crowd_fraction
        spike = int(rng.uniform(120, 180))
        onset = (at_frac + rng.uniform(0.0, spread)) * duration
        hold_s = rng.uniform(0.08, 0.15) * duration
        if member:
            schedule = ((0.0, quiet),
                        (onset, spike),
                        (onset + hold_s, 10),
                        (min(onset + hold_s + relax_s, duration), quiet))
            peak = spike
        else:
            schedule = ((0.0, quiet),)
            peak = quiet
        profiles.append(SessionProfile(
            service_index=i, service_id=request.service_id,
            tenant=request.tenant, site=request.site,
            peak_sessions=peak, start_s=onset, hold_s=hold_s,
            drain_level=10 if member else quiet, schedule=schedule))
    return profiles


@workload("heavy-tail")
def _heavy_tail(rng, cfg, requests, params) -> list[SessionProfile]:
    """Heavy-tailed session lengths: each service runs one active period
    whose duration is Pareto(``alpha``) (the untruncated draw is kept in
    ``hold_s`` for tail-index estimation) and whose intensity is
    log-normal. Levels are normalised post-hoc so the federation-wide
    offered load matches ``load * LOAD_UNIT`` sessions per service.

    Params: ``load`` (default 0.5), ``alpha`` tail index (default 1.5),
    ``sigma`` log-normal shape (default 0.75). Three draws per service.
    """
    load = float(params.get("load", 0.5))
    alpha = float(params.get("alpha", 1.5))
    sigma = float(params.get("sigma", 0.75))
    if alpha <= 0:
        raise WorkloadError("heavy-tail: alpha must be positive")
    duration = cfg.duration_s
    xm = max(2.0 * cfg.monitor_period_s, 0.02 * duration)   # Pareto scale
    drawn = []
    for request in requests:
        start_s = rng.uniform(0.0, 0.5) * duration
        u = rng.random()
        length_s = xm * (1.0 - u) ** (-1.0 / alpha)
        intensity = rng.lognormal(0.0, sigma)
        drawn.append((request, start_s, length_s, intensity))
    # Global normalisation: scale intensities so total session-seconds hit
    # the configured offered load — a pure function of the draws above.
    raw_total = sum(intensity * min(length_s, duration - start_s)
                    for _r, start_s, length_s, intensity in drawn)
    target_total = load * LOAD_UNIT * len(requests) * duration
    factor = target_total / raw_total if raw_total > 0 else 0.0
    profiles = []
    for i, (request, start_s, length_s, intensity) in enumerate(drawn):
        level = max(1, int(round(intensity * factor)))
        end_s = min(start_s + length_s, duration)
        schedule = ((0.0, 0), (start_s, level), (end_s, 0))
        profiles.append(SessionProfile(
            service_index=i, service_id=request.service_id,
            tenant=request.tenant, site=request.site,
            peak_sessions=level, start_s=start_s, hold_s=length_s,
            drain_level=0, schedule=schedule))
    return profiles


@workload("tenant-mix")
def _tenant_mix(rng, cfg, requests, params) -> list[SessionProfile]:
    """Asymmetric tenants: the first ``heavy_tenants`` tenants run bursty
    elastic tides (the baseline's elastic branch), the rest hold a flat
    quiet level — the mix that exercises weighted-round-robin fairness and
    per-tenant quota accounting under unequal demand.

    Params: ``heavy_tenants`` (default ``max(1, tenants // 4)``),
    ``load`` flat level fraction for light tenants (default 0.3).
    Three draws per service.
    """
    heavy = int(params.get("heavy_tenants", max(1, cfg.tenants // 4)))
    load = float(params.get("load", 0.3))
    quiet = max(20, min(int(round(load * LOAD_UNIT)), 75))
    heavy_names = {f"tenant-{t}" for t in range(heavy)}
    duration = cfg.duration_s
    profiles = []
    for i, request in enumerate(requests):
        peak = int(rng.uniform(100, 150))
        start_s = rng.uniform(0.05, 0.4) * duration
        hold_s = rng.uniform(0.15, 0.3) * duration
        if request.tenant in heavy_names:
            profiles.append(SessionProfile(
                service_index=i, service_id=request.service_id,
                tenant=request.tenant, site=request.site,
                peak_sessions=peak, start_s=start_s, hold_s=hold_s,
                drain_level=10))
        else:
            profiles.append(SessionProfile(
                service_index=i, service_id=request.service_id,
                tenant=request.tenant, site=request.site,
                peak_sessions=quiet, start_s=0.0, hold_s=0.0,
                drain_level=quiet, schedule=((0.0, quiet),)))
    return profiles


# ---------------------------------------------------------------------------
# Analysis helpers (rate conservation, tail index)
# ---------------------------------------------------------------------------

def schedule_mean(schedule, duration_s: float) -> float:
    """Time-weighted mean session level of a piecewise schedule over
    ``[0, duration_s]`` (the last level holds to the end)."""
    if not schedule or duration_s <= 0:
        return 0.0
    total = 0.0
    for index, (at_s, level) in enumerate(schedule):
        if at_s >= duration_s:
            break
        next_at = (schedule[index + 1][0] if index + 1 < len(schedule)
                   else duration_s)
        total += level * (min(next_at, duration_s) - at_s)
    return total / duration_s


def offered_load(profiles, duration_s: float, *,
                 quiet_s: float = 360.0) -> float:
    """Federation-wide mean concurrent sessions implied by ``profiles``.

    Schedule profiles integrate exactly; tide profiles integrate the
    piecewise shape the session driver replays (baseline 30 until
    ``start_s``, half-peak then peak over ``hold_s``, ``drain_level`` for
    ``quiet_s``, baseline 30 after).
    """
    total = 0.0
    for profile in profiles:
        if profile.schedule:
            total += schedule_mean(profile.schedule, duration_s)
            continue
        points = ((0.0, 30),
                  (profile.start_s, profile.ramp[0]),
                  (profile.start_s + profile.hold_s / 2.0, profile.ramp[1]),
                  (profile.start_s + profile.hold_s, profile.drain_level),
                  (profile.start_s + profile.hold_s + quiet_s, 30))
        total += schedule_mean(points, duration_s)
    return total


def hill_estimator(samples, k: Optional[int] = None) -> float:
    """Hill estimate of the tail index alpha from the ``k`` largest order
    statistics (default ``k = max(10, n // 10)``). Larger alpha = lighter
    tail; a Pareto(alpha) sample estimates ~alpha."""
    xs = sorted((float(x) for x in samples), reverse=True)
    n = len(xs)
    if n < 3:
        raise WorkloadError("hill_estimator: need at least 3 samples")
    if k is None:
        k = max(10, n // 10)
    k = min(k, n - 1)
    pivot = xs[k]
    if pivot <= 0:
        raise WorkloadError("hill_estimator: samples must be positive")
    mean_log = sum(math.log(x / pivot) for x in xs[:k]) / k
    if mean_log <= 0:
        raise WorkloadError("hill_estimator: degenerate sample")
    return 1.0 / mean_log
