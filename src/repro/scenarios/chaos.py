"""Fault injection as first-class DES events (DESIGN.md §16).

Chaos events are frozen, picklable dataclasses scheduled against the real
infrastructure objects: host crashes and correlated whole-site outages
(:meth:`~repro.cloud.veem.VEEM.inject_host_failure` under the hood),
spot-VM preemption waves (:meth:`~repro.cloud.veem.VEEM.preempt`),
federation network partitions (:meth:`~repro.control.ControlPlane.
partition`), and a deliberately-broken :class:`Oversubscribe` hook used to
prove the invariant checker detects violations.

:func:`install_chaos` spawns one process per event; every action and every
recovery emits a ``chaos.*`` trace record through the run's
:class:`~repro.sim.TraceLog`, and recoveries re-run each affected service's
:meth:`~repro.core.service_manager.lifecycle.ServiceLifecycleManager.
ensure_floor` so heals that failed while capacity was down get their
second chance.

Sharding: every event names the site(s) it touches, so the sharded scale
harness ships each worker only the events intersecting its shard
(:func:`restrict_event`). Site-local events are oracle-parity safe — their
effect is a pure function of one site's state — but a
:class:`NetworkPartition` acts on the (coordinator-only) control plane and
is rejected under ``procs > 1``. Pick ``at_s`` *off* the monitor grid
(e.g. ``n * period + period / 4``) so an injection never races a
same-instant scale event whose ordering could differ between execution
modes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional, Union

__all__ = [
    "HostCrash",
    "SpotPreemption",
    "SiteOutage",
    "NetworkPartition",
    "Oversubscribe",
    "ChaosEvent",
    "sites_of",
    "restrict_event",
    "install_chaos",
]


@dataclass(frozen=True)
class HostCrash:
    """Crash one host at ``at_s``; optionally recover it later."""

    at_s: float
    site: str
    host_index: int = 0
    recover_after_s: float = 0.0    # 0 = never recovers


@dataclass(frozen=True)
class SpotPreemption:
    """Spot-market reclamation: fail ``count`` active VMs at the site."""

    at_s: float
    site: str
    count: int = 1
    newest_first: bool = True


@dataclass(frozen=True)
class SiteOutage:
    """Correlated outage: every host at each named site fails at once."""

    at_s: float
    sites: tuple
    recover_after_s: float = 0.0


@dataclass(frozen=True)
class NetworkPartition:
    """The named sites become unreachable from the control plane: queued
    and new requests stop landing there until the partition heals."""

    at_s: float
    sites: tuple
    heal_after_s: float = 0.0


@dataclass(frozen=True)
class Oversubscribe:
    """TEST-ONLY invariant violation: corrupt one host's capacity
    accounting so it reads as oversubscribed. Exists purely to prove the
    experiment runner detects and reports a broken invariant — never a
    model of real behaviour."""

    at_s: float
    site: str
    host_index: int = 0
    extra_cpu: float = 1.0


ChaosEvent = Union[HostCrash, SpotPreemption, SiteOutage,
                   NetworkPartition, Oversubscribe]


def sites_of(event: ChaosEvent) -> tuple:
    """The site names an event touches (partition events included)."""
    if isinstance(event, (SiteOutage, NetworkPartition)):
        return tuple(event.sites)
    return (event.site,)


def restrict_event(event: ChaosEvent, site_names) -> Optional[ChaosEvent]:
    """The event as seen by a shard owning ``site_names``: unchanged if
    fully local, narrowed to the intersection for multi-site events, or
    ``None`` if the shard is untouched."""
    owned = set(site_names)
    if isinstance(event, (SiteOutage, NetworkPartition)):
        subset = tuple(name for name in event.sites if name in owned)
        if not subset:
            return None
        if len(subset) == len(event.sites):
            return event
        return dataclasses.replace(event, sites=subset)
    return event if event.site in owned else None


def event_to_dict(event: ChaosEvent) -> dict:
    """Stable JSON shape for run records: ``{"type": ..., fields...}``."""
    out = {"type": type(event).__name__}
    out.update(dataclasses.asdict(event))
    if "sites" in out:
        out["sites"] = list(out["sites"])
    return out


# ---------------------------------------------------------------------------
# Installation
# ---------------------------------------------------------------------------

def install_chaos(env, events, *, veems_by_site: dict,
                  control=None, managers_by_site: Optional[dict] = None,
                  trace=None, on_event: Optional[Callable] = None) -> list:
    """Schedule ``events`` against the given infrastructure.

    ``veems_by_site`` maps site name -> :class:`~repro.cloud.veem.VEEM`;
    ``managers_by_site`` (optional) maps site name -> ``ServiceManager`` so
    recoveries can re-floor the affected services; ``control`` is required
    for :class:`NetworkPartition`. ``on_event(event, phase, detail)`` is the
    recovery-hook callback — ``phase`` is ``"fired"`` or ``"recovered"``.

    Returns the spawned processes (one per event), in event order.
    """
    if trace is None:
        trace = (control.trace if control is not None
                 else next(iter(veems_by_site.values())).trace)
    managers_by_site = managers_by_site or {}

    def notify(event, phase, **detail):
        if on_event is not None:
            on_event(event, phase, detail)

    def refloor(site_name):
        """Recovery hook: give every service on the site a second chance
        to heal components whose mid-outage heals failed for capacity."""
        manager = managers_by_site.get(site_name)
        if manager is None:
            return 0
        healed = 0
        for service in list(manager.services.values()):
            healed += service.lifecycle.ensure_floor()
        return healed

    def fail_site(site_name, kind):
        veem = veems_by_site[site_name]
        downed, casualties = [], 0
        for host in veem.hosts:
            if host.failed:
                continue
            casualties += len(veem.inject_host_failure(host))
            downed.append(host)
        trace.emit("chaos", kind, site=site_name,
                   hosts=len(downed), casualties=casualties)
        return downed, casualties

    def recover_site(site_name, downed, kind):
        veem = veems_by_site[site_name]
        for host in downed:
            veem.recover_host(host)
        healed = refloor(site_name)
        trace.emit("chaos", kind, site=site_name,
                   hosts=len(downed), healed=healed)
        return healed

    def host_crash(event: HostCrash):
        yield env.timeout(event.at_s)
        veem = veems_by_site[event.site]
        host = veem.hosts[event.host_index]
        if host.failed:
            return
        casualties = veem.inject_host_failure(host)
        trace.emit("chaos", "chaos.host.crash", site=event.site,
                   host=host.name, casualties=len(casualties))
        notify(event, "fired", host=host.name, casualties=len(casualties))
        if event.recover_after_s <= 0:
            return
        yield env.timeout(event.recover_after_s)
        veem.recover_host(host)
        healed = refloor(event.site)
        trace.emit("chaos", "chaos.host.recover", site=event.site,
                   host=host.name, healed=healed)
        notify(event, "recovered", host=host.name, healed=healed)

    def preemption(event: SpotPreemption):
        yield env.timeout(event.at_s)
        veem = veems_by_site[event.site]
        victims = veem.preempt(event.count, newest_first=event.newest_first)
        trace.emit("chaos", "chaos.preempt", site=event.site,
                   count=len(victims), vms=[vm.vm_id for vm in victims])
        notify(event, "fired", victims=[vm.vm_id for vm in victims])

    def site_outage(event: SiteOutage):
        yield env.timeout(event.at_s)
        downed_by_site = {}
        for site_name in event.sites:
            downed_by_site[site_name], _ = fail_site(
                site_name, "chaos.site.outage")
        notify(event, "fired", sites=list(event.sites))
        if event.recover_after_s <= 0:
            return
        yield env.timeout(event.recover_after_s)
        for site_name, downed in downed_by_site.items():
            recover_site(site_name, downed, "chaos.site.recover")
        notify(event, "recovered", sites=list(event.sites))

    def partition(event: NetworkPartition):
        yield env.timeout(event.at_s)
        control.partition(event.sites)
        trace.emit("chaos", "chaos.partition", sites=sorted(event.sites))
        notify(event, "fired", sites=list(event.sites))
        if event.heal_after_s <= 0:
            return
        yield env.timeout(event.heal_after_s)
        control.heal_partition(event.sites)
        trace.emit("chaos", "chaos.heal", sites=sorted(event.sites))
        notify(event, "recovered", sites=list(event.sites))

    def oversubscribe(event: Oversubscribe):
        yield env.timeout(event.at_s)
        veem = veems_by_site[event.site]
        host = veem.hosts[event.host_index]
        # Deliberate accounting corruption — see the class docstring.
        host._cpu_used = host.cpu_cores + event.extra_cpu
        trace.emit("chaos", "chaos.oversubscribe", site=event.site,
                   host=host.name, extra_cpu=event.extra_cpu)
        notify(event, "fired", host=host.name)

    runners = {
        HostCrash: host_crash,
        SpotPreemption: preemption,
        SiteOutage: site_outage,
        NetworkPartition: partition,
        Oversubscribe: oversubscribe,
    }
    processes = []
    for index, event in enumerate(events):
        if isinstance(event, NetworkPartition) and control is None:
            raise ValueError("NetworkPartition needs a control plane")
        for name in sites_of(event):
            if name not in veems_by_site and not isinstance(
                    event, NetworkPartition):
                raise KeyError(f"chaos event names unknown site {name!r}")
        runner = runners[type(event)]
        processes.append(env.process(runner(event),
                                     name=f"chaos:{index}:"
                                          f"{type(event).__name__}"))
    return processes
