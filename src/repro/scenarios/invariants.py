"""System invariants checked after every experiment cell (DESIGN.md §16).

Four families, each a pure read of live objects (no mutation, so a check
can run mid-simulation or at the end):

* **No oversubscription** — every host's reserved CPU/memory stays within
  its physical capacity, and the reservation columns agree with the sum of
  resident VM descriptors (accounting drift detection).
* **Requests settled** — after the run's settle window no request is stuck
  mid-pipeline (``DEPLOYING``); every request is QUEUED (admission backlog
  at end-of-run is a legitimate final state for a finite run), ACTIVE,
  REJECTED or RELEASED.
* **Accounting consistent** — per-tenant quota usage equals the sum of the
  tenant's live (DEPLOYING/ACTIVE) request envelopes, and each site's
  admission ledger carries exactly its live requests.
* **No orphan spans** — every open span is the by-design-open ``request``
  span of a live (QUEUED/DEPLOYING/ACTIVE) request; anything else leaked.

Violations are data, not exceptions: the experiment runner reports failing
cells and exits non-zero, and the test-only ``Oversubscribe`` chaos hook
exists precisely to prove these checks catch a corrupted system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..control.requests import RequestState

__all__ = [
    "Violation",
    "check_no_oversubscription",
    "check_requests_settled",
    "check_accounting",
    "check_no_orphan_spans",
    "check_all",
]

_EPS = 1e-6

#: Request states a finished run may legitimately contain.
_SETTLED = (RequestState.QUEUED, RequestState.ACTIVE,
            RequestState.REJECTED, RequestState.RELEASED)


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which, where, and what the numbers were."""

    invariant: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.subject}: {self.detail}"


def check_no_oversubscription(veems) -> list[Violation]:
    out = []
    for veem in veems:
        for host in veem.hosts:
            if host._cpu_used > host.cpu_cores + _EPS:
                out.append(Violation(
                    "no-oversubscription", f"{veem.name}/{host.name}",
                    f"cpu {host._cpu_used:g} > capacity "
                    f"{host.cpu_cores:g}"))
            if host._mem_used > host.memory_mb + _EPS:
                out.append(Violation(
                    "no-oversubscription", f"{veem.name}/{host.name}",
                    f"memory {host._mem_used:g}MB > capacity "
                    f"{host.memory_mb:g}MB"))
            resident_cpu = sum(vm.descriptor.cpu for vm in host.vms)
            resident_mem = sum(vm.descriptor.memory_mb for vm in host.vms)
            if (abs(resident_cpu - host._cpu_used) > _EPS
                    or abs(resident_mem - host._mem_used) > _EPS):
                out.append(Violation(
                    "no-oversubscription", f"{veem.name}/{host.name}",
                    f"reservation drift: booked cpu={host._cpu_used:g} "
                    f"mem={host._mem_used:g} but residents sum to "
                    f"cpu={resident_cpu:g} mem={resident_mem:g}"))
    return out


def check_requests_settled(control) -> list[Violation]:
    out = []
    for request in control.requests.values():
        if request.state not in _SETTLED:
            out.append(Violation(
                "requests-settled", request.request_id,
                f"state {request.state.value!r} after the settle window "
                f"(submitted at t={request.submitted_at:g})"))
    return out


def check_accounting(control) -> list[Violation]:
    out = []
    live_states = (RequestState.DEPLOYING, RequestState.ACTIVE)
    live = [r for r in control.requests.values() if r.state in live_states]
    # Tenant ledgers against live envelopes.
    for name, tenant in control.tenants.items():
        services = instances = 0
        cpu = memory_mb = 0.0
        for request in live:
            if request.tenant != name:
                continue
            ceiling_cpu, ceiling_mem = request.envelope.totals("ceiling")
            services += 1
            instances += len(request.envelope.ceiling)
            cpu += ceiling_cpu
            memory_mb += ceiling_mem
        usage = tenant.usage
        if (usage.services != services or usage.instances != instances
                or abs(usage.cpu - cpu) > _EPS
                or abs(usage.memory_mb - memory_mb) > _EPS):
            out.append(Violation(
                "accounting-consistent", f"tenant {name}",
                f"ledger services={usage.services} instances="
                f"{usage.instances} cpu={usage.cpu:g} mem="
                f"{usage.memory_mb:g} but live requests sum to "
                f"services={services} instances={instances} cpu={cpu:g} "
                f"mem={memory_mb:g}"))
    # Site admission ledgers against live requests.
    by_site: dict[str, int] = {}
    for request in live:
        by_site[request.site] = by_site.get(request.site, 0) + 1
    for site in control.sites:
        admitted = len(site.admission.admitted)
        expected = by_site.get(site.name, 0)
        if admitted != expected:
            out.append(Violation(
                "accounting-consistent", f"site {site.name}",
                f"admission ledger holds {admitted} service(s) but "
                f"{expected} live request(s) target the site"))
    return out


def check_no_orphan_spans(trace, control=None) -> list[Violation]:
    out = []
    requests = control.requests if control is not None else {}
    live = (RequestState.QUEUED, RequestState.DEPLOYING, RequestState.ACTIVE)
    for span in trace.open_spans():
        if span.kind == "request":
            request = requests.get(span.details.get("request", ""))
            if request is not None and request.state in live:
                continue    # open by design while the request lives
            out.append(Violation(
                "no-orphan-spans", f"span #{span.span_id}",
                f"request span open but the request is "
                f"{request.state.value if request else 'unknown'}"))
        else:
            out.append(Violation(
                "no-orphan-spans", f"span #{span.span_id}",
                f"{span.source}:{span.kind} opened at t={span.start:g} "
                f"never closed"))
    return out


def check_all(control, veems, trace=None, *, metrics=None) -> list[Violation]:
    """Every invariant family, in severity order.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) tallies
    violations under ``scenarios.invariants.violations`` — incremented
    only when there are any, so a clean run's registry is byte-identical
    to one checked without a registry."""
    trace = trace if trace is not None else control.trace
    out = []
    out.extend(check_no_oversubscription(veems))
    out.extend(check_requests_settled(control))
    out.extend(check_accounting(control))
    out.extend(check_no_orphan_spans(trace, control))
    if metrics is not None and out:
        metrics.counter("scenarios.invariants.violations").inc(len(out))
    return out
