"""Reproducible experiment runner: named scenarios × parameter sweeps.

``python -m repro experiment <name> --sweep sites=4,16 load=0.5,0.9
--seed N`` expands the sweep into a parameter grid, runs every cell
through the real control plane (:func:`repro.experiments.scale.run_scale`,
optionally sharded with ``--procs``), checks the §16 invariants after each
cell, and writes one JSON line per cell plus a summary table.

Determinism contract: the JSONL carries only fields that are a pure
function of ``(scenario, cell parameters, seed)`` — no wall-clock, no RSS
— so re-running the same command yields a byte-identical file. Wall time
and memory stay on the human-facing summary table.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from ..experiments.scale import ScaleConfig, ScaleReport, run_scale
from ..obs.recorder import dump_flight
from .chaos import (
    ChaosEvent,
    HostCrash,
    NetworkPartition,
    SiteOutage,
    SpotPreemption,
    event_to_dict,
)
from .workloads import WorkloadError

__all__ = [
    "Scenario",
    "SCENARIOS",
    "CellResult",
    "ExperimentResult",
    "parse_sweep",
    "run_experiment",
    "scenario_names",
]


# ---------------------------------------------------------------------------
# Scenario definitions
# ---------------------------------------------------------------------------

#: Modest defaults so a full sweep finishes in seconds; ``--sweep`` and
#: CLI flags override any of them.
_BASE = (
    ("sites", 4),
    ("services", 32),
    ("hours", 0.5),
    ("tenants", 8),
    ("settle_s", 600.0),
)


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible experiment: a workload generator, optional
    chaos schedule, and base configuration overrides."""

    name: str
    description: str
    workload: str = "baseline"
    workload_params: tuple = ()
    base: tuple = _BASE
    #: builds the chaos schedule once the cell's config is known — event
    #: times are usually fractions of the configured duration
    chaos: Optional[Callable[[ScaleConfig], tuple]] = None

    def configure(self, overrides: dict) -> ScaleConfig:
        """Materialise one sweep cell into a runnable config."""
        fields = {f.name for f in dataclasses.fields(ScaleConfig)}
        kwargs = dict(self.base)
        params = dict(self.workload_params)
        for key, value in overrides.items():
            key = _ALIASES.get(key, key)
            if key in fields:
                kwargs[key] = value
            else:
                params[key] = value
        kwargs["workload"] = self.workload
        kwargs["workload_params"] = tuple(sorted(params.items()))
        kwargs["check_invariants"] = True
        cfg = ScaleConfig(**kwargs)
        if self.chaos is not None:
            cfg = dataclasses.replace(cfg, chaos=tuple(self.chaos(cfg)))
        return cfg


#: sweep-key spellings that differ from the ScaleConfig field name
_ALIASES = {"seed": "random_seed", "epoch": "epoch_s", "settle": "settle_s"}


def _off_grid(cfg: ScaleConfig, fraction: float) -> float:
    """An event time at roughly ``fraction`` of the run that avoids the
    monitor/census grid: same-instant ordering against a periodic sampler
    is exactly the non-determinism the oracle check would flag."""
    period = cfg.monitor_period_s
    return int(fraction * cfg.duration_s / period) * period + period / 4


def _outage(cfg: ScaleConfig) -> tuple[ChaosEvent, ...]:
    down = tuple(f"site-{s}" for s in range(min(2, cfg.sites)))
    return (SiteOutage(at_s=_off_grid(cfg, 0.45), sites=down,
                       recover_after_s=6 * cfg.monitor_period_s),)


def _churn(cfg: ScaleConfig) -> tuple[ChaosEvent, ...]:
    events = []
    for wave, fraction in enumerate((0.3, 0.5, 0.7)):
        site = f"site-{wave % cfg.sites}"
        events.append(SpotPreemption(at_s=_off_grid(cfg, fraction),
                                     site=site, count=2))
    return tuple(events)


def _crash(cfg: ScaleConfig) -> tuple[ChaosEvent, ...]:
    return (HostCrash(at_s=_off_grid(cfg, 0.4), site="site-0",
                      recover_after_s=6 * cfg.monitor_period_s),)


def _split(cfg: ScaleConfig) -> tuple[ChaosEvent, ...]:
    return (NetworkPartition(at_s=_off_grid(cfg, 0.35),
                             sites=(f"site-{cfg.sites - 1}",),
                             heal_after_s=8 * cfg.monitor_period_s),)


SCENARIOS: dict[str, Scenario] = {}


def _scenario(scn: Scenario) -> Scenario:
    SCENARIOS[scn.name] = scn
    return scn


_scenario(Scenario(
    "baseline",
    "classic SAP session tides, no chaos — the PR-5 harness workload"))
_scenario(Scenario(
    "diurnal",
    "day/night sinusoid with per-service phase jitter",
    workload="diurnal"))
_scenario(Scenario(
    "flash-crowd",
    "quiet fleet, then half the services spike together",
    workload="flash-crowd"))
_scenario(Scenario(
    "heavy-tail",
    "Pareto session lengths, log-normal intensities",
    workload="heavy-tail"))
_scenario(Scenario(
    "tenant-mix",
    "a few heavy elastic tenants over a flat long tail",
    workload="tenant-mix"))
_scenario(Scenario(
    "site-outage",
    "correlated outage of two sites mid flash crowd, then recovery",
    workload="flash-crowd", chaos=_outage))
_scenario(Scenario(
    "spot-churn",
    "waves of spot preemptions against the baseline tides",
    chaos=_churn))
_scenario(Scenario(
    "host-crash",
    "one host dies under diurnal load and comes back",
    workload="diurnal", chaos=_crash))
_scenario(Scenario(
    "partition",
    "one site drops off the federation, then heals (procs=1 only)",
    workload="diurnal", chaos=_split))


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


# ---------------------------------------------------------------------------
# Sweep grammar
# ---------------------------------------------------------------------------

def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def parse_sweep(tokens) -> list[dict]:
    """Expand ``["sites=4,16", "load=0.5,0.9"]`` into the grid's cells,
    in deterministic row-major order (first key varies slowest)."""
    axes: list[tuple[str, list]] = []
    for token in tokens:
        key, eq, raw = token.partition("=")
        if not eq or not key or not raw:
            raise WorkloadError(
                f"sweep term {token!r} is not of the form key=v1,v2,...")
        axes.append((key, [_parse_value(v) for v in raw.split(",")]))
    if not axes:
        return [{}]
    keys = [key for key, _values in axes]
    if len(set(keys)) != len(keys):
        raise WorkloadError(f"duplicate sweep key in {keys}")
    return [dict(zip(keys, combo))
            for combo in itertools.product(*(v for _k, v in axes))]


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellResult:
    """One sweep cell: its parameters, the harness report, pass/fail."""

    params: tuple
    report: ScaleReport
    #: position in the sweep grid — the pointer from the summary table
    #: and the JSONL back to the failing cell
    index: int = 0
    #: where this cell's flight-recorder dump landed (failing cells with
    #: an out_dir only)
    flight_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.report.violations

    def record(self, scenario: Scenario, cfg: ScaleConfig) -> dict:
        """The cell's JSONL record — deterministic fields only (the flight
        dump is referenced by file *name*: its directory varies with
        ``--out``, its name is a pure function of scenario/seed/cell)."""
        return {
            "scenario": scenario.name,
            "workload": cfg.workload,
            "workload_params": dict(cfg.workload_params),
            "seed": cfg.random_seed,
            "cell": dict(self.params),
            "cell_index": self.index,
            "sites": cfg.sites,
            "services": cfg.services,
            "hours": cfg.hours,
            "procs": cfg.procs,
            "chaos": [event_to_dict(e) for e in cfg.chaos],
            "admitted": self.report.admitted,
            "queued": self.report.queued,
            "rejected": self.report.rejected,
            "peak_vms": self.report.peak_vms,
            "final_vms": self.report.final_vms,
            "peak_queue_depth": self.report.peak_queue_depth,
            "site_fleets": [list(pair) for pair in self.report.site_fleets],
            "violations": list(self.report.violations),
            "audit_findings": self.report.audit_findings,
            "audit_violations": list(self.report.audit_violations),
            "flight_recorder": (Path(self.flight_path).name
                                if self.flight_path else None),
            "ok": self.ok,
        }


@dataclass(frozen=True)
class ExperimentResult:
    scenario: str
    seed: int
    cells: tuple
    jsonl_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def render(self) -> str:
        header = (f"{'cell':<40} {'adm':>4} {'que':>4} {'rej':>4} "
                  f"{'peak':>5} {'final':>5} {'viol':>4}  verdict")
        lines = [f"experiment {self.scenario} (seed {self.seed}, "
                 f"{len(self.cells)} cell(s))", header, "-" * len(header)]
        for cell in self.cells:
            label = " ".join(f"{k}={v}" for k, v in cell.params) or "-"
            r = cell.report
            lines.append(
                f"{label:<40} {r.admitted:>4} {r.queued:>4} "
                f"{r.rejected:>4} {r.peak_vms:>5} {r.final_vms:>5} "
                f"{len(r.violations):>4}  "
                f"{'ok' if cell.ok else 'INVARIANT VIOLATION'}")
        for cell in self.cells:
            suffix = (f" (flight: {cell.flight_path})"
                      if cell.flight_path else "")
            for violation in cell.report.violations:
                lines.append(f"  !! [cell {cell.index}] {violation}{suffix}")
        if self.jsonl_path:
            lines.append(f"jsonl: {self.jsonl_path}")
        return "\n".join(lines)


def run_experiment(name: str, *, sweep=(), seed: Optional[int] = None,
                   procs: Optional[int] = None,
                   hours: Optional[float] = None,
                   out_dir: Optional[str] = "runs",
                   progress=None) -> ExperimentResult:
    """Run every cell of ``name``'s sweep grid and check invariants.

    Returns the per-cell results; when ``out_dir`` is set, also writes
    ``<out_dir>/<name>-seed<seed>.jsonl`` with one deterministic record
    per cell (same command ⇒ byte-identical file).
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; "
            f"one of {', '.join(scenario_names())}") from None
    say = progress or (lambda _msg: None)

    cells = parse_sweep(sweep)
    forced = {}
    if seed is not None:
        forced["seed"] = seed
    if procs is not None:
        forced["procs"] = procs
    if hours is not None:
        forced["hours"] = hours

    directory = None
    if out_dir is not None:
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)

    results = []
    records = []
    run_seed = None
    for index, cell in enumerate(cells):
        merged = {**cell, **{k: v for k, v in forced.items()
                             if k not in cell}}
        cfg = scenario.configure(merged)
        run_seed = cfg.random_seed if run_seed is None else run_seed
        label = " ".join(f"{k}={v}" for k, v in sorted(merged.items()))
        say(f"[{index + 1}/{len(cells)}] {name} {label or '(defaults)'}")
        report = run_scale(cfg)
        flight_path = None
        if report.flight and directory is not None:
            # Post-mortem for the failing cell: the last trace records
            # before the violation, next to the JSONL it is named in.
            flight_path = dump_flight(
                directory / (f"{name}-seed{cfg.random_seed}"
                             f"-cell{index}.flight.jsonl"),
                report.flight,
                reason="; ".join(report.violations)
                       or "time-constraint violations")
        result = CellResult(params=tuple(sorted(merged.items())),
                            report=report, index=index,
                            flight_path=flight_path)
        results.append(result)
        records.append(result.record(scenario, cfg))
        status = "ok" if result.ok else "INVARIANT VIOLATION"
        say(f"    admitted={report.admitted} peak_vms={report.peak_vms} "
            f"wall={report.wall_s:.1f}s {status}")

    if run_seed is None:   # empty grid can't happen, but stay total
        run_seed = ScaleConfig().random_seed

    jsonl_path = None
    if directory is not None:
        path = directory / f"{name}-seed{run_seed}.jsonl"
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        jsonl_path = str(path)

    return ExperimentResult(scenario=name, seed=run_seed,
                            cells=tuple(results), jsonl_path=jsonl_path)
