"""Scenario factory: workloads, chaos, invariants, experiments (§16).

Three cooperating parts:

* :mod:`.workloads` — composable, seeded workload generators (diurnal
  curves, flash crowds, heavy-tailed session lengths, tenant mixes)
  emitting the session streams the scale harness drives services with;
* :mod:`.chaos` — fault injection (host crashes, spot preemption,
  correlated site outages, network partitions) as first-class DES events
  with recovery hooks and ``chaos.*`` trace records;
* :mod:`.invariants` — the post-cell system checks (no oversubscription,
  requests settled, accounting consistent, no orphan spans);
* :mod:`.runner` — the sweep-driven experiment runner behind
  ``python -m repro experiment``;
* :mod:`.library` — the named integration setups the chaos/failure test
  suites are thin wrappers over.

``runner`` and ``library`` are imported lazily: they depend on
:mod:`repro.experiments`, which itself imports this package's generators —
the eager surface here must stay dependency-light to keep that one-way.
"""

from .chaos import (
    ChaosEvent,
    HostCrash,
    NetworkPartition,
    Oversubscribe,
    SiteOutage,
    SpotPreemption,
    install_chaos,
    restrict_event,
    sites_of,
)
from .invariants import (
    Violation,
    check_accounting,
    check_all,
    check_no_orphan_spans,
    check_no_oversubscription,
    check_requests_settled,
)
from .workloads import (
    LOAD_UNIT,
    SessionProfile,
    WorkloadError,
    WORKLOADS,
    draw_profiles,
    hill_estimator,
    offered_load,
    schedule_mean,
    workload,
    workload_names,
)

__all__ = [
    "ChaosEvent",
    "HostCrash",
    "NetworkPartition",
    "Oversubscribe",
    "SiteOutage",
    "SpotPreemption",
    "install_chaos",
    "restrict_event",
    "sites_of",
    "Violation",
    "check_accounting",
    "check_all",
    "check_no_orphan_spans",
    "check_no_oversubscription",
    "check_requests_settled",
    "LOAD_UNIT",
    "SessionProfile",
    "WorkloadError",
    "WORKLOADS",
    "draw_profiles",
    "hill_estimator",
    "offered_load",
    "schedule_mean",
    "workload",
    "workload_names",
    # lazy (import on attribute access):
    "Scenario",
    "SCENARIOS",
    "run_experiment",
    "parse_sweep",
]


def __getattr__(name: str):
    # importlib (not ``from . import``): the from-import form re-enters
    # this hook while resolving the submodule attribute and recurses.
    if name in ("Scenario", "SCENARIOS", "run_experiment", "parse_sweep",
                "runner"):
        import importlib

        runner = importlib.import_module(".runner", __name__)
        if name == "runner":
            return runner
        return getattr(runner, name)
    if name == "library":
        import importlib

        return importlib.import_module(".library", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
