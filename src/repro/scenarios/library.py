"""Named integration setups shared by the chaos and failure-recovery
test suites (and usable from notebooks/demos).

Each builder assembles one small, fully-wired stack — VEEM + hosts, a
service manager, optionally a Condor cluster or monitoring journal — and
returns it as a :class:`types.SimpleNamespace` so callers can reach every
layer. The test modules stay thin wrappers: they pick a named setup,
inject their one fault, and assert; the topology lives here, once.

Builders are registered in :data:`SETUPS` by name; ``build(name, env)``
is the generic entry point.
"""

from __future__ import annotations

from types import SimpleNamespace

from ..cloud import (
    DeploymentDescriptor,
    Host,
    HypervisorTimings,
    ImageRepository,
    VEEM,
)
from ..core.manifest import ManifestBuilder
from ..core.service_manager import ServiceManager
from ..grid import CondorExecDriver, CondorScheduler, VirtualCluster
from ..monitoring import MeasurementJournal, MonitoringAgent

__all__ = [
    "FAILURE_TIMINGS",
    "CHAOS_TIMINGS",
    "SETUPS",
    "build",
    "make_veem",
    "make_service_manager",
    "simple_manifest",
    "web_tenant_manifest",
    "grid_manifest",
    "build_cluster",
]

#: fast-but-nonzero hypervisor latencies the failure suites standardise on
FAILURE_TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)
#: same, plus a visible migration suspend window for chaos-under-motion
CHAOS_TIMINGS = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2,
                                  migrate_suspend_s=2)


# ---------------------------------------------------------------------------
# Shared primitives
# ---------------------------------------------------------------------------

def make_veem(env, n_hosts: int = 3, *, timings=FAILURE_TIMINGS,
              trace=None) -> VEEM:
    """A single-site VEEM of identical 8-core/16 GB hosts with a fast
    image repository."""
    repo = ImageRepository(bandwidth_mb_per_s=1000)
    veem = VEEM(env, repository=repo, trace=trace)
    for i in range(n_hosts):
        veem.add_host(Host(env, f"h{i}", cpu_cores=8, memory_mb=16384,
                           timings=timings))
    return veem


def make_service_manager(env, n_hosts: int = 4, *,
                         timings=CHAOS_TIMINGS) -> ServiceManager:
    """A ServiceManager over a fresh single-site VEEM."""
    return ServiceManager(env, make_veem(env, n_hosts, timings=timings))


def simple_manifest(minimum: int = 1, initial: int = 1, maximum: int = 3):
    """One elastic web component; the scale-up rule never fires (its
    threshold is absurd), so instance counts move only via healing and
    explicit scale calls."""
    b = ManifestBuilder("svc")
    b.component("web", image_mb=500, cpu=1, memory_mb=1024,
                initial=initial, minimum=minimum, maximum=maximum)
    if maximum > minimum:
        b.kpi("C", "web", "a.b", default=0)
        b.rule("up", "@a.b > 1000000", "deployVM(web)")
    return b.build()


def web_tenant_manifest():
    """A two-instance web tier whose rule can never fire — used to prove
    failures in one tenant leave another untouched."""
    b = ManifestBuilder("web")
    b.component("web", image_mb=100, cpu=1, memory_mb=1024,
                initial=2, minimum=2, maximum=4)
    b.kpi("LB", "web", "web.load.level", default=0)
    b.rule("up", "(@web.load.level > 100) && (1 < 0)", "deployVM(web)")
    return b.build()


def grid_manifest(max_exec: int = 12):
    """The elastic grid service: exec nodes bootstrap from zero and scale
    with queue pressure."""
    b = ManifestBuilder("grid")
    b.component("exec", image_mb=100, cpu=1, memory_mb=1024,
                image_href="http://sm.internal/images/exec",
                initial=0, minimum=0, maximum=max_exec)
    b.kpi("GM", "exec", "grid.queue.size", frequency_s=10, default=0)
    b.kpi("Cluster", "exec", "grid.exec.instances", frequency_s=10,
          default=0)
    b.rule("bootstrap", "(@grid.queue.size > 0) && "
                        "(@grid.exec.instances < 2)", "deployVM(exec)")
    b.rule("up", "(@grid.queue.size / (@grid.exec.instances + 1) > 2) && "
                 f"(@grid.exec.instances < {max_exec})", "deployVM(exec)")
    return b.build()


def build_cluster(env, n_hosts: int = 2):
    """A bare Condor cluster (no service manager): VEEM, scheduler, and
    a VirtualCluster wired to a stock exec image."""
    veem = make_veem(env, n_hosts)
    veem.repository.add("condor-exec", size_mb=100)
    sched = CondorScheduler(env, match_delay_s=0.5)
    template = DeploymentDescriptor(
        name="condor-exec", memory_mb=2048, cpu=1,
        disk_source="http://sm.internal/images/condor-exec",
        service_id="polymorph", component_id="CondorExec")
    cluster = VirtualCluster(env, veem, sched, template,
                             registration_delay_s=5)
    return veem, sched, cluster


# ---------------------------------------------------------------------------
# Named setups
# ---------------------------------------------------------------------------

SETUPS: dict = {}


def _setup(name: str):
    def register(fn):
        SETUPS[name] = fn
        return fn
    return register


def build(name: str, env, **kwargs) -> SimpleNamespace:
    """Assemble the named setup on ``env`` and return its parts."""
    try:
        builder = SETUPS[name]
    except KeyError:
        raise KeyError(f"unknown setup {name!r}; "
                       f"one of {sorted(SETUPS)}") from None
    return builder(env, **kwargs)


@_setup("monitored-web")
def monitored_web(env, n_hosts: int = 4) -> SimpleNamespace:
    """One deployed web service with a heartbeat agent feeding a
    measurement journal — the stage for monitoring-under-migration."""
    sm = make_service_manager(env, n_hosts)
    b = ManifestBuilder("svc")
    b.component("app", image_mb=100, cpu=1, memory_mb=1024)
    service = sm.deploy(b.build(), service_id="svc-1")
    env.run(until=service.deployment)
    journal = MeasurementJournal()
    journal.subscribe_to(sm.network)
    agent = MonitoringAgent(env, service_id="svc-1", component="app",
                            network=sm.network)
    agent.expose("svc.app.heartbeat", lambda: 1, frequency_s=10)
    return SimpleNamespace(sm=sm, service=service, journal=journal,
                           agent=agent,
                           vm=service.lifecycle.components["app"].vms[0])


@_setup("elastic-grid")
def elastic_grid(env, n_hosts: int = 4) -> SimpleNamespace:
    """The elastic grid stack: scheduler + virtual cluster + the grid
    service wired through a CondorExecDriver, with its KPI agent."""
    sm = make_service_manager(env, n_hosts)
    sm.veem.repository.add("exec-img", size_mb=100,
                           href="http://sm.internal/images/exec")
    scheduler = CondorScheduler(env, match_delay_s=0.5, trace=sm.trace)
    cluster = VirtualCluster(
        env, sm.veem, scheduler,
        descriptor_template=DeploymentDescriptor(
            name="exec", memory_mb=1024, cpu=1,
            disk_source="http://sm.internal/images/exec",
            service_id="grid-1", component_id="exec"),
        registration_delay_s=5)
    service = sm.deploy(grid_manifest(), service_id="grid-1",
                        drivers={"exec": CondorExecDriver(cluster)})
    env.run(until=service.deployment)
    agent = MonitoringAgent(env, service_id="grid-1", component="GM",
                            network=sm.network)
    agent.expose("grid.queue.size", lambda: scheduler.queue_size,
                 frequency_s=10)
    agent.expose("grid.exec.instances", lambda: cluster.instance_count,
                 frequency_s=10)
    return SimpleNamespace(sm=sm, scheduler=scheduler, cluster=cluster,
                           service=service, agent=agent)


@_setup("two-web-tenants")
def two_web_tenants(env, n_hosts: int = 4) -> SimpleNamespace:
    """Two identical web tenants on one site, both fully deployed."""
    sm = make_service_manager(env, n_hosts)
    a = sm.deploy(web_tenant_manifest(), service_id="tenant-A")
    b = sm.deploy(web_tenant_manifest(), service_id="tenant-B")
    env.run(until=env.all_of([a.deployment, b.deployment]))
    return SimpleNamespace(sm=sm, a=a, b=b)


@_setup("condor-cluster")
def condor_cluster(env, n_hosts: int = 2) -> SimpleNamespace:
    veem, sched, cluster = build_cluster(env, n_hosts)
    return SimpleNamespace(veem=veem, scheduler=sched, cluster=cluster)
