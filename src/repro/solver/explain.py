"""Structured verdict explanations.

Every solver verdict — SAT or not — says *why* in a machine-readable way:
which constraint class pruned the last candidate, over which item, with
enough detail to act on (retry later, relax a constraint, grow the pool).
The control plane threads these into :class:`~repro.control.Rejected`
outcomes, trace records and metrics instead of free-text strings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["PruneCode", "Explanation"]


class PruneCode(enum.Enum):
    """Which constraint class killed the last candidate (or the model)."""

    CAPACITY = "capacity"              # no host has the cpu/memory free
    AFFINITY = "affinity"              # co-location anchor unreachable
    ANTI_AFFINITY = "anti-affinity"    # exclusion group exhausted the hosts
    ATTRIBUTE = "attribute"            # required host attribute missing
    COMPONENT_CAP = "component-cap"    # per-host instance cap reached
    PIN = "pin"                        # pinned host absent or full
    SITE = "site"                      # site-level eligibility (avoid/trust)
    QUOTA = "quota"                    # tenant quota ceiling
    BUDGET = "budget"                  # search budget exhausted (no verdict)
    UNSUPPORTED = "unsupported"        # constraint type the model can't encode


@dataclass(frozen=True)
class Explanation:
    """One structured verdict: the dominant prune code, a human-readable
    message, and a detail payload (per-code prune tallies, the item that
    had no candidates left, nodes spent, ...)."""

    code: PruneCode
    message: str
    detail: dict = field(default_factory=dict)

    def render(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items())
                           if k != "tallies")
        return (f"[{self.code.value}] {self.message}"
                + (f" ({extras})" if extras else ""))


def from_tallies(item_label: str, tallies: dict, **detail) -> Explanation:
    """Build an explanation from a per-code prune tally: the dominant code
    (most candidates pruned; deterministic tie-break on code value) wins."""
    if not tallies:
        return Explanation(PruneCode.CAPACITY,
                           f"no candidate hosts at all for {item_label}",
                           dict(detail))
    code = max(sorted(tallies, key=lambda c: c.value),
               key=lambda c: tallies[c])
    payload = {"item": item_label,
               "tallies": {c.value: n for c, n in sorted(
                   tallies.items(), key=lambda kv: kv[0].value)}}
    payload.update(detail)
    return Explanation(
        code,
        f"{code.value} pruned the last candidate host for {item_label}",
        payload)
