"""Defragmenting migration plans.

Elastic churn fragments a fleet: scale-downs free slots scattered across
many hosts, and later deployments fail even though the *total* free
capacity is ample. :func:`plan_defrag` computes an ordered batch of
``vm.migrate`` steps that drains the emptiest hosts into the fullest —
the HTN-style "deploy/migrate actions compose into an executable plan"
idea — and :func:`execute_plan` runs it through the VEEM.

Safety argument (DESIGN §15): the plan is built against a simulated copy
of host state and committed **all-or-nothing per source host**, applying
each step to the simulation in plan order. Because the simulation applies
steps sequentially with the same release-then-reserve bookkeeping the
VEEM uses at migration start, a plan that was buildable never
oversubscribes any intermediate state — :meth:`MigrationPlan.replay_safe`
re-checks that from scratch, and the executor re-validates every step
against live state (and aborts loudly) in case the world moved on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..cloud.capacity import HostType, _ffd_key, _pack_rows
from ..cloud.capacity import InstanceDemand
from ..cloud.vm import VMState
from .encode import UnsupportedConstraintError, compile_constraints
from .model import ModelConstraints

__all__ = ["MigrationStep", "MigrationPlan", "fragmentation_score",
           "plan_defrag", "execute_plan"]

_EPS = 1e-9


@dataclass(frozen=True)
class MigrationStep:
    """One ``vm.migrate`` in the batch."""

    vm_id: str
    from_host: str
    to_host: str
    cpu: float
    memory_mb: float


@dataclass(frozen=True)
class MigrationPlan:
    """An ordered, safety-checked migration batch with its payoff."""

    steps: tuple
    score_before: float
    score_after: float
    hosts_before: int       # hosts in use when the plan was built
    hosts_after: int        # hosts in use once every step lands

    def __bool__(self) -> bool:
        return bool(self.steps)

    def replay_safe(self, hosts: Sequence) -> list[str]:
        """Replay the steps against a host-state snapshot, checking that no
        intermediate state oversubscribes any host; returns the list of
        violations (empty = safe). Independent of the planner's own
        bookkeeping, so tests can hold the two together."""
        free = {h.name: [h.cpu_free, h.memory_free] for h in hosts}
        problems: list[str] = []
        for i, step in enumerate(self.steps):
            if step.to_host not in free:
                problems.append(f"step {i}: unknown target {step.to_host!r}")
                continue
            target = free[step.to_host]
            if step.cpu > target[0] + _EPS or step.memory_mb > target[1] + _EPS:
                problems.append(
                    f"step {i}: {step.vm_id} oversubscribes {step.to_host} "
                    f"(cpu_free={target[0]:.3f}, mem_free={target[1]:.1f})")
            # Mirror the VEEM: release on the source and reserve on the
            # target both happen at migration *start*.
            if step.from_host in free:
                free[step.from_host][0] += step.cpu
                free[step.from_host][1] += step.memory_mb
            target[0] -= step.cpu
            target[1] -= step.memory_mb
        return problems


def fragmentation_score(hosts: Sequence) -> float:
    """How far the fleet is from its ideal packing, in [0, 1).

    ``(hosts_in_use - ideal_FFD_hosts) / hosts_in_use`` — 0.0 means the
    resident VMs could not occupy fewer hosts (by the FFD estimate, using
    the first live host's shape); higher means more reclaimable hosts.
    """
    live = [h for h in hosts if not h.failed]
    used = [h for h in live if h.vms]
    if not used:
        return 0.0
    shape = HostType(live[0].cpu_cores, live[0].memory_mb)
    demands = [InstanceDemand(vm.descriptor.component_id or "vm",
                              vm.descriptor.cpu, vm.descriptor.memory_mb)
               for h in used for vm in h.vms]
    rows = ((d.cpu, d.memory_mb, -1, d.component)
            for d in sorted(demands, key=_ffd_key))
    ideal = _pack_rows(rows, shape, track_counts=False)
    return max(0.0, (len(used) - ideal) / len(used))


class _SimHost:
    """Planner-side host state: live capacities plus residency, advanced
    step by step as the plan grows."""

    __slots__ = ("index", "name", "cpu_free", "mem_free", "attributes",
                 "resident", "movable", "pinned")

    def __init__(self, index, host):
        self.index = index
        self.name = host.name
        self.cpu_free = host.cpu_free
        self.mem_free = host.memory_free
        self.attributes = host.attributes
        self.resident: dict = {}
        self.movable = []       # RUNNING VMs, free to migrate
        self.pinned = 0         # VMs in other states: the host can't empty
        for vm in host.vms:
            d = vm.descriptor
            key = (d.service_id, d.component_id)
            self.resident[key] = self.resident.get(key, 0) + 1
            if vm.state is VMState.RUNNING:
                self.movable.append(vm)
            else:
                self.pinned += 1

    @property
    def used_key(self) -> tuple:
        """Ascending-utilisation sort key (memory used first, like FFD)."""
        return (sum(vm.descriptor.memory_mb for vm in self.movable),
                sum(vm.descriptor.cpu for vm in self.movable),
                self.index)


def _admits(cons: ModelConstraints, sim_target: _SimHost, vm,
            sim_hosts) -> bool:
    """Would moving ``vm`` onto ``sim_target`` keep the constraint set
    satisfied? Stricter than the live placer where migration could create
    states placement would never have (anti-affinity is checked in both
    directions) — a defrag must only ever *improve* the fleet."""
    d = vm.descriptor
    comp, svc = d.component_id, d.service_id
    for c_comp, attr, value in cons.attribute_requirements:
        if c_comp == comp and sim_target.attributes.get(attr) != value:
            return False
    if svc is None:
        return True
    for c_comp, cap in cons.caps:
        if (c_comp == comp
                and sim_target.resident.get((svc, comp), 0) >= cap):
            return False
    for a, avoid in cons.anti_affinities:
        if a == comp and sim_target.resident.get((svc, avoid), 0) > 0:
            return False
        if avoid == comp and sim_target.resident.get((svc, a), 0) > 0:
            return False
    for a, with_comp in cons.affinities:
        if a == comp:
            anchored = any(s.resident.get((svc, with_comp), 0) > 0
                           for s in sim_hosts)
            if anchored and sim_target.resident.get((svc, with_comp),
                                                    0) <= 0:
                return False
        if with_comp == comp:
            # Moving an anchor away from its dependents would break them;
            # only allowed when another anchor instance stays behind.
            source = next(s for s in sim_hosts if s.name == vm.host.name)
            if (source.resident.get((svc, a), 0) > 0
                    and source.resident.get((svc, comp), 0) <= 1):
                return False
    return True


def plan_defrag(veem, *, max_steps: Optional[int] = None) -> MigrationPlan:
    """Build a consolidation plan for one site's fleet.

    Drain candidates are visited emptiest-first; each is drained
    **all-or-nothing** (a half-drained host frees nothing), every VM going
    to the tightest-fitting fuller host that passes the placer's
    constraint set. Hosts that received VMs (or hold non-RUNNING VEEs)
    are never drained. Deterministic: ties break on host index and vm id.
    """
    score_before = fragmentation_score(veem.hosts)
    try:
        cons = compile_constraints(veem.placer.constraints)
    except UnsupportedConstraintError:
        # An unknown constraint type: no move is provably safe.
        used = sum(1 for h in veem.hosts if not h.failed and h.vms)
        return MigrationPlan((), score_before, score_before, used, used)
    sims = [_SimHost(i, h) for i, h in enumerate(veem.hosts)
            if not h.failed]
    hosts_before = sum(1 for s in sims if s.pinned or s.movable)
    steps: list[MigrationStep] = []
    closed: set[str] = set()        # drained sources: never targets again
    received: set[str] = set()      # got VMs: never sources
    sources = sorted((s for s in sims if s.movable and s.pinned == 0),
                     key=lambda s: s.used_key)
    for source in sources:
        if source.name in received or not source.movable:
            continue
        tentative: list[tuple] = []     # (vm, target) applied to the sim
        ok = True
        for vm in sorted(source.movable,
                         key=lambda v: (_ffd_key(InstanceDemand(
                             "", v.descriptor.cpu,
                             v.descriptor.memory_mb)), v.vm_id)):
            d = vm.descriptor
            candidates = [
                t for t in sims
                if t is not source and t.name not in closed
                and (t.movable or t.pinned)   # already in use: moving into
                #                               an empty host frees nothing
                and d.cpu <= t.cpu_free + _EPS
                and d.memory_mb <= t.mem_free + _EPS
                and _admits(cons, t, vm, sims)
            ]
            if not candidates:
                ok = False
                break
            target = min(candidates,
                         key=lambda t: (t.mem_free, t.cpu_free, t.index))
            _sim_move(source, target, vm)
            tentative.append((vm, target))
        if ok and tentative and (max_steps is None
                                 or len(steps) + len(tentative) <= max_steps):
            for vm, target in tentative:
                steps.append(MigrationStep(
                    vm_id=vm.vm_id, from_host=source.name,
                    to_host=target.name, cpu=vm.descriptor.cpu,
                    memory_mb=vm.descriptor.memory_mb))
                received.add(target.name)
            source.movable = []
            closed.add(source.name)
        else:
            for vm, target in reversed(tentative):
                _sim_move(target, source, vm)
    hosts_after = sum(1 for s in sims if s.pinned or s.movable)
    score_after = _sim_score(sims, veem.hosts)
    return MigrationPlan(tuple(steps), score_before, score_after,
                         hosts_before, hosts_after)


def _sim_move(source: _SimHost, target: _SimHost, vm) -> None:
    d = vm.descriptor
    key = (d.service_id, d.component_id)
    source.cpu_free += d.cpu
    source.mem_free += d.memory_mb
    source.resident[key] -= 1
    if vm in source.movable:
        source.movable.remove(vm)
    target.cpu_free -= d.cpu
    target.mem_free -= d.memory_mb
    target.resident[key] = target.resident.get(key, 0) + 1
    target.movable.append(vm)


def _sim_score(sims, hosts) -> float:
    used = [s for s in sims if s.pinned or s.movable]
    if not used:
        return 0.0
    live = [h for h in hosts if not h.failed]
    shape = HostType(live[0].cpu_cores, live[0].memory_mb)
    demands = sorted(
        (InstanceDemand(vm.descriptor.component_id or "vm",
                        vm.descriptor.cpu, vm.descriptor.memory_mb)
         for s in sims for vm in s.movable),
        key=_ffd_key)
    # Pinned (non-RUNNING) VMs are invisible to the movable scan above;
    # fall back to counting their hosts as irreducible.
    rows = ((d.cpu, d.memory_mb, -1, d.component) for d in demands)
    ideal = _pack_rows(rows, shape, track_counts=False) if demands else 0
    ideal += sum(1 for s in sims if s.pinned and not s.movable)
    return max(0.0, (len(used) - ideal) / len(used))


def execute_plan(veem, plan: MigrationPlan):
    """Run a plan through the VEEM; returns the executing process.

    Each step is re-validated against live state right before its
    ``vm.migrate`` — the fleet may have moved on since planning — and the
    batch aborts (with a ``defrag.aborted`` trace record) on the first
    invalidated step rather than improvising.
    """
    return veem.env.process(_execute(veem, plan), name=f"defrag:{veem.name}")


def _execute(veem, plan: MigrationPlan):
    trace = veem.trace
    trace.emit(veem.name, "defrag.start", steps=len(plan.steps),
               score_before=plan.score_before,
               score_after=plan.score_after)
    executed = 0
    for step in plan.steps:
        vm = veem.vms.get(step.vm_id)
        target = next((h for h in veem.hosts if h.name == step.to_host),
                      None)
        if (vm is None or vm.state is not VMState.RUNNING
                or vm.host is None or vm.host.name != step.from_host
                or target is None or target.failed
                or not target.fits(vm.descriptor.cpu,
                                   vm.descriptor.memory_mb)):
            trace.emit(veem.name, "defrag.aborted", step=executed,
                       vm=step.vm_id, to_host=step.to_host)
            break
        yield veem.migrate(vm, target)
        executed += 1
    trace.emit(veem.name, "defrag.done", executed=executed,
               planned=len(plan.steps))
    return executed
