"""Constraint-model placement solver (DESIGN §15).

The greedy :class:`~repro.cloud.placement.Placer` and the FFD admission
packer are fast but incomplete: a sequential first-fit can paint itself
into a corner that a joint assignment escapes. This package encodes
placement as an explicit constraint model (:mod:`.model`, compiled from
manifests and live host state by :mod:`.encode`), solves it with budgeted
backtracking search (:mod:`.search`), and builds three capabilities on
top:

* **fallback placement** — the control plane re-plans a service whose
  greedy deployment raised :class:`~repro.cloud.errors.CapacityError`
  and retries with per-instance host pins;
* **what-if admission** (:mod:`.whatif`) — federation-wide "would this
  manifest fit, where, at what committed cost?" probes that never mutate
  any site;
* **defragmenting migration plans** (:mod:`.defrag`) — ordered,
  safety-checked ``vm.migrate`` batches that consolidate a fragmented
  fleet.

Every verdict carries a structured :class:`~.explain.Explanation` saying
which constraint pruned the last candidate.
"""

from .defrag import (
    MigrationPlan,
    MigrationStep,
    execute_plan,
    fragmentation_score,
    plan_defrag,
)
from .encode import (
    ItemSpec,
    encode_admission,
    encode_items,
    encode_service,
    snapshot_hosts,
)
from .explain import Explanation, PruneCode
from .model import (
    HostView,
    Item,
    ModelConstraints,
    PlacementModel,
    SearchBudget,
    Solution,
    Unsolved,
)
from .search import solve
from .whatif import SiteVerdict, WhatIfReport, what_if

__all__ = [
    "Explanation",
    "PruneCode",
    "Item",
    "HostView",
    "ModelConstraints",
    "PlacementModel",
    "SearchBudget",
    "Solution",
    "Unsolved",
    "solve",
    "ItemSpec",
    "encode_items",
    "encode_service",
    "encode_admission",
    "snapshot_hosts",
    "SiteVerdict",
    "WhatIfReport",
    "what_if",
    "MigrationStep",
    "MigrationPlan",
    "fragmentation_score",
    "plan_defrag",
    "execute_plan",
]
