"""Compile manifests, live hosts and admission tables into the model.

Three encoders cover the solver's call sites:

* :func:`encode_service` — a service's initial instance set against a
  site's live hosts (the control plane's fallback re-plan after a greedy
  :class:`~repro.cloud.errors.CapacityError`);
* :func:`encode_admission` — a candidate manifest's worst case plus an
  :class:`~repro.cloud.capacity.AdmissionController`'s committed ceiling
  onto the pool's empty bins (the exact what-if verdict where the FFD
  packer refused);
* :func:`encode_items` — the raw items × hosts × constraints assembly the
  other two are built on.

Constraint compilation mirrors the live placer exactly: the model's
residency checks are ``(service_id, component)``-scoped just like
``_same_service``, so a solver verdict is a statement about what the real
:class:`~repro.cloud.placement.Placer` would accept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..cloud.capacity import AdmissionController, demand_envelope
from ..cloud.placement import (
    Affinity,
    AntiAffinity,
    AttributeRequirement,
    ComponentCap,
)
from ..core.manifest.model import ServiceManifest
from .model import HostView, Item, ModelConstraints, PlacementModel

__all__ = ["ItemSpec", "UnsupportedConstraintError", "compile_constraints",
           "snapshot_hosts", "encode_items", "encode_service",
           "encode_admission"]


class UnsupportedConstraintError(ValueError):
    """A placer constraint type the model cannot encode — callers fall
    back to the greedy verdict rather than solve an unfaithful model."""


@dataclass(frozen=True)
class ItemSpec:
    """One instance to place, before model indexing."""

    name: str
    component: str
    service_id: Optional[str]
    cpu: float
    memory_mb: float


def snapshot_hosts(hosts: Sequence) -> list[HostView]:
    """Copy live :class:`~repro.cloud.veeh.Host` state into host views.

    Failed hosts are skipped (they admit nothing); residency counts every
    reserved VM — a PENDING or MIGRATING VEE holds capacity exactly like a
    RUNNING one.
    """
    views: list[HostView] = []
    for index, host in enumerate(hosts):
        if getattr(host, "failed", False):
            continue
        resident: dict = {}
        for vm in host.vms:
            d = vm.descriptor
            key = (d.service_id, d.component_id)
            resident[key] = resident.get(key, 0) + 1
        views.append(HostView(
            index=index, name=host.name,
            cpu_free=host.cpu_free, mem_free=host.memory_free,
            attributes=dict(host.attributes), resident=resident,
        ))
    return views


def compile_constraints(constraints: Iterable) -> ModelConstraints:
    """Placer constraint objects → the model's compiled tuples.

    Raises :class:`UnsupportedConstraintError` for constraint types the
    model has no encoding for (user-defined subclasses): solving a model
    that silently drops a hard predicate would "rescue" placements the
    live placer then refuses.
    """
    affinities, antis, caps, attrs = [], [], [], []
    for c in constraints:
        if isinstance(c, Affinity):
            affinities.append((c.component, c.with_component))
        elif isinstance(c, AntiAffinity):
            antis.append((c.component, c.avoid_component))
        elif isinstance(c, ComponentCap):
            caps.append((c.component, c.cap))
        elif isinstance(c, AttributeRequirement):
            attrs.append((c.component, c.attribute, c.value))
        else:
            raise UnsupportedConstraintError(
                f"cannot encode {type(c).__name__}")
    return ModelConstraints(
        affinities=tuple(affinities), anti_affinities=tuple(antis),
        caps=tuple(caps), attribute_requirements=tuple(attrs),
    )


def encode_items(specs: Iterable[ItemSpec], hosts: Sequence[HostView],
                 constraints: Optional[ModelConstraints] = None
                 ) -> PlacementModel:
    items = [Item(index=i, name=s.name, component=s.component,
                  service_id=s.service_id, cpu=s.cpu,
                  memory_mb=s.memory_mb)
             for i, s in enumerate(specs)]
    return PlacementModel(
        items=items, hosts=list(hosts),
        constraints=constraints or ModelConstraints(),
    )


def _instance_name(system_id: str, instance: int) -> str:
    # Must match ParsedService.descriptor_for so plan keys line up with
    # the descriptors the lifecycle will actually generate.
    return system_id if instance == 0 else f"{system_id}-{instance}"


def service_specs(manifest: ServiceManifest, *,
                  service_id: Optional[str] = None) -> list[ItemSpec]:
    """The manifest's initial instance set, in deployment naming order."""
    specs: list[ItemSpec] = []
    for system in manifest.virtual_systems:
        for instance in range(system.instances.initial):
            specs.append(ItemSpec(
                name=_instance_name(system.system_id, instance),
                component=system.system_id, service_id=service_id,
                cpu=system.hardware.cpu,
                memory_mb=system.hardware.memory_mb,
            ))
    return specs


def manifest_constraints(manifest: ServiceManifest) -> ModelConstraints:
    """MDL5 placement section → model constraints (the same mapping as
    ``ParsedService.placement_constraints``)."""
    placement = manifest.placement
    return ModelConstraints(
        affinities=tuple((c.system_id, c.with_system_id)
                         for c in placement.colocations),
        anti_affinities=tuple((a.system_id, a.avoid_system_id)
                              for a in placement.anti_colocations),
        caps=tuple((system_id, cap)
                   for system_id, cap in placement.per_host_caps),
    )


def encode_service(manifest: ServiceManifest, hosts: Sequence, *,
                   service_id: Optional[str] = None,
                   constraints: Optional[Iterable] = None
                   ) -> PlacementModel:
    """A service's initial instances against live hosts.

    ``constraints`` takes the owning placer's live constraint list (which
    may include other services' installed constraints — same-named
    components are service-scoped at check time, so compiling them all is
    exactly the live behaviour); omitted, the manifest's own placement
    section is compiled.
    """
    compiled = (compile_constraints(constraints)
                if constraints is not None
                else manifest_constraints(manifest))
    return encode_items(
        service_specs(manifest, service_id=service_id),
        snapshot_hosts(hosts), compiled,
    )


def encode_admission(admission: AdmissionController,
                     manifest: ServiceManifest, *,
                     service_id: Optional[str] = None) -> PlacementModel:
    """The committed worst case plus a candidate, on the pool's empty bins.

    Committed rows keep their owner token as a synthetic service id, so
    per-host caps stay service-scoped like the live placer (a deliberate
    refinement of the FFD packer, which tallies caps by bare component
    name); the candidate's ceiling gets ``service_id``.
    """
    specs: list[ItemSpec] = []
    caps: dict[str, int] = {}
    for token, comp, cpu, mem, cap in admission.committed_rows():
        specs.append(ItemSpec(
            name=f"committed-{token}-{len(specs)}", component=comp,
            service_id=f"committed-{token}", cpu=cpu, memory_mb=mem,
        ))
        if cap is not None:
            caps.setdefault(comp, cap)
    candidate = service_id or f"candidate-{manifest.service_name}"
    envelope = demand_envelope(manifest)
    for i, d in enumerate(envelope.ceiling):
        specs.append(ItemSpec(
            name=f"{candidate}-{d.component}-{i}", component=d.component,
            service_id=candidate, cpu=d.cpu, memory_mb=d.memory_mb,
        ))
        if d.per_host_cap is not None:
            caps.setdefault(d.component, d.per_host_cap)
    host = admission.host
    bins = [HostView(index=i, name=f"bin-{i}",
                     cpu_free=host.cpu_cores, mem_free=host.memory_mb)
            for i in range(admission.pool_hosts)]
    return encode_items(
        specs, bins,
        ModelConstraints(caps=tuple(sorted(caps.items()))),
    )
