"""The placement constraint model.

A :class:`PlacementModel` is the solver's entire world: the items to
place (one per VM instance, with cpu/memory demand), the candidate hosts
(free-capacity snapshots with current residency), and the compiled
constraint sets — co-location and anti-location groups, per-host
component caps, host-attribute requirements. :mod:`repro.solver.encode`
compiles manifests, live hosts and admission tables into this shape;
:mod:`repro.solver.search` solves it. The model never aliases live
infrastructure objects, so solving is side-effect free by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .explain import Explanation

__all__ = ["Item", "HostView", "ModelConstraints", "PlacementModel",
           "SearchBudget", "Solution", "Unsolved"]


@dataclass(frozen=True)
class Item:
    """One VM instance to place."""

    index: int
    name: str                       # descriptor name (stable plan key)
    component: str
    service_id: Optional[str]
    cpu: float
    memory_mb: float

    @property
    def shape_key(self) -> tuple:
        """Items with equal shape keys are interchangeable for search."""
        return (self.component, self.service_id, self.cpu, self.memory_mb)


@dataclass
class HostView:
    """A snapshot of one host (or one empty admission bin): free capacity,
    attributes, and resident instance counts by ``(service_id, component)``.
    Mutated only by the search's place/unplace bookkeeping — never a live
    :class:`~repro.cloud.veeh.Host`."""

    index: int
    name: str
    cpu_free: float
    mem_free: float
    attributes: dict = field(default_factory=dict)
    resident: dict = field(default_factory=dict)

    def signature(self) -> tuple:
        """Value-symmetry key: hosts with equal signatures are
        interchangeable for every remaining item, so search tries only the
        first of each equivalence class."""
        return (self.cpu_free, self.mem_free,
                tuple(sorted(self.attributes.items())),
                tuple(sorted((k, v) for k, v in self.resident.items()
                             if v > 0)))


@dataclass(frozen=True)
class ModelConstraints:
    """Compiled constraint sets (component-name scoped, residency checks
    restricted to the same ``service_id`` — the live
    :class:`~repro.cloud.placement.PlacementConstraint` semantics)."""

    #: ``component`` must share a host with some ``with_component`` instance
    affinities: tuple = ()          # (component, with_component)
    #: ``component`` must not share a host with ``avoid_component``
    anti_affinities: tuple = ()     # (component, avoid_component)
    #: at most N instances of ``component`` per host
    caps: tuple = ()                # (component, cap)
    #: host attribute must equal the value for ``component``
    attribute_requirements: tuple = ()  # (component, attribute, value)

    def cap_for(self, component: str) -> Optional[int]:
        for comp, cap in self.caps:
            if comp == component:
                return cap
        return None


@dataclass
class PlacementModel:
    """Items × hosts × constraints — everything one solve needs."""

    items: list
    hosts: list
    constraints: ModelConstraints = field(default_factory=ModelConstraints)

    def validate_assignment(self, assignment) -> list[str]:
        """Independent check of a finished assignment (host index per item):
        returns violation descriptions (empty = sound). Used by tests and
        the defrag safety replay — deliberately a from-scratch evaluation,
        not the search's incremental bookkeeping."""
        problems: list[str] = []
        free = {h.index: [h.cpu_free, h.mem_free] for h in self.hosts}
        resident = {h.index: dict(h.resident) for h in self.hosts}
        hosts_by_index = {h.index: h for h in self.hosts}
        for item, j in zip(self.items, assignment):
            host = hosts_by_index[j]
            free[j][0] -= item.cpu
            free[j][1] -= item.memory_mb
            key = (item.service_id, item.component)
            resident[j][key] = resident[j].get(key, 0) + 1
            for comp, attr, value in self.constraints.attribute_requirements:
                if comp == item.component \
                        and host.attributes.get(attr) != value:
                    problems.append(f"{item.name}: attribute {attr}!={value!r}"
                                    f" on {host.name}")
        eps = 1e-9
        for j, (cpu, mem) in free.items():
            if cpu < -eps or mem < -eps:
                problems.append(f"{hosts_by_index[j].name}: oversubscribed "
                                f"(cpu_free={cpu:.3f}, mem_free={mem:.1f})")
        for j, counts in resident.items():
            for comp, cap in self.constraints.caps:
                # Live ComponentCap counts same-service instances only.
                per_service: dict = {}
                for (svc, c), n in counts.items():
                    if c == comp and svc is not None:
                        per_service[svc] = per_service.get(svc, 0) + n
                for svc, placed in sorted(per_service.items()):
                    if placed > cap:
                        problems.append(
                            f"{hosts_by_index[j].name}: {placed} × {comp} "
                            f"(service {svc}) exceeds cap {cap}")
            for a, avoid in self.constraints.anti_affinities:
                services = {svc for (svc, c), n in counts.items()
                            if n > 0 and c == a and svc is not None}
                for svc in sorted(services):
                    if counts.get((svc, avoid), 0) > 0:
                        problems.append(
                            f"{hosts_by_index[j].name}: {a} co-resident "
                            f"with {avoid} (service {svc})")
        for a, with_comp in self.constraints.affinities:
            for item, j in zip(self.items, assignment):
                if item.component != a or item.service_id is None:
                    continue
                anchor = (item.service_id, with_comp)
                anywhere = any(counts.get(anchor, 0) > 0
                               for counts in resident.values())
                if anywhere and resident[j].get(anchor, 0) <= 0:
                    problems.append(f"{item.name}: not co-located with "
                                    f"{with_comp}")
        return problems


@dataclass(frozen=True)
class SearchBudget:
    """Bounds on one solve. ``max_nodes`` counts assignment attempts and is
    the budget every *decision-affecting* caller uses — it is deterministic,
    so sharded replays reach identical verdicts. ``max_seconds`` (wall
    clock) is opt-in for interactive probes only; never set it on a path a
    determinism contract covers."""

    max_nodes: int = 4096
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_nodes <= 0:
            raise ValueError("max_nodes must be positive")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive")


@dataclass(frozen=True)
class Solution:
    """SAT: ``assignment[i]`` is the host index for ``model.items[i]``."""

    assignment: tuple
    nodes: int

    def by_name(self, model: PlacementModel) -> dict:
        hosts = {h.index: h.name for h in model.hosts}
        return {item.name: hosts[j]
                for item, j in zip(model.items, self.assignment)}


@dataclass(frozen=True)
class Unsolved:
    """UNSAT (or budget exhausted: ``exhausted=True`` means *no verdict*,
    not infeasibility) with the structured reason."""

    explanation: Explanation
    nodes: int
    exhausted: bool = False
