"""Budgeted backtracking search over a :class:`PlacementModel`.

The greedy :class:`~repro.cloud.placement.Placer` commits one instance at
a time and never revisits a choice; this solver assigns the whole item
set jointly. The search is classic CSP machinery, tuned for placement:

* **stage order** — affinity anchors (the ``with_component`` side) are
  assigned before their dependents, so the "co-locate with X" predicate
  is evaluated against X's *final* location. Cyclic affinity groups
  collapse into one stage and fall back to the greedy, placement-time
  evaluation order.
* **MRV variable order** — within the current stage, pick the item with
  the fewest surviving candidate hosts (ties: larger demand first, then
  lower index). Fail-first: the tightest item fails the subtree fastest.
* **tightest-fit value order** — try fitting hosts fullest-first (ties:
  host index), the packing analogue of least-constraining-last.
* **value symmetry breaking** — hosts with identical free capacity,
  attributes and residency are interchangeable for every remaining item;
  only the first of each equivalence class is tried.
* **forward checking** — after each tentative assignment, every
  unassigned item must still have at least one candidate (affinity
  excluded: placing a future anchor can only *add* candidates, so
  pruning on it would be unsound).
* **deterministic budget** — nodes are assignment attempts; identical
  models reach identical verdicts on every run and every shard. An
  optional wall-clock bound exists for interactive probes only.

Every dead end records which constraint pruned the last candidate; the
deepest failure becomes the :class:`~.explain.Explanation` on UNSAT.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from .explain import Explanation, PruneCode, from_tallies
from .model import (
    HostView,
    PlacementModel,
    SearchBudget,
    Solution,
    Unsolved,
)

__all__ = ["solve"]

_EPS = 1e-9


class _Exhausted(Exception):
    pass


def solve(model: PlacementModel,
          budget: Optional[SearchBudget] = None
          ) -> Union[Solution, Unsolved]:
    """Find a full assignment or explain why there is none.

    The model's host views are copied at entry; the caller's snapshot is
    never mutated.
    """
    budget = budget or SearchBudget()
    items = model.items
    if not items:
        return Solution(assignment=(), nodes=0)
    hosts = [HostView(h.index, h.name, h.cpu_free, h.mem_free,
                      dict(h.attributes), dict(h.resident))
             for h in model.hosts]
    cons = model.constraints
    aff_by_comp: dict[str, list[str]] = {}
    for comp, with_comp in cons.affinities:
        aff_by_comp.setdefault(comp, []).append(with_comp)
    anti_by_comp: dict[str, list[str]] = {}
    for comp, avoid in cons.anti_affinities:
        anti_by_comp.setdefault(comp, []).append(avoid)
    cap_by_comp: dict[str, int] = {}
    for comp, cap in cons.caps:
        cap_by_comp.setdefault(comp, cap)
    attr_by_comp: dict[str, list[tuple[str, object]]] = {}
    for comp, attr, value in cons.attribute_requirements:
        attr_by_comp.setdefault(comp, []).append((attr, value))

    stage = _stage_order(items, aff_by_comp)
    # (service_id, component) -> instances placed anywhere (snapshot + search)
    anchor_counts: dict[tuple, int] = {}
    for h in hosts:
        for key, n in h.resident.items():
            if n > 0:
                anchor_counts[key] = anchor_counts.get(key, 0) + n

    n_items = len(items)
    assignment: list[Optional[int]] = [None] * n_items
    nodes = 0
    deadline = (time.monotonic() + budget.max_seconds
                if budget.max_seconds is not None else None)
    # deepest dead end seen: (depth, item name, prune tallies)
    failure: Optional[tuple[int, str, dict]] = None

    def check(item, host, tallies, with_affinity) -> bool:
        if (item.cpu > host.cpu_free + _EPS
                or item.memory_mb > host.mem_free + _EPS):
            tallies[PruneCode.CAPACITY] = \
                tallies.get(PruneCode.CAPACITY, 0) + 1
            return False
        comp = item.component
        for attr, value in attr_by_comp.get(comp, ()):
            if host.attributes.get(attr) != value:
                tallies[PruneCode.ATTRIBUTE] = \
                    tallies.get(PruneCode.ATTRIBUTE, 0) + 1
                return False
        svc = item.service_id
        if svc is None:
            # Affinity/anti-affinity/caps all scope to a service; a
            # service-less item (raw descriptor) escapes them — exactly the
            # live ``_same_service`` semantics.
            return True
        cap = cap_by_comp.get(comp)
        if cap is not None and host.resident.get((svc, comp), 0) >= cap:
            tallies[PruneCode.COMPONENT_CAP] = \
                tallies.get(PruneCode.COMPONENT_CAP, 0) + 1
            return False
        for avoid in anti_by_comp.get(comp, ()):
            if host.resident.get((svc, avoid), 0) > 0:
                tallies[PruneCode.ANTI_AFFINITY] = \
                    tallies.get(PruneCode.ANTI_AFFINITY, 0) + 1
                return False
        if with_affinity:
            for with_comp in aff_by_comp.get(comp, ()):
                anchor = (svc, with_comp)
                if (anchor_counts.get(anchor, 0) > 0
                        and host.resident.get(anchor, 0) <= 0):
                    tallies[PruneCode.AFFINITY] = \
                        tallies.get(PruneCode.AFFINITY, 0) + 1
                    return False
        return True

    def place(item, host) -> None:
        host.cpu_free -= item.cpu
        host.mem_free -= item.memory_mb
        key = (item.service_id, item.component)
        host.resident[key] = host.resident.get(key, 0) + 1
        anchor_counts[key] = anchor_counts.get(key, 0) + 1

    def unplace(item, host) -> None:
        host.cpu_free += item.cpu
        host.mem_free += item.memory_mb
        key = (item.service_id, item.component)
        host.resident[key] -= 1
        anchor_counts[key] -= 1

    def candidates(item, with_affinity=True):
        tallies: dict = {}
        found = [h for h in hosts if check(item, h, tallies, with_affinity)]
        return found, tallies

    def backtrack(depth: int) -> bool:
        nonlocal nodes, failure
        if depth == n_items:
            return True
        if deadline is not None and time.monotonic() > deadline:
            raise _Exhausted
        min_stage = min(stage[i] for i in range(n_items)
                        if assignment[i] is None)
        chosen = None           # (mrv key, item index, candidate hosts)
        for i in range(n_items):
            if assignment[i] is not None or stage[i] != min_stage:
                continue
            item = items[i]
            cands, tallies = candidates(item)
            deduped, seen = [], set()
            for h in sorted(cands,
                            key=lambda h: (h.mem_free, h.cpu_free, h.index)):
                sig = h.signature()
                if sig not in seen:
                    seen.add(sig)
                    deduped.append(h)
            if not deduped:
                if failure is None or depth > failure[0]:
                    failure = (depth, item.name, tallies)
                return False
            key = (len(deduped), -item.memory_mb, -item.cpu, i)
            if chosen is None or key < chosen[0]:
                chosen = (key, i, deduped)
        assert chosen is not None
        _, i, deduped = chosen
        item = items[i]
        for host in deduped:
            nodes += 1
            if nodes > budget.max_nodes:
                raise _Exhausted
            place(item, host)
            assignment[i] = host.index
            ok = _forward_consistent(depth + 1) and backtrack(depth + 1)
            if ok:
                return True
            assignment[i] = None
            unplace(item, host)
        return False

    def _forward_consistent(depth: int) -> bool:
        nonlocal failure
        for k in range(n_items):
            if assignment[k] is not None:
                continue
            item = items[k]
            tallies: dict = {}
            if not any(check(item, h, tallies, False) for h in hosts):
                if failure is None or depth > failure[0]:
                    failure = (depth, item.name, tallies)
                return False
        return True

    try:
        if backtrack(0):
            return Solution(assignment=tuple(assignment), nodes=nodes)
    except _Exhausted:
        return Unsolved(
            explanation=Explanation(
                PruneCode.BUDGET,
                f"search budget exhausted after {nodes} node(s)",
                {"nodes": nodes, "max_nodes": budget.max_nodes}),
            nodes=nodes, exhausted=True)
    depth, name, tallies = failure if failure is not None \
        else (0, items[0].name, {})
    return Unsolved(
        explanation=from_tallies(name, tallies, depth=depth, nodes=nodes),
        nodes=nodes)


def _stage_order(items, aff_by_comp) -> list[int]:
    """Per-item stage index: affinity anchors before dependents.

    Longest-chain relaxation over the component dependency graph
    (``a`` co-locates with ``b`` ⇒ ``b``'s stage < ``a``'s), iterated at
    most |components| times so cycles terminate (cyclic groups end up
    level and are evaluated greedily at placement time)."""
    comps = {item.component for item in items}
    level = {c: 0 for c in comps}
    for _ in range(len(comps)):
        changed = False
        for a, anchors in aff_by_comp.items():
            if a not in level:
                continue
            for b in anchors:
                if b in level and level[a] < level[b] + 1:
                    level[a] = level[b] + 1
                    changed = True
        if not changed:
            break
    return [level[item.component] for item in items]
