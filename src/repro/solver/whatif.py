"""What-if admission: "would this manifest fit, where, at what cost?"

A federation-wide probe over a :class:`~repro.control.plane.ControlPlane`
that replays the *decision* pipeline of ``submit()`` — eligibility
screens, tenant quota, per-site guaranteed-capacity packing, the ranked
site choice — without reserving anything, queueing anything, or touching
any site's admission tables. Where the FFD packer refuses, the exact
constraint solver gets a second opinion, so the report distinguishes
"submit would admit this now" from "a joint repack could fit it" from
"infeasible, and here is the constraint that kills it".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cloud.capacity import demand_envelope
from .encode import encode_admission
from .explain import Explanation, PruneCode
from .model import SearchBudget, Solution
from .search import solve

__all__ = ["SiteVerdict", "WhatIfReport", "what_if"]


@dataclass(frozen=True)
class SiteVerdict:
    """One federation member's answer."""

    site: str
    eligible: bool
    #: would `submit()` admit here right now? (the FFD admission verdict)
    admits_now: bool
    #: could a joint repack fit it? None = solver not consulted
    solver_fits: Optional[bool]
    pool_hosts: int
    #: hosts committed to admitted worst cases before / after the candidate
    hosts_before: int
    hosts_after: Optional[int]
    explanation: Optional[Explanation] = None

    @property
    def fits(self) -> bool:
        return self.admits_now or bool(self.solver_fits)

    @property
    def committed_cost(self) -> Optional[int]:
        """Extra hosts the candidate's worst case commits on this site."""
        if self.hosts_after is None:
            return None
        return self.hosts_after - self.hosts_before


@dataclass(frozen=True)
class WhatIfReport:
    """The federation-wide answer, site by site."""

    service_name: str
    tenant: Optional[str]
    verdicts: tuple
    #: the site ``submit()`` would choose right now (None: would not admit)
    chosen: Optional[str]
    #: a site only the exact solver fits it on (None if admits_now exists)
    solver_only: Optional[str]
    explanation: Optional[Explanation] = None

    @property
    def fits(self) -> bool:
        return self.chosen is not None or self.solver_only is not None

    def verdict_for(self, site: str) -> SiteVerdict:
        for v in self.verdicts:
            if v.site == site:
                return v
        raise KeyError(f"no verdict for site {site!r}")

    def render(self) -> str:
        lines = [f"what-if: {self.service_name}"
                 + (f" (tenant {self.tenant})" if self.tenant else "")]
        for v in self.verdicts:
            if not v.eligible:
                status = "ineligible"
            elif v.admits_now:
                status = (f"admits now (cost {v.committed_cost} host(s), "
                          f"{v.hosts_after}/{v.pool_hosts} committed)")
            elif v.solver_fits:
                status = "solver fit only (FFD admission would refuse)"
            else:
                status = "no fit"
                if v.explanation is not None:
                    status += f" — {v.explanation.render()}"
            lines.append(f"  {v.site}: {status}")
        if self.chosen is not None:
            lines.append(f"  => would admit on {self.chosen}")
        elif self.solver_only is not None:
            lines.append(f"  => joint repack fits on {self.solver_only} "
                         f"(greedy admission would refuse)")
        else:
            lines.append("  => would not admit"
                         + (f" — {self.explanation.render()}"
                            if self.explanation is not None else ""))
        return "\n".join(lines)


def what_if(plane, manifest, *, tenant: Optional[str] = None,
            exact: bool = True,
            budget: Optional[SearchBudget] = None) -> WhatIfReport:
    """Probe every federation member without mutating any of them.

    ``tenant`` (optional) adds the quota screens ``submit()`` would apply;
    ``exact=False`` skips the solver second opinion on FFD refusals.
    """
    quota_explanation: Optional[Explanation] = None
    if tenant is not None:
        owner = plane.tenants.get(tenant)
        if owner is None:
            raise KeyError(f"unknown tenant {tenant!r}")
        envelope = demand_envelope(manifest)
        if not owner.quota.admits_alone(envelope):
            quota_explanation = Explanation(
                PruneCode.QUOTA,
                "worst case exceeds the tenant quota outright",
                {"tenant": tenant})
        elif owner.quota.violation(owner.usage, envelope) is not None:
            quota_explanation = Explanation(
                PruneCode.QUOTA,
                "worst case exceeds the tenant quota at current usage",
                {"tenant": tenant})

    verdicts = []
    for site in plane.sites:
        eligible = plane._eligible(site, manifest)
        admission = site.admission
        hosts_before = admission.committed_plan.hosts_for_ceiling
        if not eligible:
            verdicts.append(SiteVerdict(
                site=site.name, eligible=False, admits_now=False,
                solver_fits=None, pool_hosts=admission.pool_hosts,
                hosts_before=hosts_before, hosts_after=None,
                explanation=Explanation(
                    PruneCode.SITE,
                    f"site {site.name!r} is excluded by the manifest's "
                    f"placement section")))
            continue
        try:
            hosts_after = admission.probe(manifest)
        except Exception as exc:   # instance exceeds this site's host type
            verdicts.append(SiteVerdict(
                site=site.name, eligible=True, admits_now=False,
                solver_fits=False, pool_hosts=admission.pool_hosts,
                hosts_before=hosts_before, hosts_after=None,
                explanation=Explanation(
                    PruneCode.CAPACITY, str(exc))))
            continue
        admits_now = hosts_after <= admission.pool_hosts
        solver_fits: Optional[bool] = None
        explanation: Optional[Explanation] = None
        if not admits_now and exact:
            result = solve(encode_admission(admission, manifest), budget)
            solver_fits = isinstance(result, Solution)
            if not solver_fits:
                explanation = result.explanation
        elif not admits_now:
            explanation = Explanation(
                PruneCode.CAPACITY,
                f"worst case needs {hosts_after} host(s) on a "
                f"{admission.pool_hosts}-host pool")
        verdicts.append(SiteVerdict(
            site=site.name, eligible=True, admits_now=admits_now,
            solver_fits=solver_fits, pool_hosts=admission.pool_hosts,
            hosts_before=hosts_before, hosts_after=hosts_after,
            explanation=explanation))

    chosen = solver_only = None
    if quota_explanation is None:
        # Replicate _best_site's ranking so "chosen" is the site submit()
        # would actually pick this instant.
        ranked = sorted(
            (plane._preference(site, manifest), -site.headroom, index)
            for index, site in enumerate(plane.sites)
            if verdicts[index].eligible
        )
        by_index = {index: v for index, v in enumerate(verdicts)}
        for _pref, _headroom, index in ranked:
            if by_index[index].admits_now:
                chosen = by_index[index].site
                break
        if chosen is None:
            for _pref, _headroom, index in ranked:
                if by_index[index].solver_fits:
                    solver_only = by_index[index].site
                    break

    explanation = quota_explanation
    if explanation is None and chosen is None and solver_only is None:
        candidates = [v.explanation for v in verdicts
                      if v.explanation is not None]
        explanation = candidates[0] if candidates else Explanation(
            PruneCode.SITE, "the federation has no sites")
    return WhatIfReport(
        service_name=manifest.service_name, tenant=tenant,
        verdicts=tuple(verdicts), chosen=chosen, solver_only=solver_only,
        explanation=explanation)
