"""The flight recorder: a bounded ring of recent trace records.

Chaos cells and sharded runs fail far from the coordinator: a worker's
invariant violation used to mean "rerun with ``--procs 1`` and hope the
bug reproduces". The recorder keeps the last *N* :class:`TraceRecord`
entries per shard in a ``deque(maxlen=N)`` — the listener is the deque's
bound ``append``, so the hot-path cost is one method call per record —
and on failure the ring is dumped to a JSONL file whose path travels in
the error message.

Dump triggers (wired by callers, not the recorder):

* :class:`~repro.sim.shard.ShardError` — the worker dumps before the
  traceback crosses the pipe, and puts the dump path in it;
* an invariant violation at the end of a run — the harness ships the
  snapshot in the report and the experiment runner writes it next to
  the cell's JSONL;
* a non-zero experiment exit — same path, the failing cell's record
  points at the dump file.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Optional

__all__ = ["FlightRecorder", "dump_flight"]

#: Detail values that serialise as themselves; everything else goes
#: through ``str()`` so a snapshot is always picklable and JSON-safe.
_PRIMITIVES = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class FlightRecorder:
    """Subscribe a bounded ring buffer to a :class:`TraceLog`."""

    def __init__(self, trace, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._attached_at = len(trace.records)
        self._subscription = trace.subscribe(self._ring.append)

    @property
    def seen(self) -> int:
        """Records observed since attach (ring holds the last ``capacity``)."""
        sub = self._subscription
        return len(sub.log.records) - self._attached_at

    def snapshot(self) -> tuple:
        """The ring as picklable dicts, oldest first — safe to ship over a
        multiprocessing pipe or embed in a report."""
        return tuple(
            {"time": r.time, "source": r.source, "kind": r.kind,
             "span_id": r.span_id,
             "details": {k: _jsonable(v) for k, v in r.details.items()}}
            for r in self._ring)

    def dump(self, path, *, reason: str = "") -> str:
        return dump_flight(path, self.snapshot(), reason=reason,
                           meta={"capacity": self.capacity,
                                 "seen": self.seen})

    def close(self) -> None:
        self._subscription.cancel()


def dump_flight(path, records, *, reason: str = "",
                meta: Optional[dict] = None) -> str:
    """Write a flight snapshot as JSONL: one header line, then one line
    per record. Returns the path as a string (for error messages)."""
    with open(path, "w") as fh:
        header = {"record": "flight", "reason": reason,
                  "captured": len(records)}
        if meta:
            header.update(meta)
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return str(path)
