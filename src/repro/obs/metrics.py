"""The unified metrics layer: Counter / Gauge / Histogram behind one registry.

Before this module, operational counters were scattered: the rule engine kept
``evaluations``/``rules_skipped`` ints, the distribution fabric kept
``bytes_published``/``packets_decoded``, the control plane a ``counters``
dict, and the VEEM nothing at all. One experiment-wide question — "how much
work did this run do, per layer?" — meant knowing every attribute by heart.

The registry unifies them under one naming scheme, ``layer.component.metric``
(e.g. ``control.plane.admitted``, ``monitoring.fabric.bytes_published``),
with optional labels for per-instance streams (``service="sap-1"``).

Two kinds of instruments coexist deliberately:

* **owned** instruments (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) — the registry is the canonical store; components that
  previously kept their own tallies (control plane, VEEM) now increment
  these, and any legacy attribute is a *view* over the registry.
* **view** instruments (:meth:`MetricsRegistry.register_view`) — a callable
  sampled at collection time. Hot-path counters (per-packet byte accounting,
  per-pass rule-engine tallies) stay as the plain attributes they always
  were — zero added cost on the fast path, gated at <10 % on the headline
  benches — and the registry reads them on demand.

Either way every number is reachable through :meth:`MetricsRegistry.collect`
and the Prometheus-style dump in :mod:`repro.obs.exporters`.

This module is dependency-free (no simulation imports): the kernel's
``Environment.metrics`` property imports it lazily.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Iterator, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricError",
           "SnapshotCursor", "canonical_view"]

#: ``layer.component.metric`` — at least three lowercase dotted segments.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+){2,}$")

#: A label set frozen into a hashable registry key.
LabelKey = tuple[tuple[str, str], ...]


class MetricError(Exception):
    """Bad metric name, label set, or instrument operation."""


def _label_key(labels: dict[str, Any]) -> LabelKey:
    # Instruments are created per service/site/plane, so this runs on the
    # deploy path; the 0- and 1-label cases (the overwhelming majority)
    # skip the sort.
    if not labels:
        return ()
    if len(labels) == 1:
        ((k, v),) = labels.items()
        return ((k, str(v)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


#: Names that already passed the regex — metric names are static program
#: text, so this set is small and saves a regex match per instrument
#: creation (every service deploy re-creates its labelled instruments).
_VALIDATED_NAMES: set[str] = set()


def validate_metric_name(name: str) -> str:
    if name in _VALIDATED_NAMES:
        return name
    if not _NAME_RE.match(name):
        raise MetricError(
            f"metric name {name!r} does not follow layer.component.metric "
            f"(lowercase dotted segments, at least three)")
    _VALIDATED_NAMES.add(name)
    return name


class Counter:
    """A monotonically non-decreasing tally."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name} {self.value:g}>"


class Gauge:
    """A value that can go up and down (queue depth, live instances)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"<Gauge {self.name} {self.value:g}>"


class Histogram:
    """A distribution with exact quantile summaries (p50/p95/p99).

    Observations are kept raw, in arrival order, and a *sorted copy* is
    built lazily on the first quantile read after a write — simulations
    observe thousands of latencies, not millions, so exactness beats the
    bookkeeping of streaming sketches here. Arrival order is preserved
    because :class:`SnapshotCursor` ships the tail ``_values[cursor:]``
    across process boundaries; sorting in place would reshuffle already-
    shipped observations under the cursor.
    """

    __slots__ = ("name", "labels", "_values", "_sorted_values", "sum")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._values: list[float] = []
        self._sorted_values: Optional[list[float]] = None
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise MetricError(f"{self.name}: cannot observe NaN")
        self._values.append(value)
        self._sorted_values = None
        self.sum += value

    def merge(self, values) -> None:
        """Fold observations shipped from another process, in their
        original arrival order (so ``sum`` accumulates bit-identically to
        the process that observed them)."""
        for value in values:
            self._values.append(value)
            self.sum += value
        if values:
            self._sorted_values = None

    @property
    def count(self) -> int:
        return len(self._values)

    def _ensure_sorted(self) -> list[float]:
        if self._sorted_values is None:
            self._sorted_values = sorted(self._values)
        return self._sorted_values

    def percentile(self, q: float) -> Optional[float]:
        """Exact quantile by the nearest-rank method; None when empty."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        values = self._ensure_sorted()
        if not values:
            return None
        rank = max(1, math.ceil(q * len(values)))
        return values[rank - 1]

    @property
    def mean(self) -> Optional[float]:
        return self.sum / len(self._values) if self._values else None

    def summary(self) -> dict[str, Optional[float]]:
        values = self._ensure_sorted()
        if not values:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "p50": None, "p95": None, "p99": None}
        return {
            "count": len(values),
            "sum": self.sum,
            "min": values[0],
            "max": values[-1],
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class _View:
    """A read-only instrument backed by a callable, sampled at collect."""

    __slots__ = ("name", "labels", "fn")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey, fn: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.fn = fn

    @property
    def value(self) -> float:
        return float(self.fn())

    def __repr__(self) -> str:
        return f"<View {self.name}>"


Instrument = Union[Counter, Gauge, Histogram, _View]


class MetricsRegistry:
    """One registry per :class:`~repro.sim.kernel.Environment`.

    ``counter``/``gauge``/``histogram`` are get-or-create on the
    (name, labels) key — two components asking for the same stream share the
    instrument. ``register_view`` replaces on re-registration so a component
    rebuilt mid-run (a reference-mode rule interpreter over the same
    service, say) re-binds its stream instead of erroring.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelKey], Instrument] = {}

    # -- owned instruments ---------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: dict[str, Any]):
        validate_metric_name(name)
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise MetricError(
                f"{name}{dict(key[1])!r} already registered as "
                f"{instrument.kind}")
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    # -- views ---------------------------------------------------------------
    def register_view(self, name: str, fn: Callable[[], float],
                      **labels: Any) -> None:
        """Expose an externally-owned number (a hot-path attribute) under
        the unified namespace. Re-registering the same key replaces the
        binding."""
        validate_metric_name(name)
        key = (name, _label_key(labels))
        existing = self._instruments.get(key)
        if existing is not None and not isinstance(existing, _View):
            raise MetricError(
                f"{name}{dict(key[1])!r} already owned as {existing.kind}")
        self._instruments[key] = _View(name, key[1], fn)

    # -- cross-process merging ----------------------------------------------
    def _merge_target(self, cls, name: str, label_key: LabelKey):
        validate_metric_name(name)
        key = (name, label_key)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, label_key)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise MetricError(
                f"{name}{dict(label_key)!r} already registered as "
                f"{instrument.kind}; snapshot carries a {cls.kind}")
        return instrument

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`SnapshotCursor.snapshot` payload from another
        process into this registry: counter deltas add, gauges adopt the
        shipped final, histogram tails append in arrival order. Instruments
        absent here are created; a kind conflict raises."""
        for (name, label_key), (kind, payload) in sorted(snapshot.items()):
            if kind == "counter":
                self._merge_target(Counter, name, label_key).value += payload
            elif kind == "gauge":
                self._merge_target(Gauge, name, label_key).value = payload
            elif kind == "histogram":
                self._merge_target(Histogram, name, label_key).merge(payload)
            else:
                raise MetricError(f"unknown snapshot kind {kind!r}")

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return any(k[0] == name for k in self._instruments)

    def get(self, name: str, **labels: Any) -> Optional[Instrument]:
        return self._instruments.get((name, _label_key(labels)))

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Current scalar value (histograms: observation count)."""
        instrument = self.get(name, **labels)
        if instrument is None:
            return None
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value

    def collect(self) -> Iterator[tuple[str, dict[str, str], str, Any]]:
        """Yield ``(name, labels, kind, value)`` for every instrument,
        sorted by name then labels; histograms yield their summary dict."""
        for (name, labels), instrument in sorted(
                self._instruments.items(), key=lambda item: item[0]):
            if isinstance(instrument, Histogram):
                yield name, dict(labels), "histogram", instrument.summary()
            else:
                yield name, dict(labels), instrument.kind, instrument.value

    def as_dict(self) -> dict[str, Any]:
        """Flat ``{name{labels}: value}`` snapshot, for tests and reports."""
        out: dict[str, Any] = {}
        for name, labels, _kind, value in self.collect():
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in labels.items())
                out[f"{name}{{{rendered}}}"] = value
            else:
                out[name] = value
        return out


class SnapshotCursor:
    """Incremental, picklable snapshots of a registry's *owned* instruments.

    Each :meth:`snapshot` call returns only what changed since the last one:
    counter deltas, gauge finals (when moved), and histogram observation
    tails in arrival order. The payload format is
    ``{(name, LabelKey): (kind, delta | final | tuple_of_values)}`` — plain
    builtins, safe to ship over a multiprocessing pipe. Views are excluded
    (they read process-local attributes that cannot travel), as are zero
    deltas and empty tails, keeping epoch payloads compact.

    Workers take one discarded baseline snapshot right after replaying the
    coordinator's pinned submissions, so the replay's counter increments —
    already counted in the coordinator's planning registry — never ship.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], float] = {}
        self._gauges: dict[tuple[str, LabelKey], float] = {}
        self._hist_counts: dict[tuple[str, LabelKey], int] = {}

    def snapshot(self, registry: MetricsRegistry) -> dict:
        out: dict = {}
        for key, instrument in registry._instruments.items():
            if isinstance(instrument, Counter):
                delta = instrument.value - self._counters.get(key, 0.0)
                if delta:
                    out[key] = ("counter", delta)
                    self._counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                if instrument.value != self._gauges.get(key):
                    out[key] = ("gauge", instrument.value)
                    self._gauges[key] = instrument.value
            elif isinstance(instrument, Histogram):
                seen = self._hist_counts.get(key, 0)
                tail = instrument._values[seen:]
                if tail:
                    out[key] = ("histogram", tuple(tail))
                    self._hist_counts[key] = len(instrument._values)
        return out


def canonical_view(registry: MetricsRegistry, *,
                   strip: tuple = ("plane",)) -> dict[str, Any]:
    """The federation-wide metric view used for oracle comparison.

    Owned instruments only (views read process-local attributes and are
    meaningless across a merge), with the ``plane`` label stripped —
    ``ControlPlane`` numbers its metric streams with a module-level counter,
    so ``plane1`` in the coordinator is ``plane3`` in a test that built two
    earlier planes. Counters summed across stripped keys (zero counters
    dropped), gauges kept as-is, histograms summarised after a
    sorted-instrument-order merge (empty ones dropped). Keys render as
    ``name`` or ``name{k=v,...}``, sorted.
    """
    counters: dict[tuple[str, LabelKey], float] = {}
    gauges: dict[tuple[str, LabelKey], float] = {}
    hists: dict[tuple[str, LabelKey], Histogram] = {}
    for (name, labels), instrument in sorted(
            registry._instruments.items(), key=lambda item: item[0]):
        stripped = tuple(kv for kv in labels if kv[0] not in strip)
        key = (name, stripped)
        if isinstance(instrument, Counter):
            counters[key] = counters.get(key, 0.0) + instrument.value
        elif isinstance(instrument, Gauge):
            gauges[key] = instrument.value
        elif isinstance(instrument, Histogram):
            target = hists.get(key)
            if target is None:
                hists[key] = target = Histogram(name, stripped)
            target.merge(instrument._values)
    out: dict[str, Any] = {}
    entries: list[tuple[tuple[str, LabelKey], Any]] = []
    entries.extend((k, v) for k, v in counters.items() if v)
    entries.extend(gauges.items())
    entries.extend((k, h.summary()) for k, h in hists.items() if h.count)
    for (name, labels), value in sorted(entries, key=lambda item: item[0]):
        if labels:
            rendered = ",".join(f"{k}={v}" for k, v in labels)
            out[f"{name}{{{rendered}}}"] = value
        else:
            out[name] = value
    return out
