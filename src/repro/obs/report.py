"""``python -m repro report`` — analytics over the experiment corpus.

The experiment runner (:mod:`repro.scenarios.runner`) writes one
deterministic JSON line per sweep cell; this module is the read side:
load a corpus of those files, filter it, and render

* a per-run summary table (cells × headline metrics),
* percentile tables per metric across the filtered corpus,
* ASCII sparklines per swept parameter (the faasm sweep-then-plot shape),
* cell-vs-baseline diffs within a run and run-vs-run diffs across files
  for matched ``(scenario, seed, cell_index)`` records,
* a violations section pointing at cell indices and flight-recorder
  dumps.

Everything is sorted and value-derived — no wall-clock, no environment —
so the same corpus renders byte-identically, which CI checks with
``cmp``. Exit status is the corpus verdict: non-zero when any filtered
record has ``ok: false``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from .metrics import Histogram

__all__ = ["load_corpus", "parse_filters", "render_report", "report_main",
           "sparkline"]

#: Headline per-cell metrics (numeric record fields) the tables cover by
#: default; ``--metrics`` overrides.
DEFAULT_METRICS = ("admitted", "queued", "rejected", "peak_vms",
                   "final_vms", "peak_queue_depth")

_SPARK = "▁▂▃▄▅▆▇█"


class ReportError(Exception):
    """Bad corpus path, filter, or metric name."""


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def load_corpus(paths: Iterable[str]) -> list[dict]:
    """Read every record from the given JSONL files, tagged with its
    origin (``_file``, ``_line``) — sorted by origin so the corpus order
    is a pure function of the argument list."""
    records = []
    for path in sorted(paths):
        try:
            with open(path) as fh:
                for lineno, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise ReportError(
                            f"{path}:{lineno}: not JSON: {exc}") from None
                    if not isinstance(record, dict):
                        raise ReportError(
                            f"{path}:{lineno}: expected an object")
                    record["_file"] = path
                    record["_line"] = lineno
                    records.append(record)
        except OSError as exc:
            raise ReportError(f"cannot read {path}: {exc}") from None
    if not records:
        raise ReportError("empty corpus: no records in the given files")
    return records


def parse_filters(terms: Iterable[str]) -> list[tuple[str, Any]]:
    """``["scenario=flash-crowd", "sites=4"]`` → typed (key, value) pairs.
    A key matches either a top-level record field or a sweep-cell key."""
    out = []
    for term in terms:
        key, eq, raw = term.partition("=")
        if not eq or not key or not raw:
            raise ReportError(
                f"filter {term!r} is not of the form key=value")
        out.append((key, _parse_value(raw)))
    return out


def _lookup(record: dict, key: str):
    if key in record:
        return record[key]
    return record.get("cell", {}).get(key)


def apply_filters(records: list[dict],
                  filters: list[tuple[str, Any]]) -> list[dict]:
    out = records
    for key, wanted in filters:
        out = [r for r in out if _lookup(r, key) == wanted]
    return out


def sparkline(values: list[float]) -> str:
    """One character per value, scaled to the series' own min..max."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - lo) / span * len(_SPARK)))]
        for v in values)


def _numeric(record: dict, metric: str) -> Optional[float]:
    value = _lookup(record, metric)
    return float(value) if isinstance(value, (int, float)) else None


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.3g}"


def _group_key(record: dict) -> tuple:
    return (str(record.get("scenario")), str(record.get("seed")),
            str(record.get("_file")))


def _cell_label(record: dict) -> str:
    cell = record.get("cell", {})
    label = " ".join(f"{k}={cell[k]}" for k in sorted(cell))
    return label or "-"


def render_report(records: list[dict],
                  metrics: tuple = DEFAULT_METRICS) -> str:
    lines: list[str] = []
    files = sorted({r["_file"] for r in records})
    scenarios = sorted({str(r.get("scenario")) for r in records})
    lines.append(f"corpus: {len(records)} record(s) from "
                 f"{len(files)} file(s); scenario(s): "
                 f"{', '.join(scenarios)}")

    # -- per-run summary tables ----------------------------------------------
    groups: dict[tuple, list[dict]] = {}
    for record in records:
        groups.setdefault(_group_key(record), []).append(record)
    for key in sorted(groups):
        scenario, seed, path = key
        group = sorted(groups[key], key=lambda r: (r.get("cell_index",
                                                         r["_line"])))
        lines.append("")
        lines.append(f"== {scenario} seed={seed} ({path})")
        header = f"  {'#':>3} {'cell':<32}" + "".join(
            f"{m:>{max(len(m) + 1, 8)}}" for m in metrics) + "  verdict"
        lines.append(header)
        for record in group:
            row = (f"  {record.get('cell_index', '?'):>3} "
                   f"{_cell_label(record):<32}")
            for m in metrics:
                row += f"{_fmt(_numeric(record, m)):>{max(len(m) + 1, 8)}}"
            row += "  " + ("ok" if record.get("ok") else "FAIL")
            lines.append(row)

        # cell-vs-baseline deltas within the run (first cell = baseline)
        if len(group) > 1:
            base = group[0]
            lines.append(f"  vs cell {base.get('cell_index', 0)} "
                         f"({_cell_label(base)}):")
            for record in group[1:]:
                deltas = []
                for m in metrics:
                    a, b = _numeric(base, m), _numeric(record, m)
                    if a is None or b is None or a == b:
                        continue
                    deltas.append(f"{m} {_fmt(a)}->{_fmt(b)} "
                                  f"({b - a:+g})")
                lines.append(
                    f"    cell {record.get('cell_index', '?')}: "
                    + ("; ".join(deltas) if deltas else "no change"))

        # sparklines per swept parameter
        swept = sorted({
            k for record in group for k in record.get("cell", {})
            if len({json.dumps(r.get("cell", {}).get(k), sort_keys=True)
                    for r in group}) > 1})
        for param in swept:
            ordered = sorted(
                group, key=lambda r: (
                    str(type(r.get("cell", {}).get(param)).__name__),
                    r.get("cell", {}).get(param)))
            values = [r.get("cell", {}).get(param) for r in ordered]
            lines.append(f"  sweep {param}: "
                         + " ".join(str(v) for v in values))
            for m in metrics:
                series = [_numeric(r, m) for r in ordered]
                if any(v is None for v in series) or not series:
                    continue
                lines.append(f"    {m:<18} {sparkline(series)}  "
                             f"[{_fmt(min(series))}"
                             f"..{_fmt(max(series))}]")

    # -- corpus-wide percentiles ---------------------------------------------
    lines.append("")
    lines.append(f"percentiles over {len(records)} record(s):")
    lines.append(f"  {'metric':<18}{'count':>7}{'min':>9}{'p50':>9}"
                 f"{'p95':>9}{'p99':>9}{'max':>9}")
    for m in metrics:
        hist = Histogram("report.metric.values")
        for record in records:
            value = _numeric(record, m)
            if value is not None:
                hist.observe(value)
        s = hist.summary()
        lines.append(
            f"  {m:<18}{s['count']:>7}{_fmt(s['min']):>9}"
            f"{_fmt(s['p50']):>9}{_fmt(s['p95']):>9}{_fmt(s['p99']):>9}"
            f"{_fmt(s['max']):>9}")

    # -- run-vs-run diffs ------------------------------------------------------
    matched: dict[tuple, list[dict]] = {}
    for record in records:
        matched.setdefault(
            (str(record.get("scenario")), str(record.get("seed")),
             record.get("cell_index", record["_line"])),
            []).append(record)
    cross = {k: v for k, v in matched.items()
             if len({r["_file"] for r in v}) > 1}
    if cross:
        lines.append("")
        lines.append(f"run-vs-run ({len(cross)} matched cell(s) across "
                     f"files):")
        for key in sorted(cross, key=str):
            scenario, seed, index = key
            group = sorted(cross[key], key=lambda r: r["_file"])
            base = group[0]
            diffs = []
            for other in group[1:]:
                for field in sorted(set(base) | set(other)):
                    if field.startswith("_"):
                        continue
                    if base.get(field) != other.get(field):
                        diffs.append(
                            f"    {field}: "
                            f"{json.dumps(base.get(field), sort_keys=True)} "
                            f"!= "
                            f"{json.dumps(other.get(field), sort_keys=True)}"
                            f" ({other['_file']})")
            verdict = "identical" if not diffs else "DIVERGED"
            lines.append(f"  {scenario} seed={seed} cell {index}: "
                         f"{len(group)} run(s) -> {verdict}")
            lines.extend(diffs)

    # -- violations ------------------------------------------------------------
    failing = [r for r in records if not r.get("ok", True)]
    lines.append("")
    if failing:
        lines.append(f"violations ({len(failing)} failing record(s)):")
        for record in failing:
            flight = record.get("flight_recorder")
            suffix = f" (flight: {flight})" if flight else ""
            lines.append(
                f"  [cell {record.get('cell_index', '?')}] "
                f"{record.get('scenario')} seed={record.get('seed')} "
                f"{_cell_label(record)}{suffix}")
            for violation in record.get("violations", ()):
                lines.append(f"      {violation}")
            for violation in record.get("audit_violations", ()):
                lines.append(f"      {violation}")
        lines.append("verdict: FAIL")
    else:
        lines.append("verdict: ok")
    return "\n".join(lines) + "\n"


def report_main(paths, *, filters=(), metrics=None, out=None) -> int:
    """CLI entry: load, filter, render; returns the exit status."""
    emit = out or print
    try:
        records = load_corpus(paths)
        records = apply_filters(records, parse_filters(filters))
        if not records:
            raise ReportError("every record was filtered out")
        text = render_report(
            records, metrics=tuple(metrics) if metrics else DEFAULT_METRICS)
    except ReportError as exc:
        emit(f"report: {exc}")
        return 2
    emit(text.rstrip("\n"))
    return 0 if all(r.get("ok", True) for r in records) else 1
