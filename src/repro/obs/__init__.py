"""Observability layer: causal spans, unified metrics, exporters, auditors.

``repro.obs`` gives the reproduction the cross-layer attribution the paper's
§4.2.3 instruments assume: spans link control-plane admission through
Service Manager lifecycle, rule firings and VEEM operations down to
monitoring delivery; the metrics registry unifies the per-component counters
under one ``layer.component.metric`` namespace; exporters turn both into
JSONL, Chrome trace-event and Prometheus text; and
:class:`TimeConstraintAuditor` verifies elasticity actions against their
declared time constraints by walking the span tree.

Span/record *storage* lives in :class:`repro.sim.tracing.TraceLog`; this
package holds the primitives (:mod:`~repro.obs.spans`,
:mod:`~repro.obs.metrics`) and the consumers
(:mod:`~repro.obs.exporters`, :mod:`~repro.obs.audit`).
"""

from .audit import (
    AuditFinding,
    AuditReport,
    TimeConstraintAuditor,
    audit_violation_strings,
)
from .exporters import (
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    prometheus_text,
    render_span_tree,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    SnapshotCursor,
    canonical_view,
)
from .profile import SimProfiler
from .recorder import FlightRecorder, dump_flight
from .spans import Span, SpanError

__all__ = [
    "Span",
    "SpanError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "SnapshotCursor",
    "canonical_view",
    "export_jsonl",
    "chrome_trace",
    "export_chrome_trace",
    "prometheus_text",
    "render_span_tree",
    "AuditFinding",
    "AuditReport",
    "TimeConstraintAuditor",
    "audit_violation_strings",
    "FlightRecorder",
    "dump_flight",
    "SimProfiler",
]
