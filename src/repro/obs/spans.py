"""Causal spans: the unit of end-to-end attribution.

§4.2.3's generated instruments verify behaviour "by matching entries and
time frames in infrastructural logs". A flat log makes that matching a
hand-written query per scenario; a *span* makes it structural. A span is an
interval of simulated time attributed to one component (``source``) doing
one thing (``kind``), with an optional causal parent — so "which KPI
publication caused this VEEM deploy, and how long did the chain take?" is a
tree walk, not a join.

Span identity is process-global (one counter shared by every
:class:`~repro.sim.tracing.TraceLog`), so parent links remain unambiguous
even when different layers write to different logs. The *ambient* span — the
implicit parent for spans and records created synchronously inside a scope —
lives on the :class:`~repro.sim.kernel.Environment`, not on any one log:
causality is a property of the execution context, and a VEEM tracing to its
own log still parents its deploy span under the rule firing that invoked it.

This module is dependency-free by design: :mod:`repro.sim.tracing` imports
it, not the other way around.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["Span", "SpanError"]

#: Process-global span id allocator — ids are unique across every TraceLog
#: so cross-log parent references cannot collide.
_span_ids = itertools.count(1)


class SpanError(Exception):
    """Illegal span lifecycle operation (double close, out-of-order close)."""


class Span:
    """One attributed interval of simulated time in the causal tree.

    ``status`` is ``"open"`` until closed, then whatever the closer declared
    (conventionally ``"ok"``, ``"error"``, or a domain word like
    ``"refused"``). ``end`` is ``None`` while open — spans still open when a
    simulation finishes are *orphans*, surfaced by
    :meth:`~repro.sim.tracing.TraceLog.open_spans`.

    A handwritten ``__slots__`` class, not a dataclass: spans are created on
    the deploy/submit paths and the overhead budget is gated by the
    ``obs-overhead`` bench.
    """

    __slots__ = ("span_id", "parent_id", "source", "kind", "start", "end",
                 "status", "details")

    def __init__(self, span_id: int, parent_id: Optional[int], source: str,
                 kind: str, start: float, end: Optional[float] = None,
                 status: str = "open",
                 details: Optional[dict[str, Any]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.source = source
        self.kind = kind
        self.start = start
        self.end = end
        self.status = status
        self.details = details if details is not None else {}

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        """Simulated seconds from open to close (None while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "source": self.source,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "details": self.details,
        }

    def __repr__(self) -> str:
        state = self.status if self.closed else "open"
        return (f"<Span #{self.span_id} {self.source}:{self.kind} "
                f"{state} @{self.start:g}>")


def next_span_id() -> int:
    """Allocate a process-globally-unique span id."""
    return next(_span_ids)
