"""§4.2.3 verification instruments: the time-constraint auditor.

The paper's generated test instruments "verify ... that suitable adjustment
operations were invoked by matching entries and time frames in
infrastructural logs". With causal spans that matching is structural: every
rule firing is a span whose parent is the KPI publication that enabled it
and whose children/records are the adjustment operations it invoked.

:class:`TimeConstraintAuditor` walks every ``rule.firing`` span and asserts
each adjustment was *invoked* no later than the rule's declared time
constraint after the enabling measurement. Invocation time — not completion
— is what §4.2.3 checks: the SLA constrains how quickly the system reacts;
how long a VM image takes to boot afterwards is a capacity property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["AuditFinding", "AuditReport", "TimeConstraintAuditor",
           "audit_violation_strings"]

#: Slack for float comparison on the deadline boundary.
_EPS = 1e-9


@dataclass
class AuditFinding:
    """One rule firing checked against its declared time constraint."""

    rule: str
    service: Optional[str]
    firing_span_id: int
    enabled_at: float
    time_constraint_s: float
    #: Every adjustment this firing invoked: (what, invoked_at, lateness_s);
    #: lateness is negative when inside the window.
    invocations: list[tuple[str, float, float]] = field(default_factory=list)

    @property
    def deadline(self) -> float:
        return self.enabled_at + self.time_constraint_s

    @property
    def violations(self) -> list[tuple[str, float, float]]:
        return [inv for inv in self.invocations if inv[2] > _EPS]

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class AuditReport:
    findings: list[AuditFinding]

    @property
    def ok(self) -> bool:
        return all(f.ok for f in self.findings)

    @property
    def violations(self) -> list[AuditFinding]:
        return [f for f in self.findings if not f.ok]

    def render(self) -> str:
        if not self.findings:
            return "time-constraint audit: no rule firings to audit\n"
        lines = [
            f"time-constraint audit: {len(self.findings)} firings, "
            f"{len(self.violations)} violations "
            f"-> {'PASS' if self.ok else 'FAIL'}"
        ]
        for f in self.findings:
            mark = "ok  " if f.ok else "LATE"
            lines.append(
                f"  {mark} {f.rule} (service={f.service}) enabled "
                f"@{f.enabled_at:.3f} constraint {f.time_constraint_s:g}s "
                f"({len(f.invocations)} invocations)")
            for what, at, lateness in f.invocations:
                if lateness > _EPS:
                    lines.append(
                        f"         {what} @{at:.3f} "
                        f"LATE by {lateness:.3f}s")
        return "\n".join(lines) + "\n"


class TimeConstraintAuditor:
    """Walk a TraceLog's causal tree and audit every rule firing.

    The firing span's details must carry ``rule`` and ``time_constraint_s``
    (the rule interpreter records both). The *enabling* instant is the start
    of the firing's parent span — the KPI publication whose value made the
    condition hold — falling back to the firing's own start when the
    measurement's span is not available (e.g. a manually-driven interpreter
    with no traced data source).
    """

    def __init__(self, trace):
        self.trace = trace

    def audit(self, *, min_span_id: int = 0) -> AuditReport:
        """Audit every rule firing; ``min_span_id`` skips firings whose
        span id is below it, so epoch-driven callers can audit each firing
        exactly once (rule firings open and close within one dispatch, so
        any firing visible at an epoch barrier is complete and final)."""
        findings: list[AuditFinding] = []
        for firing in self.trace.find_spans(kind="rule.firing"):
            if firing.span_id < min_span_id:
                continue
            constraint = firing.details.get("time_constraint_s")
            if constraint is None:
                continue
            parent = (self.trace.get_span(firing.parent_id)
                      if firing.parent_id is not None else None)
            enabled_at = parent.start if parent is not None else firing.start
            deadline = enabled_at + constraint
            finding = AuditFinding(
                rule=str(firing.details.get("rule", "?")),
                service=firing.details.get("service"),
                firing_span_id=firing.span_id,
                enabled_at=enabled_at,
                time_constraint_s=float(constraint),
            )
            # Adjustment operations appear two ways: child spans opened by
            # the layers the executor called into (veem submit/shutdown,
            # migrations), and flat ``elasticity.action`` records the rule
            # engine emits for every action it dispatches.
            for child in self.trace.children(firing):
                finding.invocations.append((
                    f"{child.source}:{child.kind}",
                    child.start,
                    child.start - deadline,
                ))
            for record in self.trace.span_records(firing):
                if record.kind == "elasticity.action":
                    what = f"action:{record.details.get('operation', '?')}"
                    finding.invocations.append(
                        (what, record.time, record.time - deadline))
            findings.append(finding)
        return AuditReport(findings)


def audit_violation_strings(findings) -> list[str]:
    """Render late invocations as sorted, span-id-free strings.

    Span ids are process-local (a worker's span 40 is not the oracle's
    span 40), so the cross-process comparable form carries only simulated
    times and names. Sorted so the union of per-epoch worker findings
    compares equal to a single end-of-run audit.
    """
    out = []
    for f in findings:
        for what, at, lateness in f.violations:
            out.append(
                f"time-constraint: {f.rule} (service={f.service}) {what} "
                f"@{at:.3f}s late by {lateness:.3f}s "
                f"(enabled @{f.enabled_at:.3f}s, "
                f"constraint {f.time_constraint_s:g}s)")
    return sorted(out)
