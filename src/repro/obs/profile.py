"""Deterministic sim-time profiler for the calendar-queue kernel.

``Environment.profile`` exposes a per-dispatch hook; :class:`SimProfiler`
aggregates it two ways:

* per ``(layer, event kind)`` — wall-clock seconds and event counts, the
  "where does the time go" table (:meth:`render`);
* per ``(simulated-time bucket, layer)`` — an activity timeline exported
  in the same Chrome-trace format as :mod:`repro.obs.exporters`, so the
  profile opens in ``chrome://tracing`` next to the span trace
  (:meth:`chrome_trace`).

The *layer* is recovered from the dispatched callbacks: a bound method of
an object with a string ``name`` (processes name themselves
``layer-instance:purpose``) classifies by the name's prefix; otherwise by
the owning class's module. Attribution is deterministic — only the
wall-clock column varies between runs, and wall-clock never feeds back
into the simulation.
"""

from __future__ import annotations

__all__ = ["SimProfiler"]


def _classify(callbacks) -> str:
    """Layer label for one dispatch: dead skips and bare events belong to
    the kernel; bound methods classify by their owner."""
    if not callbacks:
        return "kernel"
    cb = callbacks[0]
    owner = getattr(cb, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", None)
        if isinstance(name, str) and name:
            return name.split(":", 1)[0].split("-", 1)[0]
        module = type(owner).__module__
    else:
        module = getattr(cb, "__module__", None) or "unknown"
    return module.rsplit(".", 1)[-1]


class SimProfiler:
    """Attributable kernel profile: wall-clock and counts per layer/kind."""

    def __init__(self, bucket_s: float = 60.0):
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        self.bucket_s = bucket_s
        #: (layer, event kind) -> [events, wall_s]
        self.by_key: dict[tuple[str, str], list] = {}
        #: (bucket index, layer) -> [events, wall_s]
        self.timeline: dict[tuple[int, str], list] = {}
        self._env = None

    # -- wiring ---------------------------------------------------------------
    def attach(self, env) -> "SimProfiler":
        env.profile(self._hook)
        self._env = env
        return self

    def detach(self) -> None:
        if self._env is not None:
            self._env.profile(None)
            self._env = None

    def _hook(self, event, callbacks, wall_s: float) -> None:
        layer = _classify(callbacks)
        key = (layer, type(event).__name__)
        cell = self.by_key.get(key)
        if cell is None:
            cell = self.by_key[key] = [0, 0.0]
        cell[0] += 1
        cell[1] += wall_s
        bucket = (int(self._env._now // self.bucket_s), layer)
        cell = self.timeline.get(bucket)
        if cell is None:
            cell = self.timeline[bucket] = [0, 0.0]
        cell[0] += 1
        cell[1] += wall_s

    # -- reporting ------------------------------------------------------------
    @property
    def total_events(self) -> int:
        return sum(cell[0] for cell in self.by_key.values())

    @property
    def total_wall_s(self) -> float:
        return sum(cell[1] for cell in self.by_key.values())

    def render(self) -> str:
        """Text table, hottest (by wall-clock) first."""
        lines = [f"sim profile: {self.total_events} events, "
                 f"{self.total_wall_s * 1e3:.1f} ms dispatch wall-clock"]
        lines.append(f"  {'layer':<16}{'event kind':<16}"
                     f"{'events':>10}{'wall ms':>10}{'%':>7}")
        total = self.total_wall_s or 1.0
        ordered = sorted(self.by_key.items(),
                         key=lambda item: (-item[1][1], item[0]))
        for (layer, kind), (events, wall_s) in ordered:
            lines.append(
                f"  {layer:<16}{kind:<16}{events:>10}"
                f"{wall_s * 1e3:>10.2f}{wall_s / total:>7.1%}")
        return "\n".join(lines) + "\n"

    def chrome_trace(self, *, pid: int = 1) -> dict:
        """The timeline as Chrome-trace counter events (open alongside the
        exporters' span dump: same µs timebase, same pid)."""
        events = []
        layers = sorted({layer for _, layer in self.timeline})
        for layer in layers:
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": f"profile:{layer}",
                "args": {"name": f"profile:{layer}"},
            })
        for (bucket, layer), (count, wall_s) in sorted(
                self.timeline.items()):
            ts = bucket * self.bucket_s * 1e6
            events.append({
                "name": f"dispatch:{layer}", "ph": "C", "pid": pid,
                "tid": f"profile:{layer}", "ts": ts,
                "args": {"events": count,
                         "wall_ms": round(wall_s * 1e3, 6)},
            })
        totals = {
            f"{layer}:{kind}": {"events": count,
                                "wall_ms": round(wall_s * 1e3, 6)}
            for (layer, kind), (count, wall_s) in sorted(self.by_key.items())
        }
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"totals": totals}}
