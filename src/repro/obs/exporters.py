"""Exporters: JSONL, Chrome trace-event, Prometheus text, span-tree render.

Three audiences, three formats:

* **JSONL** — one JSON object per line, records and spans interleaved in a
  stable order; the archival format for post-hoc analysis with standard
  line-oriented tooling.
* **Chrome trace-event** — the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` / Perfetto load directly. Spans become complete
  ("X") events with microsecond timestamps; flat records become instant
  ("i") events on their source's track.
* **Prometheus text** — the plain-text exposition format for the metrics
  registry: dots in ``layer.component.metric`` become underscores, labels
  render in braces, histograms expand to ``_count``/``_sum`` plus quantile
  samples.

``render_span_tree`` is the human-facing view: the causal tree indented by
depth, used by ``python -m repro obs-report``.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Optional, Union

from .metrics import MetricsRegistry
from .spans import Span

__all__ = [
    "export_jsonl",
    "chrome_trace",
    "export_chrome_trace",
    "prometheus_text",
    "render_span_tree",
]


def _span_lines(spans: Iterable[Span]) -> Iterable[str]:
    for span in spans:
        payload = span.to_dict()
        payload["record"] = "span"
        yield json.dumps(payload, sort_keys=True)


def export_jsonl(trace, fh: Optional[IO[str]] = None) -> str:
    """Serialise a :class:`~repro.sim.tracing.TraceLog` as JSON lines.

    Flat records come first (in emit order, exactly their ``to_json`` form),
    then spans (in open order, tagged ``"record": "span"``). Returns the
    text; also writes it to ``fh`` when given.
    """
    lines = [record.to_json() for record in trace.records]
    lines.extend(_span_lines(trace.spans.values()))
    text = "\n".join(lines) + ("\n" if lines else "")
    if fh is not None:
        fh.write(text)
    return text


def chrome_trace(trace, *, process_name: str = "repro") -> dict[str, Any]:
    """Build a Chrome trace-event dict from a TraceLog.

    Simulated seconds map to trace microseconds. Each distinct span/record
    source gets its own thread track so the per-layer timelines read
    side-by-side. Spans still open at export time are drawn up to the
    current simulated clock and flagged ``status: "open"``.
    """
    tids: dict[str, int] = {}

    def tid_for(source: str) -> int:
        if source not in tids:
            tids[source] = len(tids) + 1
        return tids[source]

    events: list[dict[str, Any]] = []
    now = trace.env.now
    for span in trace.spans.values():
        end = span.end if span.end is not None else now
        args = dict(span.details)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["status"] = span.status if span.closed else "open"
        events.append({
            "name": span.kind,
            "cat": span.source,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": 1,
            "tid": tid_for(span.source),
            "args": args,
        })
    for record in trace.records:
        args = dict(record.details)
        if record.span_id is not None:
            args["span_id"] = record.span_id
        events.append({
            "name": record.kind,
            "cat": record.source,
            "ph": "i",
            "s": "t",
            "ts": record.time * 1e6,
            "pid": 1,
            "tid": tid_for(record.source),
            "args": args,
        })
    # Thread-name metadata makes the tracks legible in the viewer.
    for source, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": source},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"process": process_name, "sim_now_s": now},
    }


def export_chrome_trace(trace, fh: Optional[IO[str]] = None, **kwargs: Any
                        ) -> str:
    text = json.dumps(chrome_trace(trace, **kwargs), sort_keys=True)
    if fh is not None:
        fh.write(text)
    return text


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_escape(value: str) -> str:
    """Label-value escaping per the exposition format: backslash, double
    quote, and newline must be escaped or a value like ``he said "hi"``
    corrupts every sample after it."""
    return (value.replace("\\", r"\\")
                 .replace('"', r'\"')
                 .replace("\n", r"\n"))


def _prom_labels(labels: dict[str, str],
                 extra: Optional[dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_prom_escape(str(v))}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _prom_value(value: Any) -> str:
    if value is None:
        return "NaN"
    return f"{float(value):g}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus plain-text exposition format."""
    out: list[str] = []
    seen_types: set[str] = set()
    for name, labels, kind, value in registry.collect():
        pname = _prom_name(name)
        if pname not in seen_types:
            seen_types.add(pname)
            prom_kind = "summary" if kind == "histogram" else kind
            out.append(f"# TYPE {pname} {prom_kind}")
        if kind == "histogram":
            out.append(f"{pname}_count{_prom_labels(labels)} "
                       f"{_prom_value(value['count'])}")
            out.append(f"{pname}_sum{_prom_labels(labels)} "
                       f"{_prom_value(value['sum'])}")
            for q_key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                out.append(
                    f"{pname}{_prom_labels(labels, {'quantile': q})} "
                    f"{_prom_value(value[q_key])}")
        else:
            out.append(f"{pname}{_prom_labels(labels)} {_prom_value(value)}")
    return "\n".join(out) + ("\n" if out else "")


def render_span_tree(trace, *, root: Union[Span, int, None] = None,
                     max_depth: int = 12) -> str:
    """Indented causal tree of a TraceLog's spans.

    Roots are spans with no parent (or whose parent lives in another log);
    pass ``root=`` to render one subtree. Each line shows timing, status and
    a compact detail summary.
    """
    spans = list(trace.spans.values())
    children: dict[Optional[int], list[Span]] = {}
    ids = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        children.setdefault(parent, []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s.start, s.span_id))

    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        if depth > max_depth:
            lines.append("  " * depth + "...")
            return
        dur = f"{span.duration:.3f}s" if span.closed else "open"
        detail = ", ".join(f"{k}={v}" for k, v in list(span.details.items())[:4])
        suffix = f" [{detail}]" if detail else ""
        lines.append(
            f"{'  ' * depth}#{span.span_id} {span.source}:{span.kind} "
            f"@{span.start:.3f} {dur} {span.status}{suffix}")
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    if root is not None:
        root_span = trace.get_span(root.span_id if isinstance(root, Span)
                                   else root)
        roots = [root_span] if root_span is not None else []
    else:
        roots = children.get(None, [])
    for r in roots:
        walk(r, 0)
    return "\n".join(lines) + ("\n" if lines else "")
