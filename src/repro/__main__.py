"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``validate <manifest>``
    Parse a manifest (``.xml`` or textual ``.rsm``) and run the
    well-formedness rules; exit 1 on errors.
``convert <manifest> --to {xml,text}``
    Translate between the two concrete syntaxes (same abstract syntax).
``generate-agent <manifest> <component>``
    Emit the §4.2.3 monitoring-agent stub for one ADL component.
``generate-validator <manifest> <service-id>``
    Emit the §4.2.3 stand-alone validation-instrument script.
``table3 [--small]``
    Run the §6 evaluation (dedicated vs. elastic) and print Table 3.
``fig11 [--small] [--width N]``
    Regenerate Fig. 11 as text charts.
``weekly``
    Run the §6.1.4 weekly estimate.
``capacity <manifest> [<manifest> ...] [--hosts N]``
    Plan provider capacity for a workload mix (§8): hosts needed for the
    guaranteed floor and the worst-case ceiling; with ``--hosts`` also run
    admission control over the pool.
``control-demo [--tenants N] [--services N] [--hosts N]``
    Run the multi-tenant control-plane demo: tenants burst-submit services
    against a two-site federation, the plane admits what fits, queues the
    rest fairly, and drains the queue as services are released.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.manifest import (
    Severity,
    manifest_from_text,
    manifest_from_xml,
    manifest_to_text,
    manifest_to_xml,
    validate_manifest,
)

__all__ = ["main"]


def _load_manifest(path: str):
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("<"):
        return manifest_from_xml(text)
    return manifest_from_text(text)


def _cmd_validate(args) -> int:
    try:
        manifest = _load_manifest(args.manifest)
    except Exception as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 1
    issues = validate_manifest(manifest)
    for issue in issues:
        print(issue)
    errors = [i for i in issues if i.severity is Severity.ERROR]
    if errors:
        print(f"INVALID: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"OK: {manifest.service_name} "
          f"({len(manifest.virtual_systems)} component(s), "
          f"{len(manifest.elasticity_rules)} rule(s), "
          f"{len(tuple(manifest.sla))} SLO(s))")
    return 0


def _cmd_convert(args) -> int:
    manifest = _load_manifest(args.manifest)
    if args.to == "xml":
        print(manifest_to_xml(manifest))
    else:
        print(manifest_to_text(manifest), end="")
    return 0


def _cmd_generate_agent(args) -> int:
    from .core.codegen import generate_agent_stub

    manifest = _load_manifest(args.manifest)
    print(generate_agent_stub(manifest, args.component))
    return 0


def _cmd_generate_validator(args) -> int:
    from .core.codegen import generate_validation_script

    manifest = _load_manifest(args.manifest)
    print(generate_validation_script(manifest, args.service_id))
    return 0


def _workload(small: bool):
    from .grid import PolymorphSearchConfig

    if small:
        return PolymorphSearchConfig(
            seed_durations_s=(600.0, 900.0), refinements_per_seed=48,
            refinement_mean_s=90.0, setup_s=20, gather_s=20, generate_s=5)
    return PolymorphSearchConfig()


def _cmd_table3(args) -> int:
    from .experiments import run_dedicated, run_elastic, table3

    workload = _workload(args.small)
    print("running dedicated baseline ...", file=sys.stderr)
    dedicated = run_dedicated(workload)
    print("running elastic cloud ...", file=sys.stderr)
    elastic = run_elastic(workload)
    rows = table3(dedicated, elastic)
    for key, value in rows.items():
        if value is None:
            print(f"{key:<36} N/A")
        elif key.endswith(("saving", "time")) and abs(value) < 1:
            print(f"{key:<36} {value * 100:10.2f}%")
        else:
            print(f"{key:<36} {value:10.2f}")
    return 0


def _cmd_fig11(args) -> int:
    from .experiments import render_run, run_dedicated, run_elastic

    workload = _workload(args.small)
    for run in (run_dedicated(workload), run_elastic(workload)):
        print(render_run(run, width=args.width))
        print()
    return 0


def _cmd_weekly(args) -> int:
    from .experiments import run_week

    result = run_week()
    print(f"searches:        {result.search_count}")
    print(f"busy fraction:   {result.busy_fraction:.3f}")
    print(f"elastic usage:   {result.elastic_node_seconds / 3600:.1f} "
          f"node-hours")
    print(f"dedicated usage: {result.dedicated_node_seconds / 3600:.1f} "
          f"node-hours")
    print(f"saving:          {result.saving * 100:.2f}%  (paper: 69.18%)")
    return 0


def _cmd_capacity(args) -> int:
    from .cloud import AdmissionController, CapacityError, HostType, plan_capacity

    manifests = [_load_manifest(path) for path in args.manifests]
    host = HostType(cpu_cores=args.host_cpu, memory_mb=args.host_memory)
    plan = plan_capacity(manifests, host)
    print(f"host type: {host.cpu_cores:.0f} cores / "
          f"{host.memory_mb / 1024:.0f} GB")
    print(plan.summary())
    if args.hosts is not None:
        controller = AdmissionController(args.hosts, host)
        for manifest, path in zip(manifests, args.manifests):
            try:
                controller.admit(manifest)
                print(f"admit {manifest.service_name} ({path}): OK "
                      f"(committed ceiling "
                      f"{controller.committed_plan.hosts_for_ceiling} / "
                      f"{args.hosts} hosts)")
            except CapacityError as exc:
                print(f"admit {manifest.service_name} ({path}): REFUSED — "
                      f"{exc}")
                return 1
    return 0


def _cmd_control_demo(args) -> int:
    from .cloud import Host, HypervisorTimings, ImageRepository, VEEM
    from .control import Admitted, ControlPlane, Queued, TenantQuota
    from .core.manifest import ManifestBuilder
    from .sim import Environment

    env = Environment()
    control = ControlPlane(env)
    timings = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)

    def make_veem(n_hosts):
        veem = VEEM(env, repository=ImageRepository(bandwidth_mb_per_s=1000))
        for i in range(n_hosts):
            veem.add_host(Host(env, f"h{i}", cpu_cores=4, memory_mb=8192,
                               timings=timings))
        return veem

    # a two-site federation, second site half the size of the first
    control.add_site("north", make_veem(args.hosts))
    control.add_site("south", make_veem(max(1, args.hosts // 2)))
    quota = TenantQuota(max_services=args.quota)
    for i in range(args.tenants):
        control.register_tenant(f"tenant-{i}", quota=quota,
                                weight=1 + i % 2)

    def service(name):
        return (ManifestBuilder(name)
                .component("app", image_mb=256, cpu=4, memory_mb=8192)
                .build())

    print(f"{args.tenants} tenant(s) × {args.services} service(s) against "
          f"{args.hosts + max(1, args.hosts // 2)} hosts "
          f"(quota: {args.quota} services/tenant)")
    outcomes = []
    for round_no in range(args.services):
        for i in range(args.tenants):
            name = f"tenant-{i}"
            out = control.submit(name, service(f"{name}-svc{round_no}"))
            outcomes.append(out)
            if isinstance(out, Admitted):
                print(f"  t={env.now:6.1f}  {out.request.request_id:<8} "
                      f"{name:<10} ADMITTED -> {out.site}")
            elif isinstance(out, Queued):
                print(f"  t={env.now:6.1f}  {out.request.request_id:<8} "
                      f"{name:<10} queued (depth {out.depth})")
            else:
                print(f"  t={env.now:6.1f}  {out.request.request_id:<8} "
                      f"{name:<10} REJECTED: {out.reason}")
    env.run(until=1_000)

    # drain: release the oldest actives in waves until everyone has run
    while control.queue_depth > 0 or control.active_requests():
        for request in sorted(control.active_requests(),
                              key=lambda r: r.admitted_at or 0.0)[:3]:
            control.release(request)
        env.run(until=env.now + 200)

    stats = control.stats()
    print("\ncounters:")
    for key in ("submitted", "admitted", "queued", "rejected", "retried",
                "released"):
        print(f"  {key:<10} {stats[key]}")
    depth = control.series["queue.depth"]
    print(f"peak queue depth: {depth.maximum():.0f}")
    if "queue.wait_s" in control.series:
        waits = [r.wait_time for r in control.requests.values()
                 if r.wait_time]
        if waits:
            print(f"queue wait: mean {sum(waits) / len(waits):.1f}s, "
                  f"max {max(waits):.1f}s over {len(waits)} queued "
                  f"request(s)")
    for name, row in stats["tenants"].items():
        print(f"  {name:<10} services={row['services']} "
              f"queued={row['queued']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="On-demand cloud provisioning (RESERVOIR) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="validate a manifest")
    p.add_argument("manifest")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("convert", help="convert between concrete syntaxes")
    p.add_argument("manifest")
    p.add_argument("--to", choices=("xml", "text"), required=True)
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser("generate-agent",
                       help="emit a monitoring-agent stub (§4.2.3)")
    p.add_argument("manifest")
    p.add_argument("component")
    p.set_defaults(func=_cmd_generate_agent)

    p = sub.add_parser("generate-validator",
                       help="emit a validation-instrument script (§4.2.3)")
    p.add_argument("manifest")
    p.add_argument("service_id")
    p.set_defaults(func=_cmd_generate_validator)

    p = sub.add_parser("table3", help="run the §6 evaluation")
    p.add_argument("--small", action="store_true",
                   help="scaled-down workload (fast)")
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("fig11", help="regenerate Fig. 11 text charts")
    p.add_argument("--small", action="store_true")
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(func=_cmd_fig11)

    p = sub.add_parser("weekly", help="run the §6.1.4 weekly estimate")
    p.set_defaults(func=_cmd_weekly)

    p = sub.add_parser("capacity",
                       help="plan provider capacity for a workload mix (§8)")
    p.add_argument("manifests", nargs="+")
    p.add_argument("--hosts", type=int, default=None,
                   help="pool size for admission control")
    p.add_argument("--host-cpu", type=float, default=4.0)
    p.add_argument("--host-memory", type=float, default=8192.0)
    p.set_defaults(func=_cmd_capacity)

    p = sub.add_parser("control-demo",
                       help="multi-tenant control-plane demo (DESIGN §11)")
    p.add_argument("--tenants", type=int, default=4)
    p.add_argument("--services", type=int, default=4,
                   help="services submitted per tenant")
    p.add_argument("--hosts", type=int, default=6,
                   help="hosts at the larger site")
    p.add_argument("--quota", type=int, default=3,
                   help="max concurrent services per tenant")
    p.set_defaults(func=_cmd_control_demo)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
