"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``validate <manifest>``
    Parse a manifest (``.xml`` or textual ``.rsm``) and run the
    well-formedness rules; exit 1 on errors.
``convert <manifest> --to {xml,text}``
    Translate between the two concrete syntaxes (same abstract syntax).
``generate-agent <manifest> <component>``
    Emit the §4.2.3 monitoring-agent stub for one ADL component.
``generate-validator <manifest> <service-id>``
    Emit the §4.2.3 stand-alone validation-instrument script.
``table3 [--small]``
    Run the §6 evaluation (dedicated vs. elastic) and print Table 3.
``fig11 [--small] [--width N]``
    Regenerate Fig. 11 as text charts.
``weekly``
    Run the §6.1.4 weekly estimate.
``capacity <manifest> [<manifest> ...] [--hosts N]``
    Plan provider capacity for a workload mix (§8): hosts needed for the
    guaranteed floor and the worst-case ceiling; with ``--hosts`` also run
    admission control over the pool.
``plan <manifest> [--sites N] [--hosts N]``
    What-if admission over a synthetic federation: would the manifest fit,
    on which site, at what committed cost? Site-by-site verdicts include
    the exact solver's second opinion where greedy FFD admission refuses;
    exit 0 iff the manifest fits somewhere.
``control-demo [--tenants N] [--services N] [--hosts N]``
    Run the multi-tenant control-plane demo: tenants burst-submit services
    against a two-site federation, the plane admits what fits, queues the
    rest fairly, and drains the queue as services are released. A second
    phase deploys an elastic service and shows the causal span chain from
    a KPI publication to the VEE it caused, plus the time-constraint audit.
``scale [--sites N] [--services M] [--hours H] [--procs P] [--reference]``
    Run the federation scale harness: an N-site federation under the
    control plane, M services with SAP-style session tides, H simulated
    hours; prints events/sec, wall-clock per simulated hour, and peak RSS
    per 1k VMs (summed over all workers). ``--procs P`` shards the sites
    across P worker processes with epoch barriers; ``--verify-oracle``
    re-runs single-process and fails on any decision divergence.
    ``--reference`` runs the same workload on the heap oracle kernel for
    comparison.
``experiment <name> [--sweep k=v1,v2 ...] [--seed N] [--procs P]``
    Run a named scenario (workload generator + optional chaos schedule)
    across a parameter sweep; every cell runs through the real control
    plane, the §16 invariants are checked after each cell, and one
    deterministic JSON line per cell lands in ``runs/``. ``--list``
    prints the scenario catalogue. Exit 1 if any cell violates an
    invariant.
``obs-report [--chrome FILE] [--jsonl FILE]``
    Run the same scenario and print the observability report: the span
    tree, a Prometheus-style metrics dump, and the §4.2.3 time-constraint
    audit; optionally export Chrome trace-event / JSONL files.
``report <runs/*.jsonl> [--filter k=v] [--metrics a,b,...]``
    Analytics over the experiment corpus: per-run summary tables,
    percentiles, ASCII sparklines per swept parameter, cell-vs-baseline
    and run-vs-run diffs, and a violations section pointing at cell
    indices and flight-recorder dumps. Output is deterministic (same
    corpus ⇒ byte-identical report); exit 1 if any record failed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.manifest import (
    Severity,
    manifest_from_text,
    manifest_from_xml,
    manifest_to_text,
    manifest_to_xml,
    validate_manifest,
)

__all__ = ["main"]


def _load_manifest(path: str):
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("<"):
        return manifest_from_xml(text)
    return manifest_from_text(text)


def _cmd_validate(args) -> int:
    try:
        manifest = _load_manifest(args.manifest)
    except Exception as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 1
    issues = validate_manifest(manifest)
    for issue in issues:
        print(issue)
    errors = [i for i in issues if i.severity is Severity.ERROR]
    if errors:
        print(f"INVALID: {len(errors)} error(s)", file=sys.stderr)
        return 1
    print(f"OK: {manifest.service_name} "
          f"({len(manifest.virtual_systems)} component(s), "
          f"{len(manifest.elasticity_rules)} rule(s), "
          f"{len(tuple(manifest.sla))} SLO(s))")
    return 0


def _cmd_convert(args) -> int:
    manifest = _load_manifest(args.manifest)
    if args.to == "xml":
        print(manifest_to_xml(manifest))
    else:
        print(manifest_to_text(manifest), end="")
    return 0


def _cmd_generate_agent(args) -> int:
    from .core.codegen import generate_agent_stub

    manifest = _load_manifest(args.manifest)
    print(generate_agent_stub(manifest, args.component))
    return 0


def _cmd_generate_validator(args) -> int:
    from .core.codegen import generate_validation_script

    manifest = _load_manifest(args.manifest)
    print(generate_validation_script(manifest, args.service_id))
    return 0


def _workload(small: bool):
    from .grid import PolymorphSearchConfig

    if small:
        return PolymorphSearchConfig(
            seed_durations_s=(600.0, 900.0), refinements_per_seed=48,
            refinement_mean_s=90.0, setup_s=20, gather_s=20, generate_s=5)
    return PolymorphSearchConfig()


def _cmd_table3(args) -> int:
    from .experiments import run_dedicated, run_elastic, table3

    workload = _workload(args.small)
    print("running dedicated baseline ...", file=sys.stderr)
    dedicated = run_dedicated(workload)
    print("running elastic cloud ...", file=sys.stderr)
    elastic = run_elastic(workload)
    rows = table3(dedicated, elastic)
    for key, value in rows.items():
        if value is None:
            print(f"{key:<36} N/A")
        elif key.endswith(("saving", "time")) and abs(value) < 1:
            print(f"{key:<36} {value * 100:10.2f}%")
        else:
            print(f"{key:<36} {value:10.2f}")
    return 0


def _cmd_fig11(args) -> int:
    from .experiments import render_run, run_dedicated, run_elastic

    workload = _workload(args.small)
    for run in (run_dedicated(workload), run_elastic(workload)):
        print(render_run(run, width=args.width))
        print()
    return 0


def _cmd_weekly(args) -> int:
    from .experiments import run_week

    result = run_week()
    print(f"searches:        {result.search_count}")
    print(f"busy fraction:   {result.busy_fraction:.3f}")
    print(f"elastic usage:   {result.elastic_node_seconds / 3600:.1f} "
          f"node-hours")
    print(f"dedicated usage: {result.dedicated_node_seconds / 3600:.1f} "
          f"node-hours")
    print(f"saving:          {result.saving * 100:.2f}%  (paper: 69.18%)")
    return 0


def _cmd_capacity(args) -> int:
    from .cloud import AdmissionController, CapacityError, HostType, plan_capacity

    manifests = [_load_manifest(path) for path in args.manifests]
    host = HostType(cpu_cores=args.host_cpu, memory_mb=args.host_memory)
    plan = plan_capacity(manifests, host)
    print(f"host type: {host.cpu_cores:.0f} cores / "
          f"{host.memory_mb / 1024:.0f} GB")
    print(plan.summary())
    if args.hosts is not None:
        controller = AdmissionController(args.hosts, host)
        for manifest, path in zip(manifests, args.manifests):
            try:
                controller.admit(manifest)
                print(f"admit {manifest.service_name} ({path}): OK "
                      f"(committed ceiling "
                      f"{controller.committed_plan.hosts_for_ceiling} / "
                      f"{args.hosts} hosts)")
            except CapacityError as exc:
                print(f"admit {manifest.service_name} ({path}): REFUSED — "
                      f"{exc}")
                return 1
    return 0


def _cmd_plan(args) -> int:
    from .cloud import Host, HypervisorTimings, ImageRepository, VEEM
    from .control import ControlPlane
    from .sim import Environment

    manifest = _load_manifest(args.manifest)
    env = Environment()
    control = ControlPlane(env)
    timings = HypervisorTimings()
    for s in range(args.sites):
        name = f"site-{s}"
        veem = VEEM(env, name=name,
                    repository=ImageRepository(bandwidth_mb_per_s=1000))
        for i in range(args.hosts):
            veem.add_host(Host(env, f"{name}-h{i}",
                               cpu_cores=args.host_cpu,
                               memory_mb=args.host_memory, timings=timings))
        control.add_site(name, veem)
    # Pre-admit copies of the manifest to probe a partially-committed
    # federation rather than an empty one.
    remaining = args.admitted
    for site in control.sites:
        while remaining > 0 and site.admission.can_admit(manifest):
            site.admission.admit(manifest)
            remaining -= 1
    report = control.what_if(manifest, exact=not args.greedy_only)
    print(report.render())
    return 0 if report.fits else 1


def _build_demo_plane(env, trace, args):
    """A two-site federation sharing one trace log (causal chains cross
    the control plane / VEEM boundary, so every layer must write to the
    same log)."""
    from .cloud import Host, HypervisorTimings, ImageRepository, VEEM
    from .control import ControlPlane, TenantQuota

    control = ControlPlane(env, trace=trace)
    timings = HypervisorTimings(define_s=1, boot_s=10, shutdown_s=2)

    def make_veem(site_name, n_hosts):
        veem = VEEM(env, name=site_name, trace=trace,
                    repository=ImageRepository(bandwidth_mb_per_s=1000))
        for i in range(n_hosts):
            veem.add_host(Host(env, f"{site_name}-h{i}", cpu_cores=4,
                               memory_mb=8192, timings=timings))
        return veem

    # a two-site federation, second site half the size of the first
    control.add_site("north", make_veem("north", args.hosts))
    control.add_site("south", make_veem("south", max(1, args.hosts // 2)))
    quota = TenantQuota(max_services=args.quota)
    for i in range(args.tenants):
        control.register_tenant(f"tenant-{i}", quota=quota,
                                weight=1 + i % 2)
    return control


def _demo_churn_phase(env, control, args, emit) -> None:
    """Phase 1: tenants burst-submit, the plane admits/queues, then the
    demo drains everything by releasing actives in waves."""
    from .control import Admitted, Queued
    from .core.manifest import ManifestBuilder

    def service(name):
        return (ManifestBuilder(name)
                .component("app", image_mb=256, cpu=4, memory_mb=8192)
                .build())

    emit(f"{args.tenants} tenant(s) × {args.services} service(s) against "
         f"{args.hosts + max(1, args.hosts // 2)} hosts "
         f"(quota: {args.quota} services/tenant)")
    for round_no in range(args.services):
        for i in range(args.tenants):
            name = f"tenant-{i}"
            out = control.submit(name, service(f"{name}-svc{round_no}"))
            if isinstance(out, Admitted):
                emit(f"  t={env.now:6.1f}  {out.request.request_id:<8} "
                     f"{name:<10} ADMITTED -> {out.site}")
            elif isinstance(out, Queued):
                emit(f"  t={env.now:6.1f}  {out.request.request_id:<8} "
                     f"{name:<10} queued (depth {out.depth})")
            else:
                emit(f"  t={env.now:6.1f}  {out.request.request_id:<8} "
                     f"{name:<10} REJECTED: {out.reason}")
    env.run(until=1_000)

    # drain: release the oldest actives in waves until everyone has run
    while control.queue_depth > 0 or control.active_requests():
        for request in sorted(control.active_requests(),
                              key=lambda r: r.admitted_at or 0.0)[:3]:
            control.release(request)
        env.run(until=env.now + 200)

    stats = control.stats()
    emit("\ncounters:")
    for key in ("submitted", "admitted", "queued", "rejected", "retried",
                "released"):
        emit(f"  {key:<10} {stats[key]}")
    depth = control.series["queue.depth"]
    emit(f"peak queue depth: {depth.maximum():.0f}")
    if "queue.wait_s" in control.series:
        waits = [r.wait_time for r in control.requests.values()
                 if r.wait_time]
        if waits:
            emit(f"queue wait: mean {sum(waits) / len(waits):.1f}s, "
                 f"max {max(waits):.1f}s over {len(waits)} queued "
                 f"request(s)")
    for name, row in stats["tenants"].items():
        emit(f"  {name:<10} services={row['services']} "
             f"queued={row['queued']}")


def _demo_elasticity_phase(env, trace, control, emit):
    """Phase 2: one elastic service whose KPI stream triggers a scale-up —
    the end-to-end causal chain kpi.publish → rule.firing → vm.deploy,
    audited against the rule's declared time constraint (§4.2.3)."""
    from .core.manifest import ManifestBuilder
    from .monitoring import MonitoringAgent
    from .obs import TimeConstraintAuditor, render_span_tree

    b = ManifestBuilder("elastic")
    b.component("web", image_mb=128, cpu=1, memory_mb=1024,
                initial=1, minimum=1, maximum=3)
    b.kpi("LB", "web", "demo.web.load", frequency_s=5, default=0)
    b.rule("up", "@demo.web.load > 80", "deployVM(web)",
           time_constraint_ms=30_000)
    out = control.submit("tenant-0", b.build())
    request = out.request
    env.run(until=env.now + 5)
    service = request.service
    env.run(until=service.deployment)
    site = next(s for s in control.sites if s.name == request.site)
    load = {"value": 0}
    agent = MonitoringAgent(env, service_id=service.service_id,
                            component="LB", network=site.manager.network,
                            trace=trace)
    agent.expose("demo.web.load", lambda: load["value"], frequency_s=5)
    load["value"] = 100      # sustained overload: the rule must scale up
    env.run(until=env.now + 90)
    agent.stop()
    env.run(until=env.now + 30)

    emit(f"\nelasticity: {service.service_id} scaled web to "
         f"{service.instance_count('web')} instance(s)")
    deploys = [s for s in trace.find_spans(kind="vm.deploy")
               if s.details.get("service") == service.service_id]
    publishes = trace.find_spans(source="monitoring", kind="kpi.publish")
    chain = next(
        ((pub, dep) for dep in deploys for pub in publishes
         if trace.is_ancestor(pub, dep)), None)
    if chain is not None:
        pub, dep = chain
        emit(f"causal chain: kpi.publish #{pub.span_id} is an ancestor of "
             f"vm.deploy #{dep.span_id} ({dep.details.get('vm')})")
        emit(render_span_tree(trace, root=pub))
    else:
        emit("causal chain: NOT FOUND — no vm.deploy descends from a "
             "kpi.publish span")
    report = TimeConstraintAuditor(trace).audit()
    emit(report.render())
    return service


def _cmd_control_demo(args) -> int:
    from .sim import Environment, TraceLog

    env = Environment()
    trace = TraceLog(env)
    control = _build_demo_plane(env, trace, args)
    _demo_churn_phase(env, control, args, print)
    _demo_elasticity_phase(env, trace, control, print)
    return 0


def _cmd_scale(args) -> int:
    import json

    from .experiments.scale import (
        ScaleConfig,
        run_scale,
        verify_against_oracle,
    )

    cfg = ScaleConfig(
        sites=args.sites, services=args.services, hours=args.hours,
        tenants=args.tenants, reference=args.reference,
        random_seed=args.seed, monitor_period_s=args.monitor_period,
        elastic_fraction=args.elastic_fraction,
        procs=args.procs, epoch_s=args.epoch,
        defrag_every_h=args.defrag_every,
    )
    say = lambda m: print(m, file=sys.stderr)  # noqa: E731
    profiler = None
    if args.profile:
        if cfg.procs > 1:
            print("--profile needs --procs 1 (worker kernels live in "
                  "other processes)", file=sys.stderr)
            return 2
        from .obs import SimProfiler
        profiler = SimProfiler()
    if args.verify_oracle:
        if cfg.procs <= 1:
            print("--verify-oracle needs --procs > 1", file=sys.stderr)
            return 2
        sharded, oracle, divergences = verify_against_oracle(
            cfg, progress=say)
        print(sharded.render())
        print()
        print(oracle.render())
        if divergences:
            print("\nORACLE DIVERGENCE:", file=sys.stderr)
            for line in divergences:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\noracle agreement: sharded --procs {cfg.procs} matches "
              f"--procs 1 decision-for-decision")
        return 0
    report = run_scale(cfg, progress=say, profiler=profiler)
    print(report.render())
    if profiler is not None:
        with open(args.profile, "w") as fh:
            json.dump(profiler.chrome_trace(), fh, sort_keys=True)
        print(profiler.render(), file=sys.stderr)
        print(f"profile written to {args.profile} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_report(args) -> int:
    from .obs.report import report_main

    metrics = None
    if args.metrics:
        metrics = tuple(m.strip() for m in args.metrics.split(",")
                        if m.strip())
    try:
        return report_main(args.paths, filters=args.filter or (),
                           metrics=metrics)
    except BrokenPipeError:
        # `repro report ... | head` closes stdout early; redirect the
        # remaining writes to devnull so shutdown doesn't traceback.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _cmd_experiment(args) -> int:
    from .scenarios.runner import SCENARIOS, run_experiment, scenario_names
    from .scenarios.workloads import WorkloadError

    if args.list or not args.name:
        width = max(len(n) for n in SCENARIOS)
        for name in scenario_names():
            print(f"{name:<{width}}  {SCENARIOS[name].description}")
        return 0
    say = lambda m: print(m, file=sys.stderr)  # noqa: E731
    try:
        result = run_experiment(
            args.name, sweep=args.sweep, seed=args.seed, procs=args.procs,
            hours=args.hours, out_dir=args.out, progress=say)
    except WorkloadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    return 0 if result.ok else 1


def _cmd_obs_report(args) -> int:
    """Run the control-demo scenario and print the observability report:
    span tree, metrics dump, and the §4.2.3 time-constraint audit."""
    import json

    from .obs import (
        TimeConstraintAuditor,
        chrome_trace,
        export_jsonl,
        prometheus_text,
        render_span_tree,
    )
    from .sim import Environment, TraceLog

    env = Environment()
    trace = TraceLog(env)
    control = _build_demo_plane(env, trace, args)
    quiet = lambda *_: None  # noqa: E731 - scenario output is not the report
    _demo_churn_phase(env, control, args, quiet)
    _demo_elasticity_phase(env, trace, control, quiet)

    print(f"== span tree ({len(trace.spans)} span(s), "
          f"{len(trace.records)} record(s)) ==")
    print(render_span_tree(trace, max_depth=args.depth))
    print("\n== metrics ==")
    print(prometheus_text(env.metrics))
    print("== time-constraint audit (§4.2.3) ==")
    report = TimeConstraintAuditor(trace).audit()
    print(report.render())
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(chrome_trace(trace), fh)
        print(f"chrome trace written to {args.chrome} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            export_jsonl(trace, fh)
        print(f"jsonl trace written to {args.jsonl}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="On-demand cloud provisioning (RESERVOIR) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("validate", help="validate a manifest")
    p.add_argument("manifest")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("convert", help="convert between concrete syntaxes")
    p.add_argument("manifest")
    p.add_argument("--to", choices=("xml", "text"), required=True)
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser("generate-agent",
                       help="emit a monitoring-agent stub (§4.2.3)")
    p.add_argument("manifest")
    p.add_argument("component")
    p.set_defaults(func=_cmd_generate_agent)

    p = sub.add_parser("generate-validator",
                       help="emit a validation-instrument script (§4.2.3)")
    p.add_argument("manifest")
    p.add_argument("service_id")
    p.set_defaults(func=_cmd_generate_validator)

    p = sub.add_parser("table3", help="run the §6 evaluation")
    p.add_argument("--small", action="store_true",
                   help="scaled-down workload (fast)")
    p.set_defaults(func=_cmd_table3)

    p = sub.add_parser("fig11", help="regenerate Fig. 11 text charts")
    p.add_argument("--small", action="store_true")
    p.add_argument("--width", type=int, default=72)
    p.set_defaults(func=_cmd_fig11)

    p = sub.add_parser("weekly", help="run the §6.1.4 weekly estimate")
    p.set_defaults(func=_cmd_weekly)

    p = sub.add_parser("capacity",
                       help="plan provider capacity for a workload mix (§8)")
    p.add_argument("manifests", nargs="+")
    p.add_argument("--hosts", type=int, default=None,
                   help="pool size for admission control")
    p.add_argument("--host-cpu", type=float, default=4.0)
    p.add_argument("--host-memory", type=float, default=8192.0)
    p.set_defaults(func=_cmd_capacity)

    p = sub.add_parser("plan",
                       help="what-if admission: would this manifest fit, "
                            "where, at what committed cost? (DESIGN §15)")
    p.add_argument("manifest")
    p.add_argument("--sites", type=int, default=2)
    p.add_argument("--hosts", type=int, default=4,
                   help="hosts per site")
    p.add_argument("--host-cpu", type=float, default=4.0)
    p.add_argument("--host-memory", type=float, default=8192.0)
    p.add_argument("--admitted", type=int, default=0,
                   help="pre-admit this many copies of the manifest "
                        "before probing")
    p.add_argument("--greedy-only", action="store_true",
                   help="skip the exact solver second opinion")
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("control-demo",
                       help="multi-tenant control-plane demo (DESIGN §11)")
    p.add_argument("--tenants", type=int, default=4)
    p.add_argument("--services", type=int, default=4,
                   help="services submitted per tenant")
    p.add_argument("--hosts", type=int, default=6,
                   help="hosts at the larger site")
    p.add_argument("--quota", type=int, default=3,
                   help="max concurrent services per tenant")
    p.set_defaults(func=_cmd_control_demo)

    p = sub.add_parser("scale",
                       help="federation scale harness: N sites, M services, "
                            "H simulated hours (DESIGN §13)")
    p.add_argument("--sites", type=int, default=100)
    p.add_argument("--services", type=int, default=10_000)
    p.add_argument("--hours", type=float, default=1.0)
    p.add_argument("--tenants", type=int, default=8)
    p.add_argument("--monitor-period", type=float, default=60.0,
                   help="session-KPI publication period (s)")
    p.add_argument("--elastic-fraction", type=float, default=0.25,
                   help="fraction of services whose burst trips scale-up")
    p.add_argument("--seed", type=int, default=2010)
    p.add_argument("--reference", action="store_true",
                   help="run on the heap oracle kernel instead of the wheel")
    p.add_argument("--procs", type=int, default=1,
                   help="worker processes; >1 shards the federation's "
                        "sites across a spawn pool with epoch barriers")
    p.add_argument("--epoch", type=float, default=600.0,
                   help="simulated seconds between shard barriers")
    p.add_argument("--defrag-every", type=float, default=0.0,
                   metavar="H",
                   help="run a defragmenting migration pass per site every "
                        "H simulated hours (0 = off)")
    p.add_argument("--verify-oracle", action="store_true",
                   help="also run the --procs 1 oracle and fail on any "
                        "decision-outcome divergence")
    p.add_argument("--profile", metavar="FILE", default=None,
                   help="attach the sim-time profiler and write a "
                        "Chrome-trace JSON (--procs 1 only)")
    p.set_defaults(func=_cmd_scale)

    p = sub.add_parser("experiment",
                       help="run a named scenario across a parameter sweep "
                            "with invariant checking (DESIGN §16)")
    p.add_argument("name", nargs="?", default=None,
                   help="scenario name (see --list)")
    p.add_argument("--sweep", nargs="*", default=[], metavar="KEY=V1,V2",
                   help="sweep axes; config fields (sites, services, hours, "
                        "procs, seed ...) or workload parameters (load, "
                        "alpha ...)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--procs", type=int, default=None)
    p.add_argument("--hours", type=float, default=None)
    p.add_argument("--out", default="runs",
                   help="directory for per-cell JSONL (default: runs/)")
    p.add_argument("--list", action="store_true",
                   help="print the scenario catalogue and exit")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("report",
                       help="analytics over the experiment JSONL corpus "
                            "(tables, percentiles, sparklines, diffs — "
                            "DESIGN §17)")
    p.add_argument("paths", nargs="+", metavar="JSONL",
                   help="experiment JSONL file(s), e.g. runs/*.jsonl")
    p.add_argument("--filter", action="append", metavar="KEY=VALUE",
                   help="keep records whose field or sweep-cell key "
                        "equals VALUE (repeatable)")
    p.add_argument("--metrics", default=None, metavar="A,B,...",
                   help="comma-separated record fields for the tables "
                        "(default: admitted,queued,rejected,peak_vms,"
                        "final_vms,peak_queue_depth)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("obs-report",
                       help="observability report over the control-demo "
                            "scenario (span tree, metrics, audit — "
                            "DESIGN §12)")
    p.add_argument("--tenants", type=int, default=2)
    p.add_argument("--services", type=int, default=2,
                   help="services submitted per tenant")
    p.add_argument("--hosts", type=int, default=3,
                   help="hosts at the larger site")
    p.add_argument("--quota", type=int, default=2,
                   help="max concurrent services per tenant")
    p.add_argument("--depth", type=int, default=6,
                   help="max span-tree depth to print")
    p.add_argument("--chrome", metavar="FILE", default=None,
                   help="also write a Chrome trace-event JSON file")
    p.add_argument("--jsonl", metavar="FILE", default=None,
                   help="also write records and spans as JSON lines")
    p.set_defaults(func=_cmd_obs_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
