"""Backpressure knobs: bounded queue depth and retry-with-backoff.

Two distinct pressure valves:

* **Queue bound** — ``ControlPlane(max_queue_depth=N)`` turns the N+1-th
  concurrently queued request into a typed :class:`~.requests.Rejected`
  instead of letting the queue grow without limit (load shedding at the
  front door).
* **Retry policy** — an *admitted* request whose deployment trips a
  transient infrastructure error (``CapacityError`` from a racing
  reservation, a ``ScaleError``) is retried with exponential backoff
  rather than failed outright; only after ``max_attempts`` does it become
  a terminal rejection and give its reservation back.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for transient deployment failures."""

    max_attempts: int = 3
    initial_backoff_s: float = 5.0
    multiplier: float = 2.0
    max_backoff_s: float = 120.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.initial_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Delay before retrying after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.initial_backoff_s * self.multiplier ** (attempt - 1),
                   self.max_backoff_s)
