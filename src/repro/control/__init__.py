"""Multi-tenant provisioning control plane (DESIGN.md §11).

The layer the paper leaves implicit between "a Service Provider" and "the
site": a front door that takes manifest submissions from *named tenants*,
runs guaranteed-capacity admission over the federated pool, queues what
does not fit, drains the queue fairly (weighted round-robin with
per-tenant quotas), and drives admitted deployments with retry-with-backoff
instead of the seed's fail-loudly contention.
"""

from .backpressure import RetryPolicy
from .plane import ControlledSite, ControlPlane
from .requests import (
    Admitted,
    Outcome,
    ProvisioningRequest,
    Queued,
    Rejected,
    RejectCode,
    RejectionReason,
    RequestState,
)
from .scheduler import FairScheduler
from .tenants import Tenant, TenantQuota, TenantUsage

__all__ = [
    "Admitted",
    "ControlledSite",
    "ControlPlane",
    "FairScheduler",
    "Outcome",
    "ProvisioningRequest",
    "Queued",
    "Rejected",
    "RejectCode",
    "RejectionReason",
    "RequestState",
    "RetryPolicy",
    "Tenant",
    "TenantQuota",
    "TenantUsage",
]
