"""Tenants, quotas and per-tenant committed usage.

The paper's Service Manager answers to *one* Service Provider at a time
(§5.1); a provider serving many customers needs the thing Dearle et al. and
Buyya et al. (PAPERS.md) both call for: named tenants whose demands on the
shared pool are bounded and arbitrated. A :class:`Tenant` couples a name
with a scheduling ``weight`` (its share of the drain cycle) and a
:class:`TenantQuota` — hard ceilings on what the tenant may hold
*concurrently*, measured against the worst case of every admitted manifest
(the same guaranteed-capacity stance as
:class:`repro.cloud.capacity.AdmissionController`).

Usage is committed at admission time from the manifest's
:class:`~repro.cloud.capacity.DemandEnvelope` ceiling and released when the
service undeploys, so a quota can never be dodged by a service that merely
*hasn't scaled up yet*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cloud.capacity import DemandEnvelope

__all__ = ["TenantQuota", "TenantUsage", "Tenant"]


def _envelope_totals(envelope: DemandEnvelope) -> tuple[int, float, float]:
    """(instances, cpu, memory_mb) of the envelope's ceiling."""
    ceiling = envelope.ceiling
    cpu, memory_mb = envelope.totals("ceiling")
    return len(ceiling), cpu, memory_mb


@dataclass(frozen=True)
class TenantQuota:
    """Hard per-tenant ceilings; ``None`` means unlimited on that axis."""

    max_services: Optional[int] = None
    max_instances: Optional[int] = None
    max_cpu: Optional[float] = None
    max_memory_mb: Optional[float] = None

    def violation(self, usage: "TenantUsage",
                  envelope: DemandEnvelope) -> Optional[str]:
        """Why admitting ``envelope`` on top of ``usage`` would breach the
        quota, or ``None`` if it fits."""
        instances, cpu, memory_mb = _envelope_totals(envelope)
        if (self.max_services is not None
                and usage.services + 1 > self.max_services):
            return (f"services {usage.services + 1} > "
                    f"quota {self.max_services}")
        if (self.max_instances is not None
                and usage.instances + instances > self.max_instances):
            return (f"instances {usage.instances + instances} > "
                    f"quota {self.max_instances}")
        if self.max_cpu is not None and usage.cpu + cpu > self.max_cpu + 1e-9:
            return f"cpu {usage.cpu + cpu:g} > quota {self.max_cpu:g}"
        if (self.max_memory_mb is not None
                and usage.memory_mb + memory_mb > self.max_memory_mb + 1e-9):
            return (f"memory {usage.memory_mb + memory_mb:g}MB > "
                    f"quota {self.max_memory_mb:g}MB")
        return None

    def admits_alone(self, envelope: DemandEnvelope) -> bool:
        """Could this envelope *ever* fit the quota (i.e. against zero
        usage)? False means the request is permanently rejectable."""
        return self.violation(TenantUsage(), envelope) is None


@dataclass
class TenantUsage:
    """Worst-case resources a tenant currently holds admitted."""

    services: int = 0
    instances: int = 0
    cpu: float = 0.0
    memory_mb: float = 0.0

    def add(self, envelope: DemandEnvelope) -> None:
        instances, cpu, memory_mb = _envelope_totals(envelope)
        self.services += 1
        self.instances += instances
        self.cpu += cpu
        self.memory_mb += memory_mb

    def remove(self, envelope: DemandEnvelope) -> None:
        instances, cpu, memory_mb = _envelope_totals(envelope)
        self.services -= 1
        self.instances -= instances
        self.cpu -= cpu
        self.memory_mb -= memory_mb
        if self.services < 0 or self.instances < 0:
            raise ValueError("tenant usage went negative: release without "
                             "matching admission")


@dataclass
class Tenant:
    """One named customer of the control plane."""

    name: str
    quota: TenantQuota = field(default_factory=TenantQuota)
    #: weighted-round-robin share: admissions allowed per drain cycle
    weight: int = 1
    usage: TenantUsage = field(default_factory=TenantUsage)

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ValueError("tenant weight must be >= 1")
