"""Provisioning requests and their typed outcomes.

Every manifest submitted through the control plane becomes a
:class:`ProvisioningRequest` with an explicit state machine::

    submit() ──► REJECTED        (backpressure / can-never-fit)
            └──► QUEUED ───────► REJECTED   (deploy retries exhausted)
                        └──────► DEPLOYING ──► ACTIVE ──► RELEASED

``submit()`` itself returns one of the typed outcomes —
:class:`Admitted`, :class:`Queued` or :class:`Rejected` — so callers
branch on *types*, not on string parsing. A queued request's eventual fate
is observable through ``request.decided`` (a DES event that fires when the
request reaches ADMITTED-or-better or REJECTED) and through the control
plane's trace records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..cloud.capacity import DemandEnvelope
from ..core.manifest.model import ServiceManifest
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.service_manager.manager import ManagedService

__all__ = ["RequestState", "ProvisioningRequest", "RejectCode",
           "RejectionReason", "Outcome", "Admitted", "Queued", "Rejected"]


class RejectCode(enum.Enum):
    """Machine-readable rejection categories, one per decision screen."""

    QUOTA = "quota"                  # tenant quota screens
    CAPACITY = "capacity"            # guaranteed-capacity admission
    PLACEMENT = "placement"          # site eligibility (affinity/avoid)
    BACKPRESSURE = "backpressure"    # queue depth bound
    DEPLOY_FAILED = "deploy-failed"  # retries exhausted while deploying
    CONSTRAINT = "constraint"        # placement constraints unsatisfiable


class RejectionReason(str):
    """A rejection reason that *is* the human-readable string (so every
    ``"quota" in outcome.reason`` caller keeps working) but also carries a
    typed code and a structured detail payload."""

    __slots__ = ("code", "detail")

    def __new__(cls, code: RejectCode, message: str, **detail):
        self = super().__new__(cls, message)
        self.code = code
        self.detail = detail
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RejectionReason({self.code.value!r}, "
                f"{str.__repr__(self)}, detail={self.detail!r})")


class RequestState(enum.Enum):
    QUEUED = "queued"          # waiting in the fair scheduler
    DEPLOYING = "deploying"    # admitted, deployment (or a retry) in flight
    ACTIVE = "active"          # deployment completed
    REJECTED = "rejected"      # terminal no: backpressure, never-fits,
    #                            or retries exhausted
    RELEASED = "released"      # was active; undeployed, capacity freed


#: States in which the admission decision is final.
DECIDED = frozenset({RequestState.DEPLOYING, RequestState.ACTIVE,
                     RequestState.REJECTED, RequestState.RELEASED})


@dataclass
class ProvisioningRequest:
    """One tenant's manifest submission, tracked end to end."""

    request_id: str
    tenant: str
    manifest: ServiceManifest
    envelope: DemandEnvelope
    submitted_at: float
    service_id: Optional[str] = None
    state: RequestState = RequestState.QUEUED
    #: site the request was admitted to (federated selection result)
    site: Optional[str] = None
    service: Optional["ManagedService"] = None
    reason: Optional[str] = None        # rejection reason, if rejected
    admitted_at: Optional[float] = None
    released_at: Optional[float] = None
    attempts: int = 0                   # deployment attempts driven so far
    #: per-instance host pins computed by the solver rescue, keyed
    #: ``(system_id, instance_index)`` — consumed by the next deploy attempt
    pins: Optional[dict] = field(default=None, repr=False)
    #: fires (with the request) once the admission decision is final —
    #: i.e. on entering DEPLOYING or REJECTED
    decided: Optional[Event] = field(default=None, repr=False)
    drivers: Optional[dict] = field(default=None, repr=False)
    #: causal root span covering the whole request lifetime (opened at
    #: submit, closed at the terminal state) — every service/VEE span the
    #: request causes descends from it
    span: Optional[object] = field(default=None, repr=False)

    @property
    def is_decided(self) -> bool:
        return self.state in DECIDED

    @property
    def is_admitted(self) -> bool:
        return self.state in (RequestState.DEPLOYING, RequestState.ACTIVE,
                              RequestState.RELEASED)

    @property
    def wait_time(self) -> Optional[float]:
        """Queue wait between submission and admission (None if undecided
        or rejected before admission)."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    def _decide(self) -> None:
        if self.decided is not None and not self.decided.triggered:
            self.decided.succeed(self)


@dataclass(frozen=True)
class Outcome:
    """Base of the typed results ``ControlPlane.submit`` returns."""

    request: ProvisioningRequest


@dataclass(frozen=True)
class Admitted(Outcome):
    """Capacity and quota reserved; deployment is being driven on ``site``."""

    site: str


@dataclass(frozen=True)
class Queued(Outcome):
    """No room right now; parked in the fair scheduler until capacity or
    quota frees up."""

    position: int   # 1-based position within the tenant's FIFO
    depth: int      # total queued requests across all tenants


@dataclass(frozen=True)
class Rejected(Outcome):
    """Terminal refusal; ``reason`` says why (backpressure, quota or
    capacity infeasibility, retries exhausted)."""

    reason: str
