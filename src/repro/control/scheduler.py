"""Weighted round-robin fair scheduler over per-tenant FIFO queues.

Arbitration policy of the control plane's admission queue:

* **Per-tenant FIFO** — a tenant's own requests are admitted in submission
  order, never reordered (so a tenant cannot starve its *own* early
  request with later small ones).
* **Weighted round-robin across tenants** — each drain cycle visits every
  tenant with a queue, granting at most ``weight`` admissions per cycle;
  the visiting order rotates one tenant per drain call so no tenant owns
  the front of every cycle.
* **Head-of-line blocking is per tenant only** — a tenant whose head
  request does not fit right now is skipped for the rest of the cycle;
  *other* tenants keep draining.

The scheduler is deliberately mechanism-only: it knows nothing about
capacity or quotas. The control plane passes a ``try_admit`` callback and
the scheduler just orchestrates *who gets asked next*.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Optional

from .requests import ProvisioningRequest

__all__ = ["FairScheduler"]


class FairScheduler:
    """Deterministic weighted round-robin admission queue."""

    def __init__(self) -> None:
        self._queues: dict[str, deque[ProvisioningRequest]] = {}
        self._weights: dict[str, int] = {}
        self._ring: list[str] = []      # tenant visiting order
        self._cursor = 0                # rotating fairness origin

    # ------------------------------------------------------------------
    def add_tenant(self, name: str, weight: int = 1) -> None:
        if name in self._queues:
            raise ValueError(f"duplicate tenant {name!r}")
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self._queues[name] = deque()
        self._weights[name] = weight
        self._ring.append(name)

    def push(self, request: ProvisioningRequest) -> int:
        """Enqueue; returns the request's 1-based position in its tenant's
        FIFO."""
        queue = self._queues[request.tenant]
        queue.append(request)
        return len(queue)

    def remove(self, request: ProvisioningRequest) -> bool:
        """Withdraw a queued request (e.g. a cancellation); True if found."""
        queue = self._queues.get(request.tenant)
        if queue is None or request not in queue:
            return False
        queue.remove(request)
        return True

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depth_of(self, tenant: str) -> int:
        return len(self._queues[tenant])

    def pending(self, tenant: Optional[str] = None
                ) -> list[ProvisioningRequest]:
        if tenant is not None:
            return list(self._queues[tenant])
        return [r for name in self._ring for r in self._queues[name]]

    def __iter__(self) -> Iterator[ProvisioningRequest]:
        return iter(self.pending())

    def __len__(self) -> int:
        return self.depth

    # ------------------------------------------------------------------
    def drain(self, try_admit: Callable[[ProvisioningRequest], bool]) -> int:
        """Admit as much as currently fits, fairly; returns admissions made.

        Cycles run until one full cycle admits nothing (``try_admit``
        refused every head-of-queue it was offered), which makes ``drain``
        safe to call eagerly — an empty pass is one cheap loop.
        """
        admitted = 0
        while True:
            progressed = False
            ring_size = len(self._ring)
            if ring_size == 0:
                break
            start = self._cursor
            for i in range(ring_size):
                tenant = self._ring[(start + i) % ring_size]
                queue = self._queues[tenant]
                credits = self._weights[tenant]
                while queue and credits > 0:
                    if not try_admit(queue[0]):
                        break       # head blocked: next tenant
                    queue.popleft()
                    admitted += 1
                    credits -= 1
                    progressed = True
            # Rotate who gets first refusal of the next drain.
            self._cursor = (start + 1) % ring_size
            if not progressed:
                break
        return admitted
