"""The multi-tenant provisioning control plane.

The front door in front of :class:`~repro.core.service_manager.manager.
ServiceManager`/:class:`~repro.cloud.veem.VEEM`: named tenants submit
manifests to :meth:`ControlPlane.submit` and get a typed outcome back —
:class:`~.requests.Admitted`, :class:`~.requests.Queued` or
:class:`~.requests.Rejected` — instead of racing each other for hosts and
failing loudly on contention (the seed behaviour, kept reachable in
``tests/test_multi_service.py``).

Pipeline per request:

1. **Hard screens** — unknown-tenant, backpressure (bounded queue), and
   *can-never-fit* checks (envelope exceeds the tenant's quota even against
   zero usage, or exceeds every site's whole pool) reject immediately.
2. **Admission** — reuses :func:`repro.cloud.capacity.demand_envelope` and
   per-site :class:`~repro.cloud.capacity.AdmissionController`\\ s:
   a request is admitted only if its *worst case* still fits the chosen
   site's pool alongside everything already admitted there, and fits the
   tenant's quota. Otherwise it queues.
3. **Fair drain** — a weighted round-robin scheduler
   (:class:`~.scheduler.FairScheduler`) dequeues across tenants as
   capacity frees up (undeploys, retry-rejections); per-tenant FIFO order
   is preserved and a blocked tenant never stalls the others.
4. **Federated site selection** — each request is placed on the *best*
   eligible member site (manifest ``avoid``/``require_trusted`` placements
   respected, ``favour`` preferred, then greatest admission headroom) of a
   :class:`repro.cloud.federation.Site`-shaped federation, not one fixed
   VEEM.
5. **Deployment drive with backpressure** — admitted requests are deployed
   through the site's ServiceManager; transient infrastructure failures
   (:class:`~repro.cloud.errors.CapacityError`, ``ScaleError``) are
   retried with exponential backoff (:class:`~.backpressure.RetryPolicy`)
   before a terminal rejection returns the reservation.
6. **Solver rescue** — when the greedy placer's one-at-a-time packing
   fails with a :class:`~repro.cloud.errors.CapacityError`, the exact
   constraint solver (:mod:`repro.solver`) re-plans the whole instance
   set jointly against live hosts; a SAT verdict retries immediately with
   per-instance host pins, UNSAT carries the solver's explanation into
   the terminal :class:`~.requests.Rejected` outcome.

:meth:`ControlPlane.what_if` answers "would this manifest fit, where, at
what committed cost?" without mutating any site — the probe behind
``python -m repro plan``.

Observability: counters (``admitted``/``queued``/``rejected``/``retried``/
``released``), a ``queue.depth`` step series plus per-admission
``queue.wait_s`` on a :class:`~repro.sim.SeriesRecorder`, and structured
``control``-source records on the DES trace for every transition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Union

from ..cloud.capacity import (
    AdmissionController,
    HostType,
    demand_envelope,
    plan_capacity,
)
from ..cloud.errors import CapacityError
from ..cloud.federation import Site
from ..cloud.veem import VEEM
from ..core.manifest.model import ServiceManifest
from ..core.service_manager.lifecycle import ScaleError
from ..core.service_manager.manager import ManagedService, ServiceManager
from ..sim import Environment, Process, SeriesRecorder, TraceLog
from ..solver import SearchBudget, Solution, encode_service, solve
from ..solver import what_if as _solver_what_if
from .backpressure import RetryPolicy
from .requests import (
    Admitted,
    Outcome,
    ProvisioningRequest,
    Queued,
    Rejected,
    RejectCode,
    RejectionReason,
    RequestState,
)
from .scheduler import FairScheduler
from .tenants import Tenant, TenantQuota

__all__ = ["ControlledSite", "ControlPlane"]

#: Infrastructure errors the drive loop treats as transient and retries.
TRANSIENT_ERRORS = (CapacityError, ScaleError)

#: Distinguishes the metric streams of multiple planes sharing one
#: environment (differential tests build several).
_plane_ids = itertools.count(1)


@dataclass
class ControlledSite:
    """One federation member under control-plane management: the site
    identity, its Service Manager, and its guaranteed-capacity admission
    controller."""

    site: Site
    manager: ServiceManager
    admission: AdmissionController

    @property
    def name(self) -> str:
        return self.site.name

    @property
    def headroom(self) -> int:
        return self.admission.headroom


class ControlPlane:
    """Front door mediating many tenants over a federated pool."""

    def __init__(self, env: Environment, *,
                 trace: Optional[TraceLog] = None,
                 retry: Optional[RetryPolicy] = None,
                 max_queue_depth: Optional[int] = None,
                 solver_fallback: bool = True,
                 solver_budget: Optional[SearchBudget] = None):
        self.env = env
        self.trace = trace if trace is not None else TraceLog(env)
        self.retry = retry if retry is not None else RetryPolicy()
        #: queued requests beyond this are shed with a typed rejection;
        #: None = unbounded queue
        self.max_queue_depth = max_queue_depth
        #: after a greedy CapacityError, re-plan the whole instance set with
        #: the exact solver before burning a backoff interval
        self.solver_fallback = solver_fallback
        self.solver_budget = solver_budget or SearchBudget()
        self.sites: list[ControlledSite] = []
        #: federation members currently cut off by a network partition —
        #: ineligible for every placement until the partition heals
        self._unreachable: set[str] = set()
        self.tenants: dict[str, Tenant] = {}
        self.scheduler = FairScheduler()
        self.requests: dict[str, ProvisioningRequest] = {}
        # The request flow counters are registry-owned (these are admission
        # decisions, not hot-path work); ``counters`` stays readable as a
        # dict view under the pre-registry key names.
        metrics = env.metrics
        plane = f"plane{next(_plane_ids)}"
        self._plane_label = plane
        self._m_counters = {
            name: metrics.counter(f"control.plane.{name}", plane=plane)
            for name in ("submitted", "admitted", "queued", "rejected",
                         "retried", "released")
        }
        self._m_queue_wait = metrics.histogram("control.plane.queue_wait_s",
                                               plane=plane)
        # Kept out of ``_m_counters`` so the ``counters`` compatibility view
        # (and ``stats()``) keeps its historical shape.
        self._m_solver_rescued = metrics.counter(
            "control.plane.solver_rescued", plane=plane)
        metrics.register_view("control.plane.queue_depth",
                              lambda: self.scheduler.depth, plane=plane)
        self.series = SeriesRecorder(env)
        self.series.record("queue.depth", 0)
        self._seq = itertools.count(1)
        self._by_service: dict[str, ProvisioningRequest] = {}
        # Solo-plan cache for the can-never-fit screen: hosts_for_ceiling of
        # a manifest packed alone onto a host type (None = an instance
        # exceeds the host outright). Keyed by manifest identity — safe
        # because every screened manifest is retained in ``self.requests``
        # before the screen runs, so ids are never recycled.
        self._solo_ceilings: dict[tuple, Optional[int]] = {}

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def add_site(self, site: Union[str, Site], veem: Optional[VEEM] = None, *,
                 attributes: Optional[dict] = None,
                 pool_hosts: Optional[int] = None,
                 host_type: Optional[HostType] = None,
                 manager: Optional[ServiceManager] = None,
                 network=None) -> ControlledSite:
        """Register a federation member.

        ``pool_hosts`` defaults to the VEEM's host count and ``host_type``
        to its first host's shape — i.e. the admission controller guarantees
        exactly the physical pool unless told to hold some back.
        """
        if isinstance(site, str):
            if veem is None:
                raise ValueError("add_site(name, ...) needs a veem")
            site = Site(site, veem, attributes or {})
        if any(s.name == site.name for s in self.sites):
            raise ValueError(f"duplicate site name {site.name!r}")
        veem = site.veem
        if pool_hosts is None:
            pool_hosts = len(veem.hosts)
        if host_type is None:
            host_type = (HostType(veem.hosts[0].cpu_cores,
                                  veem.hosts[0].memory_mb)
                         if veem.hosts else HostType())
        if manager is None:
            manager = ServiceManager(self.env, veem, trace=self.trace,
                                     network=network)
        controlled = ControlledSite(
            site=site, manager=manager,
            admission=AdmissionController(pool_hosts, host_type),
        )
        manager.on_undeploy.append(
            lambda service, termination, cs=controlled:
                self._on_undeploy(cs, service, termination))
        self.sites.append(controlled)
        return controlled

    @property
    def counters(self) -> dict[str, int]:
        """Snapshot of the registry-owned request-flow counters, keyed by
        the pre-registry names (compatibility read view)."""
        return {name: int(c.value) for name, c in self._m_counters.items()}

    def register_tenant(self, name: str, *,
                        quota: Optional[TenantQuota] = None,
                        weight: int = 1) -> Tenant:
        if name in self.tenants:
            raise ValueError(f"duplicate tenant {name!r}")
        tenant = Tenant(name, quota=quota or TenantQuota(), weight=weight)
        self.tenants[name] = tenant
        self.scheduler.add_tenant(name, weight)
        return tenant

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def submit(self, tenant: str, manifest: ServiceManifest, *,
               service_id: Optional[str] = None,
               drivers: Optional[dict] = None,
               site: Optional[str] = None) -> Outcome:
        """Submit one manifest on behalf of ``tenant``.

        Returns a typed outcome immediately; a :class:`Queued` request's
        later fate fires its ``decided`` event and shows up on the trace.

        ``site`` pins the request to one named federation member instead of
        the federated best-site selection: it is admitted there or rejected
        outright, never queued. Shard workers replay coordinator admission
        decisions through this path, so a pinned submit must stay exactly
        "the federated outcome with the site choice already made".
        """
        owner = self.tenants.get(tenant)
        if owner is None:
            raise KeyError(f"unknown tenant {tenant!r}; register_tenant first")
        envelope = demand_envelope(manifest)
        request = ProvisioningRequest(
            request_id=f"req-{next(self._seq)}",
            tenant=tenant, manifest=manifest, envelope=envelope,
            submitted_at=self.env.now,
            service_id=service_id or (f"{tenant}-{manifest.service_name}-"
                                      f"{len(self.requests) + 1}"),
            decided=self.env.event(), drivers=drivers,
        )
        self.requests[request.request_id] = request
        self._m_counters["submitted"].inc()
        # The request span is the causal root of everything this submission
        # ends up doing — admission, deployment, the VEEs, the release.
        request.span = self.trace.span(
            "control", "request", request=request.request_id,
            tenant=tenant, service=request.service_id)
        self.trace.emit_in(request.span, "control", "request.submitted",
                           request=request.request_id, tenant=tenant,
                           service=request.service_id,
                           service_name=manifest.service_name)

        # Hard screens: things that will never change by waiting.
        if not owner.quota.admits_alone(envelope):
            return self._reject(request, RejectionReason(
                RejectCode.QUOTA,
                "quota: worst case exceeds the tenant quota outright",
                tenant=tenant))
        if site is not None:
            # Pinned submission: admit on the named site now or reject.
            target = self._site_named(site)
            if not self._eligible(target, manifest):
                return self._reject(request, RejectionReason(
                    RejectCode.PLACEMENT,
                    f"placement: site {site!r} is not eligible",
                    site=site))
            if owner.quota.violation(owner.usage, envelope) is not None:
                return self._reject(request, RejectionReason(
                    RejectCode.QUOTA,
                    "quota: worst case exceeds the tenant quota",
                    tenant=tenant))
            if not target.admission.can_admit(manifest):
                return self._reject(request, RejectionReason(
                    RejectCode.CAPACITY,
                    f"capacity: site {site!r} cannot admit the worst case",
                    site=site))
            self._admit_to(request, target)
            return Admitted(request, target.name)
        if not self._fits_somewhere_empty(request):
            return self._reject(request, RejectionReason(
                RejectCode.CAPACITY,
                "capacity: worst case exceeds every eligible site's "
                "whole pool"))
        if (self.max_queue_depth is not None
                and self.scheduler.depth >= self.max_queue_depth):
            return self._reject(request, RejectionReason(
                RejectCode.BACKPRESSURE,
                f"backpressure: queue depth {self.scheduler.depth} at the "
                f"max_queue_depth={self.max_queue_depth} bound",
                depth=self.scheduler.depth, bound=self.max_queue_depth))

        position = self.scheduler.push(request)
        self._record_depth()
        self._pump()
        if request.state is not RequestState.QUEUED:
            # Drained straight through: admitted in the same instant.
            return Admitted(request, request.site)
        self._m_counters["queued"].inc()
        depth = self.scheduler.depth
        self.trace.emit_in(request.span, "control", "request.queued",
                           request=request.request_id, tenant=tenant,
                           position=position, depth=depth)
        return Queued(request, position=position, depth=depth)

    def release(self, request: ProvisioningRequest) -> Process:
        """Undeploy an ACTIVE request's service; capacity frees (and the
        queue re-drains) once termination completes."""
        if request.state is not RequestState.ACTIVE or request.service is None:
            raise ValueError(
                f"{request.request_id} is {request.state.value}, not active")
        site = self._site_named(request.site)
        return site.manager.undeploy(request.service)

    # ------------------------------------------------------------------
    # Federation reachability (network partitions)
    # ------------------------------------------------------------------
    @property
    def unreachable(self) -> frozenset:
        """Sites currently cut off by a partition."""
        return frozenset(self._unreachable)

    def partition(self, sites) -> None:
        """Mark federation members unreachable: they drop out of every
        eligibility screen (federated selection, pinned submissions,
        ``what_if`` probes) until :meth:`heal_partition`. Already-deployed
        services on a partitioned site keep running — the site's own
        control loops are local; only the control plane's reach is cut."""
        names = [s if isinstance(s, str) else s.name for s in sites]
        for name in names:
            self._site_named(name)      # validate before mutating
        self._unreachable.update(names)
        self.trace.emit("control", "federation.partition",
                        sites=sorted(names),
                        unreachable=sorted(self._unreachable))

    def heal_partition(self, sites=None) -> None:
        """Restore reachability (all partitioned sites by default) and
        re-drain the queue against the recovered capacity."""
        if sites is None:
            healed = set(self._unreachable)
        else:
            healed = {s if isinstance(s, str) else s.name for s in sites}
        self._unreachable -= healed
        self.trace.emit("control", "federation.heal",
                        sites=sorted(healed),
                        unreachable=sorted(self._unreachable))
        self._pump()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self.scheduler.depth

    def pending(self, tenant: Optional[str] = None
                ) -> list[ProvisioningRequest]:
        return self.scheduler.pending(tenant)

    def active_requests(self, tenant: Optional[str] = None
                        ) -> list[ProvisioningRequest]:
        return [r for r in self.requests.values()
                if r.state is RequestState.ACTIVE
                and (tenant is None or r.tenant == tenant)]

    def tenant_services(self, tenant: str) -> list[ManagedService]:
        """The tenant's live services across all sites (accounting
        attribution: each carries a tenant-tagged ServiceAccountant)."""
        return [r.service for r in self.active_requests(tenant)
                if r.service is not None]

    def stats(self) -> dict:
        """Counters plus the live queue/commitment picture."""
        out = dict(self.counters)
        out["queue_depth"] = self.scheduler.depth
        out["sites"] = {
            s.name: {"pool_hosts": s.admission.pool_hosts,
                     "headroom": s.headroom,
                     "admitted_services": len(s.admission.admitted)}
            for s in self.sites
        }
        out["tenants"] = {
            name: {"services": t.usage.services,
                   "instances": t.usage.instances,
                   "queued": self.scheduler.depth_of(name)}
            for name, t in self.tenants.items()
        }
        return out

    def what_if(self, manifest: ServiceManifest, *,
                tenant: Optional[str] = None, exact: bool = True):
        """Would this manifest fit, where, at what committed cost?

        A pure federation-wide probe (:func:`repro.solver.what_if`): replays
        ``submit()``'s decision pipeline — eligibility, optional tenant
        quota screens, per-site guaranteed-capacity packing, the ranked
        site choice — without reserving, queueing or mutating anything.
        ``exact=True`` asks the constraint solver for a second opinion on
        sites the FFD packer refuses.
        """
        return _solver_what_if(self, manifest, tenant=tenant, exact=exact,
                               budget=self.solver_budget)

    # ------------------------------------------------------------------
    # Admission machinery
    # ------------------------------------------------------------------
    def _site_named(self, name: str) -> ControlledSite:
        for s in self.sites:
            if s.name == name:
                return s
        raise KeyError(f"unknown site {name!r}")

    def _eligible(self, site: ControlledSite,
                  manifest: ServiceManifest) -> bool:
        """Manifest-level MDL5 administrative screening: a partitioned-off
        site, a site any placement avoids, or an untrusted site when trust
        is required, is out for the whole service."""
        if site.name in self._unreachable:
            return False
        for placement in manifest.placement.site_placements:
            if site.name in placement.avoid_sites:
                return False
            if placement.require_trusted and not site.site.trusted:
                return False
        return True

    def _preference(self, site: ControlledSite,
                    manifest: ServiceManifest) -> int:
        """0 if any placement favours the site (sorts first), else 1."""
        for placement in manifest.placement.site_placements:
            if site.name in placement.favour_sites:
                return 0
        return 1

    def _fits_somewhere_empty(self, request: ProvisioningRequest) -> bool:
        """Could the request fit *some* eligible site with nothing else
        admitted? False means waiting can never help."""
        cache = self._solo_ceilings
        for site in self.sites:
            if not self._eligible(site, request.manifest):
                continue
            key = (id(request.manifest), site.admission.host)
            try:
                hosts = cache[key]
            except KeyError:
                try:
                    hosts = plan_capacity([request.manifest],
                                          site.admission.host
                                          ).hosts_for_ceiling
                except CapacityError:
                    # An instance exceeds this site's host type.
                    hosts = None
                cache[key] = hosts
            if hosts is not None and hosts <= site.admission.pool_hosts:
                return True
        return False

    def _best_site(self, request: ProvisioningRequest
                   ) -> Optional[ControlledSite]:
        """Federated selection: eligible sites that can admit the worst
        case right now, favoured first, then greatest headroom.

        Sites are ranked *before* the (expensive, full-repack) admission
        probe and scanned in rank order: because the ranking key does not
        depend on the probe, the first admitting site is exactly the
        ``min()`` over all admitting candidates, but saturated low-rank
        sites are never packed at all."""
        manifest = request.manifest
        ranked = sorted(
            (self._preference(site, manifest), -site.headroom, index, site)
            for index, site in enumerate(self.sites)
            if self._eligible(site, manifest)
        )
        for _pref, _headroom, _index, site in ranked:
            if site.admission.can_admit(manifest):
                return site
        return None

    def _try_admit(self, request: ProvisioningRequest) -> bool:
        """The scheduler's admission callback: quota, then site capacity;
        on success reserve both and start driving the deployment."""
        tenant = self.tenants[request.tenant]
        if tenant.quota.violation(tenant.usage, request.envelope) is not None:
            return False
        site = self._best_site(request)
        if site is None:
            return False
        self._admit_to(request, site)
        return True

    def _admit_to(self, request: ProvisioningRequest,
                  site: ControlledSite) -> None:
        """Reserve capacity on ``site`` and start driving the deployment
        (shared by the fair-drain path and pinned submissions)."""
        tenant = self.tenants[request.tenant]
        site.admission.admit(request.manifest)
        tenant.usage.add(request.envelope)
        request.state = RequestState.DEPLOYING
        request.site = site.name
        request.admitted_at = self.env.now
        self._m_counters["admitted"].inc()
        waited = request.wait_time
        self.series.record("queue.wait_s", waited)
        self._m_queue_wait.observe(waited)
        self.trace.emit_in(request.span, "control", "request.admitted",
                           request=request.request_id, tenant=request.tenant,
                           site=site.name, waited=waited,
                           queue_depth=self.scheduler.depth)
        request._decide()
        self.env.process(self._drive(request, site),
                         name=f"drive:{request.request_id}")

    def _pump(self) -> int:
        """Drain the queue as far as current capacity/quotas allow."""
        admitted = self.scheduler.drain(self._try_admit)
        if admitted:
            self._record_depth()
        return admitted

    def _record_depth(self) -> None:
        self.series.record("queue.depth", self.scheduler.depth)

    def _reject(self, request: ProvisioningRequest, reason: str) -> Rejected:
        request.state = RequestState.REJECTED
        request.reason = reason
        self._m_counters["rejected"].inc()
        code = reason.code.value if isinstance(reason, RejectionReason) \
            else None
        self.trace.emit_in(request.span, "control", "request.rejected",
                           request=request.request_id, tenant=request.tenant,
                           reason=str(reason), code=code)
        if request.span is not None and not request.span.closed:
            self.trace.close_span(request.span, "rejected",
                                  reason=str(reason), code=code)
        request._decide()
        return Rejected(request, reason=reason)

    # ------------------------------------------------------------------
    # Deployment drive (admitted → active, with retry-with-backoff)
    # ------------------------------------------------------------------
    def _drive(self, request: ProvisioningRequest, site: ControlledSite):
        """Process: deploy, retrying transient infrastructure failures with
        exponential backoff; exhausting the policy returns the reservation
        and terminally rejects."""
        tenant = self.tenants[request.tenant]
        last_explanation = None
        while True:
            request.attempts += 1
            pins, request.pins = request.pins, None
            failure: Optional[Exception] = None
            service: Optional[ManagedService] = None
            try:
                # deploy() is synchronous (it spawns the deployment
                # process); activating the request span here parents the
                # service's own deploy span under it, carrying the causal
                # chain across the process boundary.
                with self.trace.activate(request.span):
                    service = site.manager.deploy(
                        request.manifest, service_id=request.service_id,
                        tenant=request.tenant, drivers=request.drivers,
                        placement_plan=pins)
                request.service = service
                yield service.deployment
            except TRANSIENT_ERRORS as exc:
                failure = exc
                if service is not None:
                    # Tear down any partially-deployed instances before the
                    # retry; pop the tracking entry first so the undeploy
                    # hook does not mistake this for a capacity release.
                    self._by_service.pop(request.service_id, None)
                    request.service = None
                    yield site.manager.undeploy(service)
            if failure is None:
                request.state = RequestState.ACTIVE
                self._by_service[request.service_id] = request
                self.trace.emit_in(request.span, "control",
                                   "request.active",
                                   request=request.request_id,
                                   tenant=request.tenant, site=site.name,
                                   service=request.service_id,
                                   attempts=request.attempts)
                return
            if (self.solver_fallback and pins is None
                    and isinstance(failure, CapacityError)
                    and request.attempts < self.retry.max_attempts):
                # Greedy one-at-a-time placement ran out of room; the
                # teardown above has already returned any partial reserve,
                # so re-plan the whole instance set jointly before burning
                # a backoff interval.
                rescue_pins, explanation = self._solver_rescue(request, site)
                if explanation is not None:
                    last_explanation = explanation
                if rescue_pins:
                    request.pins = rescue_pins
                    self._m_solver_rescued.inc()
                    self.trace.emit_in(request.span, "control",
                                       "request.rescue",
                                       request=request.request_id,
                                       tenant=request.tenant, site=site.name,
                                       instances=len(rescue_pins))
                    continue    # retry immediately with the solver's plan
            if request.attempts >= self.retry.max_attempts:
                site.admission.release(request.manifest)
                tenant.usage.remove(request.envelope)
                detail = {"error": str(failure),
                          "attempts": request.attempts}
                if last_explanation is not None:
                    detail["solver"] = last_explanation.render()
                self._reject(request, RejectionReason(
                    RejectCode.DEPLOY_FAILED,
                    f"deploy failed after {request.attempts} attempt(s): "
                    f"{failure}", **detail))
                self._pump()    # the reservation just freed — re-drain
                return
            delay = self.retry.backoff(request.attempts)
            self._m_counters["retried"].inc()
            self.trace.emit("control", "request.retry",
                            request=request.request_id,
                            tenant=request.tenant, attempt=request.attempts,
                            delay_s=delay, error=str(failure))
            yield self.env.timeout(delay)

    def _solver_rescue(self, request: ProvisioningRequest,
                       site: ControlledSite):
        """Joint re-plan after a greedy :class:`CapacityError`.

        Encodes the manifest's full initial instance set against the site's
        live hosts (with the placer's installed constraints) and solves
        within ``solver_budget``. SAT returns per-instance pins keyed
        ``(system_id, instance_index)`` for the retry deploy; UNSAT returns
        the solver's explanation for the eventual terminal reason. Any
        encoding surprise (an unsupported constraint type, say) falls back
        to the plain greedy retry path.
        """
        try:
            veem = site.site.veem
            model = encode_service(
                request.manifest, veem.hosts,
                service_id=request.service_id,
                constraints=veem.placer.constraints)
            result = solve(model, self.solver_budget)
        except Exception:
            return None, None
        if not isinstance(result, Solution):
            return None, result.explanation
        names = {h.index: h.name for h in model.hosts}
        counts: dict[str, int] = {}
        pins: dict[tuple, str] = {}
        for item, host_index in zip(model.items, result.assignment):
            instance = counts.get(item.component, 0)
            counts[item.component] = instance + 1
            pins[(item.component, instance)] = names[host_index]
        return pins, None

    # ------------------------------------------------------------------
    # Capacity release (wired into ServiceManager.on_undeploy)
    # ------------------------------------------------------------------
    def _on_undeploy(self, site: ControlledSite, service: ManagedService,
                     termination: Process) -> None:
        """Runs for *every* undeploy on a managed site — control-plane
        initiated or direct — so capacity accounting cannot be bypassed."""
        request = self._by_service.pop(service.service_id, None)
        if request is None:
            return      # not a control-plane service (or a retry teardown)
        self.env.process(self._finish_release(request, site, termination),
                         name=f"release:{request.request_id}")

    def _finish_release(self, request: ProvisioningRequest,
                        site: ControlledSite, termination: Process):
        yield termination
        site.admission.release(request.manifest)
        self.tenants[request.tenant].usage.remove(request.envelope)
        request.state = RequestState.RELEASED
        request.released_at = self.env.now
        request.service = None
        self._m_counters["released"].inc()
        self.trace.emit_in(request.span, "control", "request.released",
                           request=request.request_id, tenant=request.tenant,
                           site=site.name,
                           held_s=self.env.now
                           - (request.admitted_at or 0.0))
        if not request.span.closed:
            self.trace.close_span(request.span, "released")
        self._pump()    # capacity freed: drain the queue
