"""Seeded random-number utilities for reproducible experiments.

Every stochastic element of an experiment (job durations, arrival jitter,
boot-time noise) draws from a named stream derived from a single experiment
seed, so adding a new random consumer does not perturb existing streams —
a standard trick for variance reduction in simulation studies.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

__all__ = ["RandomStreams", "truncated_normal", "lognormal_from_mean_cv"]


class RandomStreams:
    """A family of independent, named RNG streams under one master seed."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()
            ).digest()
            substream_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(substream_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child family, itself deterministically derived."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))


def truncated_normal(rng: np.random.Generator, mean: float, std: float,
                     low: float = 0.0,
                     high: Optional[float] = None) -> float:
    """A normal draw clipped into [low, high] by rejection (fallback clip).

    Job durations and boot latencies must not be negative; rejection keeps the
    distribution shape, with a hard clip as a safety net for extreme params.
    """
    if std < 0:
        raise ValueError("std must be non-negative")
    if high is not None and high < low:
        raise ValueError("high < low")
    if std == 0:
        return float(min(max(mean, low), high if high is not None else mean))
    for _ in range(64):
        x = rng.normal(mean, std)
        if x >= low and (high is None or x <= high):
            return float(x)
    return float(min(max(mean, low), high if high is not None else mean))


def lognormal_from_mean_cv(rng: np.random.Generator, mean: float,
                           cv: float) -> float:
    """Lognormal draw parameterised by target mean and coefficient of
    variation — natural for heavy-ish-tailed batch-job durations."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    if cv < 0:
        raise ValueError("cv must be non-negative")
    if cv == 0:
        return float(mean)
    sigma2 = np.log(1.0 + cv * cv)
    mu = np.log(mean) - sigma2 / 2.0
    return float(rng.lognormal(mu, np.sqrt(sigma2)))


def weighted_choice(rng: np.random.Generator, items: Sequence,
                    weights: Sequence[float]):
    """Pick one item with the given (unnormalised, non-negative) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    w = np.asarray(weights, dtype=float)
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    idx = rng.choice(len(items), p=w / total)
    return items[idx]
