"""Process-sharded simulation: worker pool, epoch barriers, RSS accounting.

The federation of the paper is a set of independently administered sites
coordinated only through narrow interfaces (manifests in, monitoring out).
This module gives the simulator the same split: a coordinator partitions
sites across ``multiprocessing`` workers, each worker owns a private
:class:`~repro.sim.kernel.Environment` for its shard, and the processes
meet only at **epoch barriers** — the coordinator broadcasts an
:class:`EpochCommand` ("advance your kernel to *t*"), every worker runs its
shard's event loop to *t* and replies with an :class:`EpochReport` of
compact picklable aggregates (census samples, event counts, per-site fleet
sizes). No VM object, host, or manifest ever crosses a pipe.

Spawn-safety: pools use the ``spawn`` start method (the only one that is
safe under threads and identical across platforms), so worker factories
must be module-level callables and shard specs must be picklable.

Why outcomes stay deterministic: cross-site decisions (admission, site
selection) are made *before* the fork by the coordinator running the real
control-plane code, and shipped to workers as pinned per-site replays;
within a shard the kernel is sequential and seeded, so every worker is a
deterministic function of its spec. See DESIGN §14.
"""

from __future__ import annotations

import multiprocessing as mp
import resource
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "EpochCommand",
    "EpochReport",
    "ShardError",
    "ShardPool",
    "partition_round_robin",
    "read_peak_rss_kb",
]


def read_peak_rss_kb() -> int:
    """This process's peak resident set size in KiB.

    Reads ``VmHWM`` from ``/proc/self/status`` (the kernel's high-water
    mark, present on every Linux); falls back to ``ru_maxrss`` where /proc
    is unavailable (macOS reports bytes there, normalised to KiB).
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys
    if sys.platform == "darwin":    # pragma: no cover - linux CI
        peak //= 1024
    return peak


def partition_round_robin(items: Sequence[Any],
                          shards: int) -> list[list[Any]]:
    """Deal ``items`` round-robin into ``shards`` buckets.

    Round-robin (vs. contiguous blocks) balances heterogeneous site loads:
    neighbouring sites in the scale harness receive correlated service
    mixes, so striping spreads the hot ones. Empty buckets are kept so
    shard index ↔ bucket index stays stable.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    buckets: list[list[Any]] = [[] for _ in range(shards)]
    for index, item in enumerate(items):
        buckets[index % shards].append(item)
    return buckets


@dataclass(frozen=True)
class EpochCommand:
    """Coordinator → worker: advance the shard kernel to ``run_until``
    (simulated seconds), or shut down when ``stop`` is set."""

    run_until: float = 0.0
    stop: bool = False


@dataclass
class EpochReport:
    """Worker → coordinator: one shard's aggregates for an epoch.

    ``payload`` is experiment-defined (the scale harness puts census
    samples and fleet sizes there); everything in it must be picklable
    and *small* — the report is the entire cross-process traffic.

    ``metrics`` carries the shard's incremental telemetry snapshot (a
    :meth:`repro.obs.metrics.SnapshotCursor.snapshot` payload: counter
    deltas, gauge finals, histogram tails) for the coordinator to fold
    into its federation-wide registry; ``findings`` carries this epoch's
    newly-closed :class:`~repro.obs.audit.AuditFinding` records. Both
    default empty so experiments that predate telemetry merging keep
    working unchanged.
    """

    shard: int
    now: float
    events_processed: int = 0
    peak_rss_kb: int = 0
    metrics: Optional[dict] = None
    findings: tuple = ()
    payload: dict[str, Any] = field(default_factory=dict)


class ShardError(RuntimeError):
    """A worker process raised; carries the remote traceback text."""

    def __init__(self, shard: int, remote_traceback: str):
        super().__init__(
            f"shard {shard} failed:\n{remote_traceback}")
        self.shard = shard
        self.remote_traceback = remote_traceback


def _shard_main(factory: Callable[[Any], Any], conn: Any, spec: Any) -> None:
    """Worker process entry point: build the shard, then serve epoch
    commands until told to stop.

    ``factory(spec)`` must return an object with two methods:

    * ``run_epoch(until: float) -> EpochReport`` — advance the private
      kernel and report aggregates;
    * ``finish() -> EpochReport`` — final aggregates (the coordinator
      sends ``stop`` after the last epoch).

    Any exception is shipped back as ``("error", traceback)`` so the
    coordinator can re-raise with the remote context instead of hanging
    on a dead pipe.
    """
    import traceback
    try:
        shard = factory(spec)
        while True:
            command = conn.recv()
            if command.stop:
                conn.send(("ok", shard.finish()))
                break
            conn.send(("ok", shard.run_epoch(command.run_until)))
    except BaseException:       # noqa: BLE001 - must cross the pipe
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:         # pragma: no cover - coordinator gone
            pass
    finally:
        conn.close()


class ShardPool:
    """A pool of shard worker processes driven through epoch barriers.

    The pool is a *barrier* abstraction, not a task queue: every
    :meth:`epoch` broadcasts one command to all workers and blocks until
    every shard has replied, so no shard's simulated clock ever runs ahead
    of the federation's agreed epoch boundary.
    """

    def __init__(self, factory: Callable[[Any], Any],
                 specs: Sequence[Any], *, start_method: str = "spawn"):
        ctx = mp.get_context(start_method)
        self.processes: list[Any] = []
        self.pipes: list[Any] = []
        self._stopped = False
        try:
            for index, spec in enumerate(specs):
                parent, child = ctx.Pipe()
                process = ctx.Process(
                    target=_shard_main, args=(factory, child, spec),
                    name=f"shard-{index}", daemon=True)
                process.start()
                child.close()
                self.pipes.append(parent)
                self.processes.append(process)
        except BaseException:
            self.terminate()
            raise

    def __len__(self) -> int:
        return len(self.processes)

    def _gather(self) -> list[EpochReport]:
        reports: list[EpochReport] = []
        failure: Optional[ShardError] = None
        for shard, pipe in enumerate(self.pipes):
            try:
                status, value = pipe.recv()
            except (EOFError, ConnectionResetError):
                status, value = "error", "worker exited without replying"
            if status == "error" and failure is None:
                failure = ShardError(shard, value)
            elif status == "ok":
                reports.append(value)
        if failure is not None:
            self.terminate()
            raise failure
        return reports

    def epoch(self, run_until: float) -> list[EpochReport]:
        """Barrier: run every shard to ``run_until``, gather all reports."""
        command = EpochCommand(run_until=run_until)
        for pipe in self.pipes:
            pipe.send(command)
        return self._gather()

    def stop(self) -> list[EpochReport]:
        """Final barrier: collect each shard's closing report and join."""
        if self._stopped:
            return []
        self._stopped = True
        for pipe in self.pipes:
            pipe.send(EpochCommand(stop=True))
        try:
            reports = self._gather()
        finally:
            for pipe in self.pipes:
                pipe.close()
            for process in self.processes:
                process.join(timeout=30)
        return reports

    def terminate(self) -> None:
        """Hard kill (error paths); normal shutdown goes through stop()."""
        self._stopped = True
        for pipe in self.pipes:
            try:
                pipe.close()
            except OSError:     # pragma: no cover - already closed
                pass
        for process in self.processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.stop()
        else:
            self.terminate()
