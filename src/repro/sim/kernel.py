"""Discrete-event simulation kernel.

Everything in this reproduction — hosts, hypervisors, the VEEM, the Service
Manager's rule engine, monitoring probes and the Condor-like grid — runs on
this kernel. It provides a priority-queue event loop with generator-based
processes, in the style of SimPy but self-contained.

Design notes
------------
* Time is a ``float`` in seconds. The kernel makes no assumption about wall
  clock; experiments run simulated hours in milliseconds of CPU time.
* Processes are Python generators that ``yield`` *waitables*: :class:`Timeout`,
  :class:`Event`, :class:`Process` (join), :class:`AnyOf`/:class:`AllOf`
  combinators, or acquisition requests from :mod:`repro.sim.resources`.
* Event ordering is deterministic: ties on the timestamp are broken by a
  monotonically increasing sequence number, so a seeded run always replays
  identically. This matters for reproducible experiments (Fig. 11 traces).
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "SimError",
    "Interrupt",
    "StopProcess",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Environment",
]


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised by a process to terminate itself early with a return value."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------

#: Sentinel for "event has not yet been given a value".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled to fire and carrying a value), and *processed* (callbacks run).
    Events may succeed (:meth:`succeed`) or fail (:meth:`fail`); waiting on a
    failed event re-raises its exception inside the waiting process.

    ``__slots__`` on the kernel's event classes keeps per-event memory flat
    and attribute access cheap — simulations allocate millions of these.
    Subclasses outside the kernel (e.g. :mod:`repro.sim.resources`) declare
    no slots and so keep an instance ``__dict__`` for their extra fields.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: If a failed event is never waited on, its exception would be lost;
        #: the kernel re-raises it at the end of the run unless ``defused``.
        self.defused = False

    # -- state ---------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self.triggered:
            raise SimError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Chain: trigger this event with the state of another event."""
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self)

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The generator's ``return`` value (or :class:`StopProcess` value) becomes
    the event value, so ``yield some_process`` implements *join*.
    """

    __slots__ = ("_generator", "name", "_target", "_init_event")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(env)
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None  # event the process is waiting on
        # Kick off on a zero-delay "initialize" event, at URGENT priority so
        # the process starts before same-time normal events (in particular
        # interrupts delivered in the same instant it was created).
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init, priority=Environment.URGENT)
        self._init_event = init
        self._target = init

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a process that has not yet had its first resume is
        legal: the init event (scheduled URGENT) starts the generator first,
        so the interrupt lands on its first yield — throwing into an
        unstarted generator would bypass the process's try/except.
        """
        if self.triggered:
            raise SimError(f"{self.name} has already terminated")
        not_started = self._target is self._init_event
        if (not not_started and self._target is not None
                and self._target.callbacks is not None):
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        # Deliver the interrupt via an immediately-scheduled failed event that
        # is routed through the process's resume logic.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event)
        if not not_started:
            self._target = event

    # -- internal ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Stale wakeup: the process finished before this event fired
            # (e.g. an interrupt aimed at a process that completed during
            # its very first resume). Nothing to deliver to.
            if not event._ok:
                event.defused = True
            return
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._finish(True, stop.value)
                break
            except StopProcess as stop:
                self._generator.close()
                self._finish(True, stop.value)
                break
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self._finish(False, exc)
                break

            if not isinstance(next_event, Event):
                exc = SimError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                self._finish(False, exc)
                break

            if next_event.callbacks is not None:
                # Event still pending/triggered-but-unprocessed: park here.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: loop and deliver its value at once.
            event = next_event

        self.env._active_process = None

    def _finish(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        if not ok and isinstance(value, BaseException):
            # Re-raised at run() unless some waiter defuses it.
            self.defused = False
        self.env._schedule(self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'dead' if self.triggered else 'alive'}>"


class _Condition(Event):
    """Base for AnyOf / AllOf combinators."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for e in self.events:
            if e.env is not env:
                raise SimError("cannot mix events from different environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for e in self.events:
            if e.callbacks is None:
                self._check(e)
            else:
                e.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        # Use *processed* (callbacks already run), not *triggered*: a Timeout
        # carries its value from construction and so is "triggered" before it
        # has actually fired.
        return {
            e: e._value for e in self.events
            if e.processed and e._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of the given events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


# ---------------------------------------------------------------------------
# Environment
# ---------------------------------------------------------------------------

#: Heap entries are plain ``(time, priority, seq, event)`` tuples — tuple
#: comparison is implemented in C and ``seq`` is unique, so ordering never
#: reaches the (incomparable) event and heap ops stay cheap.
_QueueEntry = tuple[float, int, int, Event]


class Environment:
    """The simulation environment: clock plus event queue.

    Example
    -------
    >>> env = Environment()
    >>> log = []
    >>> def proc(env):
    ...     yield env.timeout(5)
    ...     log.append(env.now)
    >>> _ = env.process(proc(env))
    >>> env.run()
    >>> log
    [5.0]
    """

    #: Priority for "urgent" events (used internally for initialisation).
    URGENT = 0
    NORMAL = 1

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "_metrics",
                 "_obs_scope")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count().__next__
        self._active_process: Optional[Process] = None
        #: Lazily-built metrics registry (one per environment); see
        #: :attr:`metrics`.
        self._metrics: Optional[Any] = None
        #: Ambient span stack: the implicit causal parent for spans and trace
        #: records created synchronously inside a scope. It lives here — not
        #: on any one TraceLog — because causality is a property of the
        #: execution context: a VEEM tracing to its own log still parents its
        #: deploy span under the rule firing that invoked it. Scopes must
        #: never span a ``yield`` (processes interleave); cross-process
        #: causality is passed explicitly via ``parent=``.
        self._obs_scope: list[Any] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def metrics(self):
        """The environment's :class:`~repro.obs.metrics.MetricsRegistry`.

        Built on first access so simulations that never touch observability
        pay nothing; imported lazily to keep the kernel dependency-free.
        """
        if self._metrics is None:
            from ..obs.metrics import MetricsRegistry
            self._metrics = MetricsRegistry()
        return self._metrics

    @property
    def current_span(self):
        """The innermost ambient span, or None outside any scope."""
        scope = self._obs_scope
        return scope[-1] if scope else None

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        heappush(self._queue,
                 (self._now + delay, priority, self._seq(), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimError("empty event queue")
        self._now, _, _, event = heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a time (run until
        the clock would pass it), or an :class:`Event` (run until it fires and
        return its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        # The drain loop is the single hottest path in the harness; it is
        # step() inlined, with the queue bound locally.
        queue = self._queue
        while queue:
            if stop_event is not None and stop_event.processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            if queue[0][0] > stop_time:
                self._now = stop_time
                return None
            self._now, _, _, event = heappop(queue)
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            raise SimError("simulation ended before the awaited event fired")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
